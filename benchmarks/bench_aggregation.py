"""B6 — aggregation conditions (COUNT ... by ...) in the Where subclause.

Expected shape: ~linear in the number of context patterns (one grouping
pass + one filter pass); SUM/AVG with attribute reads cost a constant
factor more than COUNT.
"""

import pytest

from repro.oql import QueryProcessor
from repro.subdb import Universe

COUNT_QUERY = ("context Department * Course * Section * Student "
               "where COUNT(Student by Course) > 10")
AVG_QUERY = ("context Department * Course "
             "where AVG(Course.credit_hours by Department) > 2")


@pytest.mark.benchmark(group="B6-count-by-scale")
def test_count_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    result = benchmark(lambda: qp.execute(COUNT_QUERY))
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["patterns"] = len(result.subdatabase)


@pytest.mark.benchmark(group="B6-agg-functions")
@pytest.mark.parametrize("func", ["COUNT", "SUM", "AVG", "MIN", "MAX"])
def test_agg_functions(benchmark, medium_data, func):
    qp = QueryProcessor(Universe(medium_data.db))
    if func == "COUNT":
        text = ("context Department * Course "
                "where COUNT(Course by Department) > 1")
    else:
        text = (f"context Department * Course "
                f"where {func}(Course.credit_hours by Department) >= 1")
    benchmark(lambda: qp.execute(text))


@pytest.mark.benchmark(group="B6-filter-vs-no-filter")
@pytest.mark.parametrize("variant", ["plain", "with-count"])
def test_where_overhead(benchmark, medium_data, variant):
    qp = QueryProcessor(Universe(medium_data.db))
    text = "context Department * Course * Section * Student"
    if variant == "with-count":
        text += " where COUNT(Student by Course) > 10"
    benchmark(lambda: qp.execute(text))
