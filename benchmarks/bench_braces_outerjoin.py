"""B7 — brace groups (outer-join semantics, Section 5.1) vs plain chains.

Expected shape: a brace group adds one extra sub-range match plus a
subsumption pass — a modest constant-factor overhead over the plain
chain, not a blow-up.
"""

import pytest

from repro.oql import QueryProcessor
from repro.subdb import Universe

VARIANTS = {
    "plain": "context Teacher * Section * Course",
    "one-brace": "context Teacher * {Section * Course}",
    "nested": "context {{Teacher} * Section} * Course",
    "all-singletons": "context {Teacher} * {Section} * {Course}",
}


@pytest.mark.benchmark(group="B7-braces-overhead")
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_brace_variants(benchmark, medium_data, variant):
    qp = QueryProcessor(Universe(medium_data.db))
    text = VARIANTS[variant]
    result = benchmark(lambda: qp.execute(text))
    benchmark.extra_info["patterns"] = len(result.subdatabase)
    benchmark.extra_info["types"] = len(result.subdatabase.pattern_types())


@pytest.mark.benchmark(group="B7-subsumption-scale")
def test_subsumption_cost_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    benchmark.extra_info["scale"] = scale
    benchmark(lambda: qp.execute(
        "context {Teacher * Section} * {Course}"))
