"""B2 — pre-evaluated (forward) vs post-evaluated (backward) results
under varying query:update mixes.

Expected shape: PRE wins read-heavy mixes (queries hit a stored copy),
POST wins update-heavy mixes (no forward pass per update); the crossover
moves with the ratio.  This is the quantitative case for the paper's
*result-oriented* strategy, which lets each result pick its side.
"""

import pytest

from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine
from repro.university import GeneratorConfig, generate_university

RULE = ("if context Department * Course * Section * Student "
        "where COUNT(Student by Course) > 10 then Hot (Course)")

MIXES = {
    "read-heavy-9q1u": (9, 1),
    "balanced-1q1u": (1, 1),
    "update-heavy-1q9u": (1, 9),
}


def _fresh_engine(mode):
    data = generate_university(GeneratorConfig(
        departments=3, courses=12, sections_per_course=2, teachers=8,
        students=150, enrollments_per_student=3, tas=4, grads=10,
        faculty=4, seed=77))
    engine = RuleEngine(data.db, controller="result")
    engine.add_rule(RULE, label="HOT", mode=mode)
    engine.refresh()
    return data, engine


def _workload(data, engine, queries, updates):
    students = data.all_of("Student")
    sections = data.all_of("Section")
    link = data.db.schema.resolve_link("Student", "Section").link
    for round_index in range(4):
        for u in range(updates):
            student = students[(round_index * 13 + u) % len(students)]
            section = sections[(round_index * 7 + u) % len(sections)]
            if section.oid in data.db.linked(student.oid, link):
                data.db.dissociate(student, "enrolled", section)
            else:
                data.db.associate(student, "enrolled", section)
        for _ in range(queries):
            engine.query("context Hot:Course select title")


@pytest.mark.benchmark(group="B2-query-update-mix")
@pytest.mark.parametrize("mix", sorted(MIXES))
@pytest.mark.parametrize("mode", ["pre", "post"])
def test_mix(benchmark, mix, mode):
    queries, updates = MIXES[mix]
    evaluation = (EvaluationMode.PRE_EVALUATED if mode == "pre"
                  else EvaluationMode.POST_EVALUATED)

    def run():
        data, engine = _fresh_engine(evaluation)
        _workload(data, engine, queries, updates)
        return engine.stats.total_derivations()

    derivations = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["derivations"] = derivations
    benchmark.extra_info["mix"] = f"{queries}q:{updates}u"
