"""B4 — result-oriented vs POSTGRES-style rule-oriented control on the
paper's Ra→Rd chain under an update+query workload.

Expected shape: comparable total cost, but the rule-oriented baseline
accumulates *staleness* (stale results served) while the result-oriented
strategy serves zero stale answers; its extra forward-pass work is
bounded.  Staleness counts are reported via ``extra_info``.
"""

import pytest

from repro.rules.control import EvaluationMode, RuleChainingMode
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database

CHAIN = [
    ("Ra", "if context Teacher * Section then REa (Teacher, Section)"),
    ("Rb", "if context REa:Teacher * REa:Section then REb (Teacher)"),
    ("Rc", "if context REb:Teacher then REc (Teacher)"),
    ("Rd", "if context REc:Teacher then REd (Teacher)"),
]

RULE_MODES = {"Ra": RuleChainingMode.BACKWARD,
              "Rb": RuleChainingMode.BACKWARD,
              "Rc": RuleChainingMode.FORWARD,
              "Rd": RuleChainingMode.FORWARD}
RESULT_MODES = {"Ra": EvaluationMode.POST_EVALUATED,
                "Rb": EvaluationMode.POST_EVALUATED,
                "Rc": EvaluationMode.POST_EVALUATED,
                "Rd": EvaluationMode.PRE_EVALUATED}


def _run_workload(controller, modes):
    data = build_paper_database()
    engine = RuleEngine(data.db, controller=controller)
    for label, text in CHAIN:
        engine.add_rule(text, label=label, mode=modes[label])
    engine.query("context REd:Teacher select name")
    stale_serves = 0
    for i in range(8):
        with data.db.batch():
            teacher = data.db.insert("Teacher", name=f"T{i}",
                                     **{"SS#": str(i)})
            data.db.associate(teacher, "teaches", data["s4"])
        if engine.is_stale("REd"):
            stale_serves += 1
        engine.query("context REd:Teacher select name")
    return engine.stats.total_derivations(), stale_serves


@pytest.mark.benchmark(group="B4-control-strategy")
@pytest.mark.parametrize("controller", ["rule", "result"])
def test_update_query_workload(benchmark, controller):
    modes = RULE_MODES if controller == "rule" else RESULT_MODES

    def run():
        return _run_workload(controller, modes)

    derivations, stale = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["derivations"] = derivations
    benchmark.extra_info["stale_reds_served"] = stale
