"""B8 — the OO loop construct vs the relational Datalog baseline on the
same transitive-closure workload (the prereq graph exported as a binary
relation).

Expected shape: semi-naive Datalog computes the *pair* closure
(|V|·|V| worst case) while the loop construct enumerates *hierarchies*
(root-to-leaf paths with shared prefixes); on sparse DAGs both are fast
and semi-naive dominates naive by the classical margin.  The point the
paper makes is qualitative: the OO result keeps objects and inherited
associations (it can be queried and chained without flattening), which
the flat relation cannot.
"""

import pytest

from repro.baselines.datalog import (
    naive_eval,
    seminaive_eval,
    transitive_closure_program,
)
from repro.baselines.export import links_as_relation
from repro.oql import QueryProcessor
from repro.subdb import Universe
from repro.university import GeneratorConfig, generate_university


def _dag_data(courses):
    return generate_university(GeneratorConfig(
        departments=2, courses=courses, sections_per_course=1,
        teachers=4, students=10, enrollments_per_student=1, tas=1,
        grads=2, faculty=2, prereqs_per_course=2, seed=88))


SIZES = {"v20": 20, "v40": 40, "v80": 80}


@pytest.mark.benchmark(group="B8-tc-engines")
@pytest.mark.parametrize("size", sorted(SIZES))
@pytest.mark.parametrize("engine", ["oo-loop", "datalog-seminaive",
                                    "datalog-naive"])
def test_tc_engines(benchmark, size, engine):
    data = _dag_data(SIZES[size])
    edges = set(links_as_relation(data.db, "Course", "prereq").rows)
    benchmark.extra_info["edges"] = len(edges)
    if engine == "oo-loop":
        qp = QueryProcessor(Universe(data.db))
        benchmark(lambda: qp.execute("context Course * Course_1 ^*"))
    elif engine == "datalog-seminaive":
        benchmark(lambda: seminaive_eval(
            transitive_closure_program(edges))["tc"])
    else:
        benchmark(lambda: naive_eval(
            transitive_closure_program(edges))["tc"])


@pytest.mark.benchmark(group="B8-closure-property")
def test_oo_result_chains_without_flattening(benchmark):
    """The qualitative claim, measured: a second rule consumes the
    derived closure directly (inherited associations intact)."""
    from repro.rules.engine import RuleEngine
    data = _dag_data(40)

    def run():
        engine = RuleEngine(data.db)
        engine.add_rule("if context Course * Course_1 ^* then TC "
                        "(Course, Course_)", label="TC")
        engine.add_rule("if context Department * TC:Course then "
                        "Dept_roots (Department, Course)", label="ROOTS")
        return len(engine.derive("Dept_roots"))

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["rows"] = rows
