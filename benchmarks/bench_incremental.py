"""B10 (ablation) — incremental maintenance vs full re-derivation of a
pre-evaluated result under single-link update streams.

Expected shape: full re-derivation costs ~O(database) per update;
incremental maintenance costs ~O(change) — the gap widens with database
size.  Only the update stream is timed; engine construction and the
initial refresh happen in per-round setup.
"""

import pytest

from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine
from repro.university import GeneratorConfig, generate_university

RULE = ("if context Teacher * Section * Course "
        "then Teacher_course (Teacher, Course)")

SIZES = {
    "small": GeneratorConfig(courses=10, sections_per_course=2,
                             teachers=8, students=50, seed=61),
    "medium": GeneratorConfig(courses=40, sections_per_course=2,
                              teachers=25, students=300, seed=62),
    "large": GeneratorConfig(courses=80, sections_per_course=3,
                             teachers=50, students=800, seed=63),
}


def _build(controller: str, config: GeneratorConfig):
    data = generate_university(config)
    engine = RuleEngine(data.db, controller=controller)
    engine.add_rule(RULE, label="R1", mode=EvaluationMode.PRE_EVALUATED)
    engine.refresh()
    if controller == "incremental":
        # Warm the maintainers so the stream measures steady state.
        engine.controller._maintainers_for("Teacher_course")
    return data, engine


def _update_stream(data, engine):
    teachers = data.all_of("Teacher")
    sections = data.all_of("Section")
    link = data.db.schema.resolve_link("Teacher", "Section").link
    for i in range(10):
        teacher = teachers[i % len(teachers)]
        section = sections[(i * 3) % len(sections)]
        if section.oid in data.db.linked(teacher.oid, link):
            data.db.dissociate(teacher, "teaches", section)
        else:
            data.db.associate(teacher, "teaches", section)
    return engine.stats.total_derivations()


@pytest.mark.benchmark(group="B10-incremental-maintenance")
@pytest.mark.parametrize("size", sorted(SIZES))
@pytest.mark.parametrize("controller", ["incremental", "result"],
                         ids=["incremental", "full-rederive"])
def test_maintenance_under_updates(benchmark, size, controller):
    def setup():
        return _build(controller, SIZES[size]), {}

    derivations = benchmark.pedantic(
        lambda data, engine: _update_stream(data, engine),
        setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["derivations"] = derivations


@pytest.mark.benchmark(group="B10-consistency")
def test_incremental_matches_full(benchmark):
    """Not a speed test: asserts (while timing) that the maintained
    result equals a from-scratch derivation after an update stream."""
    def setup():
        return _build("incremental", SIZES["small"]), {}

    def run(data, engine):
        _update_stream(data, engine)
        maintained = engine.universe.get_subdb("Teacher_course").patterns
        fresh = engine.derive("Teacher_course", force=True).patterns
        assert maintained == fresh
        return len(maintained)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
