"""B11 — value-indexed selection vs full extent scan, and maintenance
overhead under write churn.  Emits ``BENCH_PR10.json``.

Run::

    python benchmarks/bench_indexes.py                      # full (100k rows)
    python benchmarks/bench_indexes.py --quick              # CI smoke (20k)
    python benchmarks/bench_indexes.py --min-index-speedup 10  # gate: fail
        # unless every headline selective scenario beats the scan 10x

The synthetic extent is one class with an integer key (distinct per
row), a float measure, and a low-cardinality category — the three
selectivity regimes a value index sees: point hit, selective range,
broad predicate.  Scan and indexed executors share one database, so
every comparison is the same query on the same rows; parity of results
is asserted on every sample (a fast wrong answer is not a speedup).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.model.database import Database          # noqa: E402
from repro.model.schema import DClass, Schema      # noqa: E402
from repro.oql.query import QueryProcessor         # noqa: E402
from repro.subdb.universe import Universe          # noqa: E402


def build_db(rows: int) -> Database:
    schema = Schema("bench-indexes")
    schema.add_eclass("Item")
    schema.add_attribute("Item", "key", DClass("key", int))
    schema.add_attribute("Item", "measure", DClass("measure", float))
    schema.add_attribute("Item", "category", DClass("category", str))
    db = Database(schema, name=f"items({rows})")
    for i in range(rows):
        db.insert("Item", f"i{i}", key=i,
                  measure=(i * 7919) % 10_000 / 10.0,
                  category=f"c{i % 8}")
    return db


def timed(universe: Universe, text: str, repeats: int):
    """(median seconds, rows, metrics) for one query, each sample on a
    fresh evaluator — the per-evaluator filtered-extent memo would
    otherwise serve every repeat from the first run's answer and the
    samples would time materialization only."""
    samples = []
    rows = None
    metrics = None
    for _ in range(repeats):
        processor = QueryProcessor(universe)
        start = time.perf_counter()
        result = processor.execute(text)
        samples.append(time.perf_counter() - start)
        count = len(result.subdatabase)
        assert rows is None or rows == count
        rows = count
        metrics = processor.evaluator.last_metrics
    return statistics.median(samples), rows, metrics


def run_scenarios(db: Database, rows: int, repeats: int):
    scan_u = Universe(db)
    indexed_u = Universe(db)
    for attr in ("key", "measure", "category"):
        indexed_u.declare_index("Item", attr)

    scenarios = [
        # (name, query, headline) — headline scenarios feed the gate.
        ("equality_point", f"context Item[key = {rows // 2}]", True),
        ("range_selective",
         f"context Item[measure < {rows // 10_000 or 1}.0]", True),
        ("equality_category_12pct", "context Item[category = 'c3']",
         False),
        ("compound_residual",
         f"context Item[measure < 50.0 and key != {rows // 3}]", False),
        ("negation_broad", "context Item[category != 'c3']", False),
    ]
    out = []
    for name, text, headline in scenarios:
        QueryProcessor(indexed_u).execute(text)  # warm: builds indexes
        scan_s, scan_rows, _ = timed(scan_u, text, repeats)
        idx_s, idx_rows, metrics = timed(indexed_u, text, repeats)
        assert scan_rows == idx_rows, (name, scan_rows, idx_rows)
        out.append({
            "scenario": name,
            "query": text,
            "headline": headline,
            "result_rows": idx_rows,
            "scan_ms": scan_s * 1000,
            "indexed_ms": idx_s * 1000,
            "speedup": scan_s / idx_s if idx_s else float("inf"),
            "index_probes": metrics.index_probes,
            "index_rows": metrics.index_rows,
            "residual_evals": metrics.extent_filter_evals,
        })
    return out, indexed_u


def run_maintenance(db: Database, indexed_u: Universe,
                    writes: int, repeats: int):
    """Write throughput with the built indexes maintained in place vs a
    plain universe that only invalidates — the marginal cost of keeping
    every declared index exact under churn."""
    plain = Universe(db)

    def churn(tick0: int) -> float:
        start = time.perf_counter()
        for t in range(tick0, tick0 + writes):
            oid = db.insert("Item", f"w{t}", key=1_000_000 + t,
                            measure=float(t % 997),
                            category=f"c{t % 8}").oid
            db.set_attribute(oid, "measure", float((t * 3) % 997))
            db.delete(oid)
        return time.perf_counter() - start

    # Both universes observe every event; only the indexed one has
    # built indexes to maintain.  Touch both so caches are warm and the
    # indexed side's structures exist before the clock starts.
    QueryProcessor(indexed_u).execute("context Item[key = 1]")
    QueryProcessor(plain).execute("context Item[key = 1]")

    with_index = min(churn(i * writes) for i in range(1, repeats + 1))
    for attr in ("key", "measure", "category"):
        indexed_u.drop_index("Item", attr)
    without = min(churn((repeats + i + 1) * writes)
                  for i in range(1, repeats + 1))
    return {
        "writes_per_sample": writes * 3,  # insert + set + delete
        "with_indexes_ms": with_index * 1000,
        "without_indexes_ms": without * 1000,
        "overhead_pct": (with_index / without - 1) * 100 if without
        else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--rows", type=int, default=None,
                        help="extent size (default 100000; quick 20000)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--writes", type=int, default=None,
                        help="churn writes per maintenance sample")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_PR10.json")
    parser.add_argument("--min-index-speedup", type=float, default=None,
                        help="fail unless every headline scenario beats "
                             "the scan by this factor")
    args = parser.parse_args(argv)

    rows = args.rows or (20_000 if args.quick else 100_000)
    repeats = args.repeats or (3 if args.quick else 5)
    writes = args.writes or (200 if args.quick else 1000)

    print(f"building {rows}-row extent ...", flush=True)
    db = build_db(rows)
    scenarios, indexed_u = run_scenarios(db, rows, repeats)
    for entry in scenarios:
        print(f"  {entry['scenario']:24s} scan {entry['scan_ms']:9.2f} ms"
              f"  indexed {entry['indexed_ms']:8.2f} ms"
              f"  x{entry['speedup']:.1f}"
              f"  ({entry['result_rows']} rows)", flush=True)
    maintenance = run_maintenance(db, indexed_u, writes, repeats)
    print(f"  maintenance: {maintenance['with_indexes_ms']:.2f} ms "
          f"with indexes vs {maintenance['without_indexes_ms']:.2f} ms "
          f"without (+{maintenance['overhead_pct']:.1f}%) for "
          f"{maintenance['writes_per_sample']} events", flush=True)

    doc = {
        "benchmark": "B11-value-indexes",
        "config": {"rows": rows, "repeats": repeats, "writes": writes,
                   "quick": args.quick},
        "scenarios": scenarios,
        "maintenance": maintenance,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_index_speedup is not None:
        slow = [e for e in scenarios
                if e["headline"] and e["speedup"] < args.min_index_speedup]
        if slow:
            for entry in slow:
                print(f"GATE FAIL: {entry['scenario']} speedup "
                      f"x{entry['speedup']:.1f} < "
                      f"x{args.min_index_speedup}", file=sys.stderr)
            return 1
        print(f"gate ok: headline speedups >= "
              f"x{args.min_index_speedup}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
