"""B9 (ablation) — greedy chain-join optimizer vs naive left-to-right.

Expected shape: with a selective intra-class condition away from the
left end, the optimizer anchors at the small filtered extent and prunes
from the first hop — large wins; with no selectivity, the two orders are
comparable (no regression).
"""

import pytest

from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression
from repro.subdb.universe import Universe

SELECTIVE_RIGHT = "Student * Section * Course [c# = 1000]"
SELECTIVE_LEFT = "Department [name = 'Dept0'] * Course * Section * Student"
NO_FILTER = "Teacher * Section * Course"


@pytest.mark.benchmark(group="B9-optimizer")
@pytest.mark.parametrize("optimize", [True, False],
                         ids=["greedy", "naive-ltr"])
@pytest.mark.parametrize("workload", ["selective-right",
                                      "selective-left", "no-filter"])
def test_optimizer_ablation(benchmark, medium_data, optimize, workload):
    text = {"selective-right": SELECTIVE_RIGHT,
            "selective-left": SELECTIVE_LEFT,
            "no-filter": NO_FILTER}[workload]
    universe = Universe(medium_data.db)
    evaluator = PatternEvaluator(universe, optimize=optimize)
    expr = parse_expression(text)
    result = benchmark(lambda: evaluator.evaluate(expr))
    benchmark.extra_info["patterns"] = len(result)
