"""B9 (ablation) — join-order strategies: naive left-to-right vs the
greedy smallest-extent heuristic vs the cost-based (DP) planner.

Expected shape: with a selective intra-class condition away from the
left end, both optimizing strategies anchor at the small filtered extent
and prune from the first hop — large wins over naive; the cost-based
planner additionally orders the remaining hops by estimated fan-out,
which separates it from greedy on chains whose cheapest growth is not
towards the smaller adjacent extent.  With no selectivity all three are
comparable (no regression).
"""

import pytest

from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression
from repro.oql.planner import OPTIMIZE_MODES
from repro.subdb.universe import Universe

SELECTIVE_RIGHT = "Student * Section * Course [c# = 1000]"
SELECTIVE_LEFT = "Department [name = 'Dept0'] * Course * Section * Student"
NO_FILTER = "Teacher * Section * Course"

WORKLOADS = {
    "selective-right": SELECTIVE_RIGHT,
    "selective-left": SELECTIVE_LEFT,
    "no-filter": NO_FILTER,
}


@pytest.mark.benchmark(group="B9-optimizer")
@pytest.mark.parametrize("optimize", OPTIMIZE_MODES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_optimizer_ablation(benchmark, medium_data, optimize, workload):
    universe = Universe(medium_data.db)
    evaluator = PatternEvaluator(universe, optimize=optimize)
    expr = parse_expression(WORKLOADS[workload])
    result = benchmark(lambda: evaluator.evaluate(expr))
    benchmark.extra_info["patterns"] = len(result)
    plans = evaluator.last_metrics.plans
    if plans:
        benchmark.extra_info["plan"] = plans[0].snapshot()


@pytest.mark.benchmark(group="B9-optimizer-equivalence")
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_all_modes_agree(medium_data, workload):
    """Not a timing benchmark: the three strategies must return the
    same subdatabase on every workload (run under --benchmark-disable
    in CI as a smoke check)."""
    universe = Universe(medium_data.db)
    expr = parse_expression(WORKLOADS[workload])
    results = [PatternEvaluator(universe, optimize=mode).evaluate(expr)
               for mode in OPTIMIZE_MODES]
    assert results[0].patterns == results[1].patterns == \
        results[2].patterns
