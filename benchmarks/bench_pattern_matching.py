"""B1 — association-chain pattern matching vs database scale and chain
length.

Expected shape: evaluation cost grows roughly linearly with the number of
link traversals (extent size × average fan-out per hop); longer chains
cost proportionally more hops.
"""

import pytest

from repro.oql import QueryProcessor
from repro.subdb import Universe

CHAINS = {
    2: "context Teacher * Section",
    3: "context Teacher * Section * Course",
    4: "context Teacher * Section * Course * Department",
    5: "context Teacher * Section * Student * Department * Course_1",
}


@pytest.mark.benchmark(group="B1-chain-length")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_chain_length(benchmark, small_data, length):
    qp = QueryProcessor(Universe(small_data.db))
    text = CHAINS[length]
    benchmark(lambda: qp.execute(text))


@pytest.mark.benchmark(group="B1-db-scale")
def test_three_way_chain_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["objects"] = data.db.stats()["objects"]
    benchmark.extra_info["links"] = data.db.stats()["links"]
    benchmark(lambda: qp.execute("context Teacher * Section * Course"))


@pytest.mark.benchmark(group="B1-wide-fanout")
def test_enrollment_fanout_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    benchmark.extra_info["scale"] = scale
    benchmark(lambda: qp.execute(
        "context Department * Course * Section * Student"))
