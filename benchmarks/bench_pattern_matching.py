"""B1 — association-chain pattern matching vs database scale and chain
length.

Expected shape: evaluation cost grows roughly linearly with the number of
link traversals (extent size × average fan-out per hop); longer chains
cost proportionally more hops.
"""

import pytest

from repro.oql import QueryProcessor
from repro.subdb import Universe

CHAINS = {
    2: "context Teacher * Section",
    3: "context Teacher * Section * Course",
    4: "context Teacher * Section * Course * Department",
    5: "context Teacher * Section * Student * Department * Course_1",
}


@pytest.mark.benchmark(group="B1-chain-length")
@pytest.mark.parametrize("length", [2, 3, 4])
def test_chain_length(benchmark, small_data, length):
    qp = QueryProcessor(Universe(small_data.db))
    text = CHAINS[length]
    benchmark(lambda: qp.execute(text))


@pytest.mark.benchmark(group="B1-db-scale")
def test_three_way_chain_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["objects"] = data.db.stats()["objects"]
    benchmark.extra_info["links"] = data.db.stats()["links"]
    benchmark(lambda: qp.execute("context Teacher * Section * Course"))


@pytest.mark.benchmark(group="B1-wide-fanout")
def test_enrollment_fanout_by_scale(benchmark, scaled_data):
    scale, data = scaled_data
    qp = QueryProcessor(Universe(data.db))
    benchmark.extra_info["scale"] = scale
    benchmark(lambda: qp.execute(
        "context Department * Course * Section * Student"))


# Selective intra-class conditions: the same query with and without a
# declared value index (the filtered-extent memo is evaluator-scoped,
# so each sample runs on a fresh evaluator or it would time a cache
# hit).  bench_indexes.py measures the same split at 100k-row extents;
# these rows keep the comparison in the per-PR pytest-benchmark sweep.
SELECTIVE = {
    "equality": "context Student[GPA >= 3.9] * Section",
    "range": "context Course[c# < 1200] * Section",
}


def _selective_universe(data, indexed: bool) -> Universe:
    universe = Universe(data.db)
    if indexed:
        universe.declare_index("Student", "GPA")
        universe.declare_index("Course", "c#")
        # Build both eagerly so samples time probes, not construction.
        qp = QueryProcessor(universe)
        for text in SELECTIVE.values():
            qp.execute(text)
    return universe


@pytest.mark.benchmark(group="B1-selective-conditions")
@pytest.mark.parametrize("shape", sorted(SELECTIVE))
@pytest.mark.parametrize("access", ["scan", "indexed"])
def test_selective_condition(benchmark, large_data, shape, access):
    universe = _selective_universe(large_data, access == "indexed")
    text = SELECTIVE[shape]
    benchmark.extra_info["access"] = access
    benchmark(lambda: QueryProcessor(universe).execute(text))
