"""B11 — durability costs: WAL append throughput (group commit via
``sync_every``), checkpoint write time, and crash recovery time
(checkpoint load + WAL tail replay) for the JSON and sqlite backends.

Expected shape: append throughput is fsync-bound, so batching fsyncs
(``sync_every`` > 1) should dominate; sqlite checkpoints pay row
normalization but recover comparably; recovery scales with checkpoint
size plus the replayed tail length, not with total history.

Not wired into run_all.py's regression gates — durability timings are
storage-hardware-bound and too noisy for a CI threshold.
"""

import shutil
import tempfile
from pathlib import Path

import pytest

from repro.rules.engine import RuleEngine
from repro.storage import open_backend
from repro.storage.backends.wal import WriteAheadLog
from repro.university import GeneratorConfig, generate_university

SIZES = {
    "small": GeneratorConfig(courses=10, sections_per_course=2,
                             teachers=8, students=50, seed=71),
    "medium": GeneratorConfig(courses=40, sections_per_course=2,
                              teachers=25, students=300, seed=72),
}

RULE = ("if context Teacher * Section * Course "
        "then Teacher_course (Teacher, Course)")


def _engine(size: str) -> RuleEngine:
    engine = RuleEngine(generate_university(SIZES[size]).db)
    engine.add_rule(RULE, label="R1")
    return engine


def _mutation_stream(engine: RuleEngine, updates: int) -> None:
    db = engine.db
    section = next(iter(db.extent("Section")))
    for i in range(updates):
        teacher = db.insert("Teacher", name=f"W{i}", degree="PhD",
                            **{"SS#": f"w-{i}"})
        db.set_attribute(teacher.oid, "name", f"W{i}b")
        db.associate(teacher.oid, "teaches", section)


@pytest.mark.benchmark(group="B11-wal-append")
@pytest.mark.parametrize("sync_every", [1, 32],
                         ids=["fsync-each", "fsync-batch32"])
def test_wal_append_throughput(benchmark, sync_every):
    """Raw journal appends, the floor under every journaled mutator."""
    record = {"kind": "set_attribute", "v": 1, "oid": 17,
              "name": "salary", "value": 50000}

    def setup():
        root = Path(tempfile.mkdtemp(prefix="bench-wal-"))
        wal = WriteAheadLog(root / "wal.jsonl", sync_every=sync_every)
        wal.open()
        return (root, wal), {}

    def run(root, wal):
        for _ in range(500):
            wal.append(record)
        wal.sync()
        wal.close()
        shutil.rmtree(root)
        return 500

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="B11-journaled-updates")
@pytest.mark.parametrize("attached", [False, True],
                         ids=["bare", "journaled"])
def test_journaling_overhead(benchmark, attached):
    """The same mutation stream with and without an attached backend —
    the delta is the full journaling cost on the mutator path."""
    def setup():
        engine = _engine("small")
        root = Path(tempfile.mkdtemp(prefix="bench-journal-"))
        if attached:
            backend = open_backend(root, "json", sync_every=32)
            backend.attach(engine)
        else:
            backend = None
        return (engine, backend, root), {}

    def run(engine, backend, root):
        _mutation_stream(engine, 100)
        if backend is not None:
            backend.close()
        shutil.rmtree(root)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="B11-checkpoint")
@pytest.mark.parametrize("size", sorted(SIZES))
@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_checkpoint_write(benchmark, kind, size):
    def setup():
        engine = _engine(size)
        root = Path(tempfile.mkdtemp(prefix="bench-ckpt-"))
        backend = open_backend(root, kind, sync_every=32)
        backend.attach(engine)
        _mutation_stream(engine, 50)
        return (backend, root), {}

    def run(backend, root):
        seq = backend.checkpoint()
        backend.close()
        shutil.rmtree(root)
        return seq

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


@pytest.mark.benchmark(group="B11-recovery")
@pytest.mark.parametrize("size", sorted(SIZES))
@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_crash_recovery(benchmark, kind, size):
    """Recovery = newest checkpoint + a 50-event WAL tail replay."""
    def setup():
        engine = _engine(size)
        root = Path(tempfile.mkdtemp(prefix="bench-recover-"))
        backend = open_backend(root, kind, sync_every=32)
        backend.attach(engine)
        backend.checkpoint()
        _mutation_stream(engine, 50)  # the un-checkpointed tail
        backend.close()               # "crash": tail lives only in WAL
        return (root,), {}

    def run(root):
        backend = open_backend(root, kind)
        restored = backend.recover()
        objects = restored.db.stats()["objects"]
        backend.close()
        shutil.rmtree(root)
        return objects

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
