"""B5 — inference-chain depth scaling (the closure property at work).

A chain of k rules, each reading the previous rule's subdatabase.
Expected shape: a cold query costs ~sum of per-rule derivations (linear
in k); a warm re-query costs only the final pattern match, independent of
k (memoization).
"""

import pytest

from repro.rules.engine import RuleEngine

DEPTHS = [1, 2, 4, 6]


def _build_engine(data, depth):
    engine = RuleEngine(data.db)
    engine.add_rule("if context Teacher * Section * Course then L1 "
                    "(Teacher, Course)", label="L1")
    for level in range(2, depth + 1):
        engine.add_rule(
            f"if context L{level - 1}:Teacher * L{level - 1}:Course "
            f"then L{level} (Teacher, Course)", label=f"L{level}")
    return engine


@pytest.mark.benchmark(group="B5-cold-chain")
@pytest.mark.parametrize("depth", DEPTHS)
def test_cold_derivation(benchmark, small_data, depth):
    def run():
        engine = _build_engine(small_data, depth)
        engine.query(f"context L{depth}:Teacher select name")
        return engine.stats.total_derivations()

    derivations = benchmark.pedantic(run, rounds=3, iterations=1)
    assert derivations == depth
    benchmark.extra_info["derivations"] = derivations


@pytest.mark.benchmark(group="B5-warm-chain")
@pytest.mark.parametrize("depth", DEPTHS)
def test_warm_requery(benchmark, small_data, depth):
    engine = _build_engine(small_data, depth)
    engine.query(f"context L{depth}:Teacher select name")  # warm up

    benchmark(lambda: engine.query(
        f"context L{depth}:Teacher select name"))
    assert engine.stats.derivations[f"L{depth}"] == 1
