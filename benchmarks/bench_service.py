"""B12 — latency under concurrency for the asyncio query service.

An **open-loop** load driver: each injector connection schedules
arrivals on a fixed clock (one request every ``--interval-ms``,
regardless of how the previous one fared) and latency is measured from
the *scheduled* arrival to the response — so server-side queueing shows
up as latency instead of silently slowing the injectors down, the
classic closed-loop coordinated-omission trap.

The mix is read-heavy (default 10% writes): reads are paper queries,
including backward-chained rule targets; writes are single-record
inserts journaled through the engine's RWLock.  Each concurrency level
reports p50/p95/p99 latency, throughput, and the **shed rate** — the
fraction of requests the admission controller answered with ``BUSY``
instead of queueing.  Shed requests are counted separately, not folded
into latency percentiles.

A second scenario, ``--fanout``, measures the live-subscription path:
N subscriber connections watch ``context Teacher`` while one writer
inserts Teachers on a fixed clock; write-to-delta latency is measured
per subscriber from just before the write request is sent to the
moment that write's delta frame is read off the subscriber's socket,
reported as p50/p95/p99 per fanout level (1/8/32 subscribers by
default).

Usage::

    python benchmarks/bench_service.py                 # full sweep
    python benchmarks/bench_service.py --quick         # CI smoke
    python benchmarks/bench_service.py --levels 2,8,16 --duration 5
    python benchmarks/bench_service.py --max-p95-ms 250  # opt-in gate
        # on the lowest level's p95 (meaningless on a 1-CPU container
        # under full load, hence not a default)
    python benchmarks/bench_service.py --fanout --fanout-levels 1,8,32

Results land in ``BENCH_PR8.json`` at the repository root
(``BENCH_PR9.json`` for the fanout scenario).
"""

import argparse
import json
import random
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.rules.engine import RuleEngine
from repro.service import QueryService, ServiceClient, ServiceConfig
from repro.university import build_paper_database, build_sdb

READ_QUERIES = [
    "context Teacher * Section * Course",
    "context Teacher_course:Teacher * Teacher_course:Course",
    "context Suggest_offer:Course",
    "context Department * Course",
]


def build_service(max_concurrency: int = 4) -> QueryService:
    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.universe.register(build_sdb(data))
    engine.add_rule("if context Teacher * Section * Course "
                    "then Teacher_course (Teacher, Course)", label="R1")
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * "
        "Student where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    return QueryService(engine,
                        ServiceConfig(max_concurrency=max_concurrency))


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


def _injector(host, port, seed, interval_ms, write_ratio, duration_s,
              out):
    """One open-loop injector: arrivals on a fixed schedule, latency
    measured from the scheduled arrival."""
    rng = random.Random(seed)
    latencies, shed, errors, ok = [], 0, 0, 0
    try:
        with ServiceClient(host, port, timeout=60) as client:
            started = time.perf_counter()
            tick = 0
            while True:
                scheduled = started + tick * (interval_ms / 1000.0)
                now = time.perf_counter()
                if now - started >= duration_s:
                    break
                if scheduled > now:
                    time.sleep(scheduled - now)
                tick += 1
                if rng.random() < write_ratio:
                    response = client.request(
                        "update", raise_on_error=False,
                        updates=[{"kind": "insert", "cls": "Teacher",
                                  "attrs": {"name": f"L{seed}-{tick}",
                                            "SS#": f"l-{seed}-{tick}"}}])
                else:
                    response = client.request(
                        "query", raise_on_error=False,
                        text=rng.choice(READ_QUERIES),
                        budget={"deadline_ms": 10_000})
                finished = time.perf_counter()
                if response.get("ok"):
                    ok += 1
                    latencies.append((finished - scheduled) * 1000.0)
                elif response["error"]["code"] == "BUSY":
                    shed += 1
                else:
                    errors += 1
    except (ConnectionError, OSError) as exc:
        errors += 1
        out["fault"] = repr(exc)
    out.update(latencies=latencies, shed=shed, errors=errors, ok=ok)


def run_level(service, connections: int, duration_s: float,
              interval_ms: float, write_ratio: float) -> dict:
    host, port = service.address
    results = [{} for _ in range(connections)]
    threads = [
        threading.Thread(target=_injector,
                         args=(host, port, 100 + i, interval_ms,
                               write_ratio, duration_s, results[i]))
        for i in range(connections)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    latencies = sorted(x for r in results for x in r["latencies"])
    ok = sum(r["ok"] for r in results)
    shed = sum(r["shed"] for r in results)
    errors = sum(r["errors"] for r in results)
    total = ok + shed + errors
    return {
        "connections": connections,
        "interval_ms": interval_ms,
        "duration_s": round(elapsed, 3),
        "requests": total,
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "throughput_rps": round(ok / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p95_ms": round(_percentile(latencies, 0.95), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies), 3)
        if latencies else 0.0,
    }


def run_sweep(levels, duration_s, interval_ms, write_ratio,
              max_concurrency) -> dict:
    with build_service(max_concurrency) as service:
        rows = [run_level(service, connections, duration_s, interval_ms,
                          write_ratio)
                for connections in levels]
        server_counters = dict(service.counters)
    return {
        "benchmark": "B12-service-latency",
        "config": {
            "max_concurrency": max_concurrency,
            "write_ratio": write_ratio,
            "interval_ms": interval_ms,
            "duration_s": duration_s,
        },
        "levels": rows,
        "server_counters": server_counters,
    }


# ---------------------------------------------------------------------------
# Subscriber fanout: write-to-delta latency
# ---------------------------------------------------------------------------


FANOUT_QUERY = "context Teacher"


def run_fanout_level(service, subscribers: int, writes: int,
                     interval_ms: float) -> dict:
    """One fanout level: ``subscribers`` live subscriptions on
    :data:`FANOUT_QUERY`, one paced writer inserting Teachers; each
    subscriber thread stamps every delta frame as it reads it, so the
    percentiles measure true end-to-end push latency under fanout."""
    host, port = service.address
    clients = [ServiceClient(host, port, timeout=60)
               for _ in range(subscribers)]
    per_reader = [[] for _ in range(subscribers)]
    faults = []
    try:
        sids = [c.subscribe(FANOUT_QUERY)["subscription"]
                for c in clients]
        sent = [0.0] * writes
        ready = threading.Barrier(subscribers + 1)

        def reader(idx):
            client, sid = clients[idx], sids[idx]
            ready.wait()
            for i in range(writes):
                frame = client.next_delta(sid, timeout=30)
                now = time.perf_counter()
                if frame is None or frame["kind"] != "delta":
                    faults.append((idx, i,
                                   frame["kind"] if frame else None))
                    return
                per_reader[idx].append((now - sent[i]) * 1000.0)

        def writer():
            with ServiceClient(host, port, timeout=60) as w:
                ready.wait()
                for i in range(writes):
                    sent[i] = time.perf_counter()
                    w.update({"kind": "insert", "cls": "Teacher",
                              "attrs": {"name": f"Fan{i}",
                                        "SS#": f"fan-{i}"}})
                    time.sleep(interval_ms / 1000.0)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(subscribers)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        for c in clients:
            c.close()
    latencies = sorted(x for lats in per_reader for x in lats)
    expected = subscribers * writes
    return {
        "subscribers": subscribers,
        "writes": writes,
        "interval_ms": interval_ms,
        "deliveries": len(latencies),
        "expected_deliveries": expected,
        "faults": len(faults),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p95_ms": round(_percentile(latencies, 0.95), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies), 3)
        if latencies else 0.0,
    }


def run_fanout_sweep(levels, writes, interval_ms) -> dict:
    rows = []
    for subscribers in levels:
        # A fresh service per level: each level's write storm must not
        # inflate the next level's initial snapshot work.
        with build_service(max_concurrency=4) as service:
            rows.append(run_fanout_level(service, subscribers, writes,
                                         interval_ms))
    return {
        "benchmark": "B13-subscription-fanout",
        "config": {
            "query": FANOUT_QUERY,
            "writes": writes,
            "interval_ms": interval_ms,
        },
        "levels": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--levels", default="2,8,16",
                        help="comma-separated connection counts")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds per level")
    parser.add_argument("--interval-ms", type=float, default=20.0,
                        help="per-connection arrival interval")
    parser.add_argument("--write-ratio", type=float, default=0.1)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="short smoke sweep for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_PR8.json at "
                             "the repo root)")
    parser.add_argument("--max-p95-ms", type=float, default=None,
                        help="opt-in gate: fail when the lowest "
                             "level's p95 exceeds this many ms")
    parser.add_argument("--fanout", action="store_true",
                        help="run the subscriber-fanout scenario "
                             "instead of the request sweep")
    parser.add_argument("--fanout-levels", default="1,8,32",
                        help="comma-separated subscriber counts")
    parser.add_argument("--fanout-writes", type=int, default=40,
                        help="writes per fanout level (quick: 12)")
    parser.add_argument("--fanout-interval-ms", type=float, default=25.0,
                        help="writer pacing in the fanout scenario")
    args = parser.parse_args(argv)

    if args.fanout:
        levels = [int(x) for x in args.fanout_levels.split(",")
                  if x.strip()]
        writes = 12 if args.quick else args.fanout_writes
        report = run_fanout_sweep(levels, writes,
                                  args.fanout_interval_ms)
        out = Path(args.out) if args.out \
            else Path(__file__).resolve().parent.parent \
            / "BENCH_PR9.json"
        out.write_text(json.dumps(report, indent=1, sort_keys=True)
                       + "\n")
        print(f"{'subs':>6} {'deliv':>7} {'p50ms':>8} {'p95ms':>8} "
              f"{'p99ms':>8} {'faults':>7}")
        for row in report["levels"]:
            print(f"{row['subscribers']:>6} {row['deliveries']:>7} "
                  f"{row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f} "
                  f"{row['p99_ms']:>8.2f} {row['faults']:>7}")
        print(f"wrote {out}")
        if any(row["faults"] or row["deliveries"]
               != row["expected_deliveries"]
               for row in report["levels"]):
            print("FAIL: lost or malformed deliveries")
            return 1
        return 0

    levels = [int(x) for x in args.levels.split(",") if x.strip()]
    duration = 1.0 if args.quick else args.duration
    report = run_sweep(levels, duration, args.interval_ms,
                       args.write_ratio, args.max_concurrency)

    out = Path(args.out) if args.out \
        else Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    header = (f"{'conns':>6} {'reqs':>7} {'p50ms':>8} {'p95ms':>8} "
              f"{'p99ms':>8} {'shed%':>7} {'rps':>8}")
    print(header)
    for row in report["levels"]:
        print(f"{row['connections']:>6} {row['requests']:>7} "
              f"{row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f} "
              f"{row['p99_ms']:>8.2f} {row['shed_rate'] * 100:>6.1f}% "
              f"{row['throughput_rps']:>8.1f}")
    print(f"wrote {out}")

    if args.max_p95_ms is not None:
        lowest = report["levels"][0]
        if lowest["p95_ms"] > args.max_p95_ms:
            print(f"FAIL: p95 at {lowest['connections']} connection(s) "
                  f"is {lowest['p95_ms']:.2f} ms "
                  f"(gate {args.max_p95_ms} ms)")
            return 1
        print(f"gate ok: p95 {lowest['p95_ms']:.2f} ms "
              f"<= {args.max_p95_ms} ms")
    return 0


# ---------------------------------------------------------------------------
# Pytest smoke (collected with the benchmarks; fast)
# ---------------------------------------------------------------------------


import pytest  # noqa: E402


@pytest.mark.service
def test_load_driver_smoke(tmp_path):
    """One short open-loop level end to end: the driver produces a
    well-formed report and the admission counters reconcile."""
    report = run_sweep(levels=[2], duration_s=1.0, interval_ms=25.0,
                       write_ratio=0.2, max_concurrency=4)
    (level,) = report["levels"]
    assert level["requests"] > 0
    assert level["ok"] > 0
    assert level["errors"] == 0
    assert level["ok"] + level["shed"] == level["requests"]
    assert level["p50_ms"] <= level["p95_ms"] <= level["p99_ms"]
    assert 0.0 <= level["shed_rate"] <= 1.0
    out = tmp_path / "bench.json"
    out.write_text(json.dumps(report))
    assert json.loads(out.read_text())["benchmark"] \
        == "B12-service-latency"


@pytest.mark.service
def test_shed_rate_rises_under_overload():
    """With one executor slot and many injectors, admission control
    must shed rather than queue: the overloaded level reports a
    strictly positive shed rate while the gentle level stays near
    zero."""
    with build_service(max_concurrency=1) as service:
        gentle = run_level(service, connections=1, duration_s=1.0,
                           interval_ms=50.0, write_ratio=0.0)
        storm = run_level(service, connections=8, duration_s=1.5,
                          interval_ms=2.0, write_ratio=0.0)
    assert gentle["errors"] == 0 and storm["errors"] == 0
    assert storm["shed"] > 0
    assert storm["shed_rate"] > gentle["shed_rate"]


@pytest.mark.subscribe
def test_fanout_driver_smoke():
    """One small fanout level end to end: every write reaches every
    subscriber exactly once and the percentiles are well-ordered."""
    with build_service(max_concurrency=4) as service:
        row = run_fanout_level(service, subscribers=2, writes=5,
                               interval_ms=10.0)
    assert row["faults"] == 0
    assert row["deliveries"] == row["expected_deliveries"] == 10
    assert 0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]


if __name__ == "__main__":
    sys.exit(main())
