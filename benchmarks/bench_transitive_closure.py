"""B3 — transitive closure: the loop construct vs naive re-derivation,
at increasing prerequisite-DAG depth.

Expected shape: one loop evaluation is level-wise (each frontier row
extends once per level — the OO analogue of semi-naive); re-deriving the
whole closure after every small update (the naive maintenance policy)
costs ~N× one evaluation.
"""

import pytest

from repro.oql import QueryProcessor
from repro.subdb import Universe
from repro.university import GeneratorConfig, generate_university

DEPTHS = {"shallow": 15, "medium": 40, "deep": 80}


def _chain_db(courses):
    # prereqs_per_course=1 with the generator's construction yields a
    # random DAG; raise course count for longer chains.
    return generate_university(GeneratorConfig(
        departments=2, courses=courses, sections_per_course=1,
        teachers=4, students=10, enrollments_per_student=1, tas=1,
        grads=2, faculty=2, prereqs_per_course=2, seed=55))


@pytest.mark.benchmark(group="B3-loop-evaluation")
@pytest.mark.parametrize("depth", sorted(DEPTHS))
def test_loop_closure(benchmark, depth):
    data = _chain_db(DEPTHS[depth])
    qp = QueryProcessor(Universe(data.db))
    result = benchmark(lambda: qp.execute("context Course * Course_1 ^*"))
    benchmark.extra_info["courses"] = DEPTHS[depth]
    benchmark.extra_info["hierarchy_rows"] = len(result.subdatabase)


@pytest.mark.benchmark(group="B3-bounded-vs-unbounded")
@pytest.mark.parametrize("bound", ["^1", "^2", "^4", "^*"])
def test_bounded_levels(benchmark, bound):
    data = _chain_db(40)
    qp = QueryProcessor(Universe(data.db))
    benchmark(lambda: qp.execute(f"context Course * Course_1 {bound}"))


@pytest.mark.benchmark(group="B3-naive-rederivation")
def test_naive_rederive_after_each_update(benchmark):
    """The policy the loop+memoization design avoids: recompute the full
    closure after each of 5 unrelated updates."""
    data = _chain_db(40)
    qp = QueryProcessor(Universe(data.db))

    def run():
        for _ in range(5):
            data.db.insert("Student", name="noise")  # unrelated update
            qp.execute("context Course * Course_1 ^*")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="B3-naive-rederivation")
def test_memoized_engine_after_each_update(benchmark):
    """Same workload through the rule engine: unrelated updates do not
    invalidate the Prereq_closure target, so only the first query pays."""
    from repro.rules.engine import RuleEngine
    data = _chain_db(40)

    def run():
        engine = RuleEngine(data.db)
        engine.add_rule("if context Course * Course_1 ^* then "
                        "Prereq_closure (Course, Course_)", label="TC")
        for _ in range(5):
            data.db.insert("Student", name="noise")
            engine.query("context Prereq_closure:Course select title")
        return engine.stats.derivations["Prereq_closure"]

    derivations = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["derivations"] = derivations
