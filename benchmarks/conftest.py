"""Shared benchmark fixtures: deterministic generated databases at three
scales, plus helpers to build engines and workloads.

Scales (objects ≈ students + courses·sections + staff):

* ``small``  — ~200 objects, ~700 links
* ``medium`` — ~700 objects, ~2.5k links
* ``large``  — ~2k objects, ~8k links

Each benchmark reports its scale through the pytest-benchmark group and
param name, so ``pytest benchmarks/ --benchmark-only`` prints the series
each EXPERIMENTS.md row records.
"""

from __future__ import annotations

import pytest

from repro.university import GeneratorConfig, generate_university

SCALES = {
    "small": GeneratorConfig(
        departments=3, courses=10, sections_per_course=2, teachers=8,
        students=120, enrollments_per_student=3, tas=4, grads=12,
        faculty=4, seed=101),
    "medium": GeneratorConfig(
        departments=4, courses=30, sections_per_course=2, teachers=20,
        students=500, enrollments_per_student=3, tas=8, grads=30,
        faculty=8, seed=102),
    "large": GeneratorConfig(
        departments=6, courses=60, sections_per_course=3, teachers=40,
        students=1500, enrollments_per_student=4, tas=16, grads=60,
        faculty=16, seed=103),
}

_CACHE = {}


def dataset(scale: str, seed=None):
    """Session-cached generated database for a scale name.

    ``seed`` (threaded from the root ``--seed`` option) overrides the
    scale's fixed seed; the cache is keyed per (scale, seed) so mixed
    runs never alias."""
    key = (scale, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_university(SCALES[scale], seed=seed)
    return _CACHE[key]


def _seed_option(request):
    return request.config.getoption("--seed", default=None)


@pytest.fixture(params=["small", "medium", "large"])
def scaled_data(request):
    return request.param, dataset(request.param, _seed_option(request))


@pytest.fixture
def small_data(request):
    return dataset("small", _seed_option(request))


@pytest.fixture
def medium_data(request):
    return dataset("medium", _seed_option(request))


@pytest.fixture
def large_data(request):
    return dataset("large", _seed_option(request))
