#!/usr/bin/env python
"""Run every benchmark family at fixed seeds and emit ``BENCH_PR7.json``.

A standalone (non-pytest) runner over the same workloads as the
``bench_*.py`` modules: each scenario is built fresh, warmed once, timed
for a fixed number of rounds, and recorded as

    {"name", "group", "op", "n", "median_ms", "rounds", "metrics"}

where ``metrics`` carries the evaluator's EXPLAIN-ANALYZE counters (or
the rule engine's stats) from the last round.  The JSON lands at the
repository root by default so CI can upload it as an artifact.

Usage::

    python benchmarks/run_all.py                  # full sweep
    python benchmarks/run_all.py --quick          # CI smoke subset
    python benchmarks/run_all.py --seed 7         # re-seed datasets
    python benchmarks/run_all.py --baseline benchmarks/baseline_pr3.json \
        --max-regression 2.0                      # fail on TC regression
    python benchmarks/run_all.py --min-parallel-speedup 2.0  # gate the
        # parallel group's speedup over its sequential twins (opt-in:
        # thread speedup needs real cores; on a single-core or
        # GIL-saturated runner the measurement is meaningless, so the
        # default run only *records* the ratio and always verifies that
        # parallel results are byte-identical to sequential ones)
    python benchmarks/run_all.py --min-process-speedup 2.0  # same gate
        # for the process-mode scenarios (shared-memory planes +
        # worker processes); also opt-in for the same reason — CI's
        # multicore job enables it, a 1-CPU container cannot
    python benchmarks/run_all.py --max-null-overhead-pct 3.0  # fail when
        # the estimated cost of tracing-off instrumentation guards
        # exceeds this percentage of the untraced median (the
        # zero-overhead-off contract; 3.0 is also the default gate)
    python benchmarks/run_all.py --min-warm-speedup 5.0  # fail when a
        # warm (cache-hit) hot-query run is not at least this much
        # faster than its cold twin (opt-in: absolute timings on shared
        # runners jitter, but the warm/cold *ratio* is stable)
    python benchmarks/run_all.py --min-churn-hit-rate 0.9  # fail when
        # the write-churn scenario's cache hit rate under
        # unrelated-class writes falls below this fraction
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.baselines.datalog import (  # noqa: E402
    naive_eval,
    seminaive_eval,
    transitive_closure_program,
)
from repro.baselines.export import links_as_relation  # noqa: E402
from repro.oql import QueryProcessor  # noqa: E402
from repro.oql.evaluator import PatternEvaluator  # noqa: E402
from repro.oql.parser import parse_expression  # noqa: E402
from repro.oql.planner import OPTIMIZE_MODES  # noqa: E402
from repro.rules.control import (  # noqa: E402
    EvaluationMode,
    RuleChainingMode,
)
from repro.rules.engine import RuleEngine  # noqa: E402
from repro.storage.serialize import subdatabase_to_dict  # noqa: E402
from repro.subdb import Universe  # noqa: E402
from repro.university import (  # noqa: E402
    GeneratorConfig,
    build_paper_database,
    generate_university,
)


def _load_conftest():
    """The shared scale table from ``benchmarks/conftest.py``, loaded by
    path so this runner works from any working directory."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCH_DIR / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SCALES = _load_conftest().SCALES


class Scenario:
    """One timed workload: ``build()`` returns the callable to time."""

    def __init__(self, name: str, group: str, op: str, n: int,
                 build: Callable[[], Callable[[], Optional[dict]]],
                 quick: bool = True):
        self.name = name
        self.group = group
        self.op = op
        self.n = n
        self.build = build
        #: Included in ``--quick`` runs (CI smoke).
        self.quick = quick


SCENARIOS: List[Scenario] = []


def scenario(name: str, group: str, op: str, n: int, quick: bool = True):
    def register(build):
        SCENARIOS.append(Scenario(name, group, op, n, build, quick))
        return build

    return register


_DATASETS: Dict[tuple, object] = {}
_SEED: Optional[int] = None


def _dataset(config: GeneratorConfig):
    """Session-cached dataset, keyed per config object and seed."""
    key = (id(config), _SEED)
    if key not in _DATASETS:
        _DATASETS[key] = generate_university(config, seed=_SEED)
    return _DATASETS[key]


def _scaled(scale: str):
    return _dataset(SCALES[scale])


def _query_runner(data, text: str):
    qp = QueryProcessor(Universe(data.db))

    def run():
        qp.execute(text)
        return qp.evaluator.last_metrics.snapshot()

    return run


# ---------------------------------------------------------------------------
# B1 pattern matching
# ---------------------------------------------------------------------------

_CHAINS = {2: "context Teacher * Section",
           3: "context Teacher * Section * Course",
           4: "context Teacher * Section * Course * Department"}

for _length, _text in _CHAINS.items():
    @scenario(f"chain-length-{_length}", "pattern_matching",
              "chain-match", _length)
    def _build(text=_text):
        return _query_runner(_scaled("small"), text)

for _scale in ("small", "medium", "large"):
    @scenario(f"three-way-chain-{_scale}", "pattern_matching",
              "chain-match", SCALES[_scale].students,
              quick=_scale != "large")
    def _build(scale=_scale):
        return _query_runner(_scaled(scale),
                             "context Teacher * Section * Course")

    @scenario(f"wide-fanout-{_scale}", "pattern_matching", "chain-match",
              SCALES[_scale].students, quick=_scale != "large")
    def _build(scale=_scale):
        return _query_runner(
            _scaled(scale),
            "context Department * Course * Section * Student")

    @scenario(f"extent-scan-{_scale}", "pattern_matching", "chain-match",
              SCALES[_scale].students, quick=_scale != "large")
    def _build(scale=_scale):
        return _query_runner(_scaled(scale), "context Student * Section")


# ---------------------------------------------------------------------------
# Partition-parallel execution (K=4 workers over anchor-id ranges)
# ---------------------------------------------------------------------------

def _canonical(subdb) -> bytes:
    doc = subdatabase_to_dict(subdb)
    doc["name"] = "_"
    return json.dumps(doc, sort_keys=True).encode()


def _parallel_runner(data, text: str, workers: int = 4,
                     worker_mode: str = "thread"):
    """Time the partitioned executor (thread or process mode); parity
    against the sequential executor is asserted up front — a parallel
    speedup that changes the answer is not a speedup."""
    sequential = QueryProcessor(Universe(data.db))
    parallel = QueryProcessor(Universe(data.db), workers=workers,
                              worker_mode=worker_mode)
    parallel.evaluator.min_parallel_rows = 1
    if _canonical(sequential.execute(text).subdatabase) \
            != _canonical(parallel.execute(text).subdatabase):
        raise AssertionError(
            f"{worker_mode} execution not byte-identical for {text!r}")

    def run():
        parallel.execute(text)
        return parallel.evaluator.last_metrics.snapshot()

    return run


#: parallel scenario -> its sequential twin, for the speedup report.
PARALLEL_PAIRS: Dict[str, str] = {}

#: process scenario -> its sequential twin (gated by
#: ``--min-process-speedup`` on multi-core runners).
PROCESS_PAIRS: Dict[str, str] = {}

for _scale in ("small", "medium", "large"):
    @scenario(f"parallel-wide-fanout-{_scale}", "parallel",
              "chain-match", SCALES[_scale].students,
              quick=_scale != "large")
    def _build(scale=_scale):
        return _parallel_runner(
            _scaled(scale),
            "context Department * Course * Section * Student")

    PARALLEL_PAIRS[f"parallel-wide-fanout-{_scale}"] = \
        f"wide-fanout-{_scale}"

    @scenario(f"parallel-extent-scan-{_scale}", "parallel",
              "chain-match", SCALES[_scale].students,
              quick=_scale != "large")
    def _build(scale=_scale):
        return _parallel_runner(_scaled(scale),
                                "context Student * Section")

    PARALLEL_PAIRS[f"parallel-extent-scan-{_scale}"] = \
        f"extent-scan-{_scale}"

    @scenario(f"process-wide-fanout-{_scale}", "parallel",
              "chain-match", SCALES[_scale].students,
              quick=_scale != "large")
    def _build(scale=_scale):
        return _parallel_runner(
            _scaled(scale),
            "context Department * Course * Section * Student",
            worker_mode="process")

    PROCESS_PAIRS[f"process-wide-fanout-{_scale}"] = \
        f"wide-fanout-{_scale}"

    @scenario(f"process-extent-scan-{_scale}", "parallel",
              "chain-match", SCALES[_scale].students,
              quick=_scale != "large")
    def _build(scale=_scale):
        return _parallel_runner(_scaled(scale),
                                "context Student * Section",
                                worker_mode="process")

    PROCESS_PAIRS[f"process-extent-scan-{_scale}"] = \
        f"extent-scan-{_scale}"


# ---------------------------------------------------------------------------
# Cross-query result cache: hot-query (warm vs cold twins) and
# write-churn (hit rate under a stream of unrelated-class writes).
# Every other scenario keeps the default cache-off processors, so the
# rest of the suite still measures cold evaluation.
# ---------------------------------------------------------------------------

#: warm scenario -> its cold twin, for the speedup report.
CACHE_PAIRS: Dict[str, str] = {}

#: Hot workloads expensive enough that a cache hit (a clone of the
#: memoized result) is a large multiple cheaper than re-evaluation.
_HOT_QUERIES = {
    "hot-agg-small": (
        "small", "context Department * Course * Section * Student "
                 "where COUNT(Student by Course) > 10"),
    "hot-agg-medium": (
        "medium", "context Department * Course * Section * Student "
                  "where COUNT(Student by Course) > 10"),
}


def _warm_cache_runner(data, text: str):
    """Time repeated execution with the result cache enabled; the build
    populates the entry, so every timed round is a cache hit (the
    version vector never moves — nothing writes to this dataset)."""
    qp = QueryProcessor(Universe(data.db), cache_bytes=64 << 20)
    qp.execute(text)

    def run():
        qp.execute(text)
        return qp.evaluator.last_metrics.snapshot()

    return run


for _hot_name, (_scale, _text) in _HOT_QUERIES.items():
    @scenario(f"{_hot_name}-warm", "cache", "chain-match",
              SCALES[_scale].students)
    def _build(scale=_scale, text=_text):
        return _warm_cache_runner(_scaled(scale), text)

    @scenario(f"{_hot_name}-cold", "cache", "chain-match",
              SCALES[_scale].students)
    def _build(scale=_scale, text=_text):
        return _query_runner(_scaled(scale), text)

    CACHE_PAIRS[f"{_hot_name}-warm"] = f"{_hot_name}-cold"


#: Dedicated dataset: the churn stream inserts objects, and the shared
#: scaled datasets must stay read-only for every other scenario.
_CHURN_CONFIG = GeneratorConfig(seed=91)


@scenario("write-churn-unrelated", "cache", "query+update",
          _CHURN_CONFIG.students)
def _build():
    data = _dataset(_CHURN_CONFIG)
    qp = QueryProcessor(Universe(data.db), cache_bytes=64 << 20)
    text = "context Teacher * Section * Course"
    qp.execute(text)
    tick = [0]

    def run():
        cache = qp.evaluator.result_cache
        hits0, lookups0 = cache.hits, cache.hits + cache.misses
        for _ in range(20):
            tick[0] += 1
            # Department is outside the query's dependency classes
            # (Teacher, Section, Course), so the entry must survive.
            data.db.insert("Department", f"churn{tick[0]}",
                           name=f"D{tick[0]}")
            qp.execute(text)
        snap = qp.evaluator.last_metrics.snapshot()
        hits = cache.hits - hits0
        lookups = (cache.hits + cache.misses) - lookups0
        snap["churn_hit_rate"] = round(hits / lookups, 4) \
            if lookups else None
        return snap

    return run


def cache_speedups(results: List[dict]) -> List[dict]:
    """Warm-over-cold median speedup per hot-query pair, plus every
    churn scenario's hit rate, for the report and the opt-in gates."""
    by_name = {record["name"]: record for record in results}
    report = []
    for warm_name, cold_name in sorted(CACHE_PAIRS.items()):
        warm = by_name.get(warm_name)
        cold = by_name.get(cold_name)
        if warm is None or cold is None:
            continue
        report.append({
            "warm": warm_name,
            "cold": cold_name,
            "cold_ms": cold["median_ms"],
            "warm_ms": warm["median_ms"],
            "speedup": round(cold["median_ms"] / warm["median_ms"], 3)
            if warm["median_ms"] else None,
        })
    return report


def cache_churn(results: List[dict]) -> List[dict]:
    return [{"scenario": record["name"],
             "hit_rate": record["metrics"]["churn_hit_rate"]}
            for record in results
            if record["group"] == "cache" and record["metrics"]
            and "churn_hit_rate" in record["metrics"]]


# ---------------------------------------------------------------------------
# B3 transitive closure (the regression-gated group)
# ---------------------------------------------------------------------------

# One config object per depth so _dataset's id() cache key is stable.
_TC_CONFIGS = {
    depth: GeneratorConfig(
        departments=2, courses=courses, sections_per_course=1,
        teachers=4, students=10, enrollments_per_student=1, tas=1,
        grads=2, faculty=2, prereqs_per_course=2, seed=55)
    for depth, courses in (("shallow", 15), ("medium", 40),
                           ("deep", 80))}

for _depth in _TC_CONFIGS:
    @scenario(f"loop-closure-{_depth}", "transitive_closure",
              "loop-eval", _TC_CONFIGS[_depth].courses)
    def _build(depth=_depth):
        return _query_runner(_dataset(_TC_CONFIGS[depth]),
                             "context Course * Course_1 ^*")

for _mode in ("thread", "process"):
    _prefix = "parallel" if _mode == "thread" else "process"

    @scenario(f"{_prefix}-loop-closure-deep", "parallel", "loop-eval",
              _TC_CONFIGS["deep"].courses)
    def _build(mode=_mode):
        return _parallel_runner(_dataset(_TC_CONFIGS["deep"]),
                                "context Course * Course_1 ^*",
                                worker_mode=mode)

    if _mode == "thread":
        PARALLEL_PAIRS["parallel-loop-closure-deep"] = \
            "loop-closure-deep"
    else:
        PROCESS_PAIRS["process-loop-closure-deep"] = \
            "loop-closure-deep"


for _bound in ("^1", "^2", "^4"):
    @scenario(f"bounded-loop-{_bound.lstrip('^')}", "transitive_closure",
              "loop-eval", 40, quick=False)
    def _build(bound=_bound):
        return _query_runner(_dataset(_TC_CONFIGS["medium"]),
                             f"context Course * Course_1 {bound}")


@scenario("naive-rederive-5x", "transitive_closure", "loop-eval", 40,
          quick=False)
def _build():
    data = _dataset(_TC_CONFIGS["medium"])
    qp = QueryProcessor(Universe(data.db))

    def run():
        for _ in range(5):
            data.db.insert("Student", name="noise")  # unrelated update
            qp.execute("context Course * Course_1 ^*")
        return qp.evaluator.last_metrics.snapshot()

    return run


# ---------------------------------------------------------------------------
# B6 aggregation
# ---------------------------------------------------------------------------

for _scale in ("small", "medium"):
    @scenario(f"count-by-{_scale}", "aggregation", "agg-where",
              SCALES[_scale].students, quick=_scale == "small")
    def _build(scale=_scale):
        return _query_runner(
            _scaled(scale),
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 10")


@scenario("avg-by-department", "aggregation", "agg-where",
          SCALES["medium"].courses, quick=False)
def _build():
    return _query_runner(
        _scaled("medium"),
        "context Department * Course "
        "where AVG(Course.credit_hours by Department) > 2")


# ---------------------------------------------------------------------------
# B7 braces / outer-join subsumption
# ---------------------------------------------------------------------------

_BRACES = {
    "plain": "context Teacher * Section * Course",
    "one-brace": "context Teacher * {Section * Course}",
    "nested": "context {{Teacher} * Section} * Course",
    "all-singletons": "context {Teacher} * {Section} * {Course}",
}

for _variant, _text in _BRACES.items():
    @scenario(f"braces-{_variant}", "braces_outerjoin", "chain-match",
              SCALES["medium"].students,
              quick=_variant in ("plain", "one-brace"))
    def _build(text=_text):
        return _query_runner(_scaled("medium"), text)


# ---------------------------------------------------------------------------
# B9 optimizer ablation
# ---------------------------------------------------------------------------

_WORKLOADS = {
    "selective-right": "Student * Section * Course [c# = 1000]",
    "no-filter": "Teacher * Section * Course",
}

for _wl, _expr_text in _WORKLOADS.items():
    for _mode in OPTIMIZE_MODES:
        @scenario(f"optimizer-{_wl}-{_mode}", "optimizer", "chain-match",
                  SCALES["medium"].students, quick=_mode == "cost")
        def _build(expr_text=_expr_text, mode=_mode):
            data = _scaled("medium")
            evaluator = PatternEvaluator(Universe(data.db),
                                         optimize=mode)
            expr = parse_expression(expr_text)

            def run():
                evaluator.evaluate(expr)
                return evaluator.last_metrics.snapshot()

            return run


# ---------------------------------------------------------------------------
# B5 rule chains
# ---------------------------------------------------------------------------

def _chain_engine(data, depth):
    engine = RuleEngine(data.db)
    engine.add_rule("if context Teacher * Section * Course then L1 "
                    "(Teacher, Course)", label="L1")
    for level in range(2, depth + 1):
        engine.add_rule(
            f"if context L{level - 1}:Teacher * L{level - 1}:Course "
            f"then L{level} (Teacher, Course)", label=f"L{level}")
    return engine


@scenario("cold-rule-chain-4", "rule_chains", "derive", 4)
def _build():
    data = _scaled("small")

    def run():
        engine = _chain_engine(data, 4)
        engine.query("context L4:Teacher select name")
        return engine.stats.snapshot()

    return run


@scenario("warm-requery-4", "rule_chains", "query", 4, quick=False)
def _build():
    data = _scaled("small")
    engine = _chain_engine(data, 4)
    engine.query("context L4:Teacher select name")

    def run():
        engine.query("context L4:Teacher select name")
        return engine.stats.snapshot()

    return run


# ---------------------------------------------------------------------------
# B2 query:update mixes, B4 control strategies, B10 incremental
# ---------------------------------------------------------------------------

_MIX_CONFIG = GeneratorConfig(
    departments=3, courses=12, sections_per_course=2, teachers=8,
    students=150, enrollments_per_student=3, tas=4, grads=10,
    faculty=4, seed=77)

for _mode_name, _mode in (("pre", EvaluationMode.PRE_EVALUATED),
                          ("post", EvaluationMode.POST_EVALUATED)):
    @scenario(f"mixed-workload-{_mode_name}", "chaining", "query+update",
              _MIX_CONFIG.students, quick=_mode_name == "pre")
    def _build(mode=_mode):
        data = _dataset(_MIX_CONFIG)
        engine = RuleEngine(data.db, controller="result")
        engine.add_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 10 then Hot (Course)",
            label="HOT", mode=mode)
        engine.refresh()
        students = data.all_of("Student")
        sections = data.all_of("Section")
        link = data.db.schema.resolve_link("Student", "Section").link

        def run():
            for i in range(3):
                student = students[(i * 13) % len(students)]
                section = sections[(i * 7) % len(sections)]
                if section.oid in data.db.linked(student.oid, link):
                    data.db.dissociate(student, "enrolled", section)
                else:
                    data.db.associate(student, "enrolled", section)
                engine.query("context Hot:Course select title")
            return engine.stats.snapshot()

        return run


_CHAIN_RULES = [
    ("Ra", "if context Teacher * Section then REa (Teacher, Section)"),
    ("Rb", "if context REa:Teacher * REa:Section then REb (Teacher)"),
    ("Rc", "if context REb:Teacher then REc (Teacher)"),
    ("Rd", "if context REc:Teacher then REd (Teacher)"),
]
_CONTROL_MODES = {
    "rule": {"Ra": RuleChainingMode.BACKWARD,
             "Rb": RuleChainingMode.BACKWARD,
             "Rc": RuleChainingMode.FORWARD,
             "Rd": RuleChainingMode.FORWARD},
    "result": {"Ra": EvaluationMode.POST_EVALUATED,
               "Rb": EvaluationMode.POST_EVALUATED,
               "Rc": EvaluationMode.POST_EVALUATED,
               "Rd": EvaluationMode.PRE_EVALUATED},
}

for _controller in ("rule", "result"):
    @scenario(f"control-{_controller}-oriented", "control_strategy",
              "query+update", 8, quick=_controller == "result")
    def _build(controller=_controller):
        modes = _CONTROL_MODES[controller]

        def run():
            data = build_paper_database()
            engine = RuleEngine(data.db, controller=controller)
            for label, text in _CHAIN_RULES:
                engine.add_rule(text, label=label, mode=modes[label])
            engine.query("context REd:Teacher select name")
            for i in range(8):
                with data.db.batch():
                    teacher = data.db.insert("Teacher", name=f"T{i}",
                                             **{"SS#": str(i)})
                    data.db.associate(teacher, "teaches", data["s4"])
                engine.query("context REd:Teacher select name")
            return engine.stats.snapshot()

        return run


_INC_CONFIG = GeneratorConfig(courses=40, sections_per_course=2,
                              teachers=25, students=300, seed=62)

for _controller in ("incremental", "result"):
    @scenario(f"link-stream-{_controller}", "incremental", "maintain",
              _INC_CONFIG.students, quick=_controller == "incremental")
    def _build(controller=_controller):
        data = _dataset(_INC_CONFIG)
        engine = RuleEngine(data.db, controller=controller)
        engine.add_rule("if context Teacher * Section * Course "
                        "then Teacher_course (Teacher, Course)",
                        label="R1", mode=EvaluationMode.PRE_EVALUATED)
        engine.refresh()
        if controller == "incremental":
            engine.controller._maintainers_for("Teacher_course")
        teachers = data.all_of("Teacher")
        sections = data.all_of("Section")
        link = data.db.schema.resolve_link("Teacher", "Section").link

        def run():
            for i in range(10):
                teacher = teachers[i % len(teachers)]
                section = sections[(i * 3) % len(sections)]
                if section.oid in data.db.linked(teacher.oid, link):
                    data.db.dissociate(teacher, "teaches", section)
                else:
                    data.db.associate(teacher, "teaches", section)
            return engine.stats.snapshot()

        return run


# ---------------------------------------------------------------------------
# Tracing overhead: traced vs untraced medians, plus an estimate of the
# *null-tracer* cost — what every query pays while tracing stays off.
# ---------------------------------------------------------------------------

#: traced scenario -> its untraced twin, for the overhead report.
TRACING_PAIRS: Dict[str, str] = {}


def _tracing_workload(kind: str):
    if kind == "chain":
        return (_scaled("small"),
                "context Department * Course * Section * Student")
    return (_dataset(_TC_CONFIGS["medium"]),
            "context Course * Course_1 ^*")


def _traced_runner(data, text: str):
    qp = QueryProcessor(Universe(data.db))

    def run():
        obs.install(obs.Tracer())
        try:
            qp.execute(text)
            return qp.evaluator.last_metrics.snapshot()
        finally:
            obs.uninstall()

    return run


for _kind, _op in (("chain", "chain-match"), ("loop", "loop-eval")):
    @scenario(f"tracing-{_kind}-off", "tracing", _op,
              SCALES["small"].students)
    def _build(kind=_kind):
        return _query_runner(*_tracing_workload(kind))

    @scenario(f"tracing-{_kind}-on", "tracing", _op,
              SCALES["small"].students)
    def _build(kind=_kind):
        return _traced_runner(*_tracing_workload(kind))

    TRACING_PAIRS[f"tracing-{_kind}-on"] = f"tracing-{_kind}-off"


def _instrumentation_hits(kind: str) -> int:
    """How many spans one run of the workload would open, counted with
    the inert :class:`CountingTracer` (results unaffected)."""
    data, text = _tracing_workload(kind)
    qp = QueryProcessor(Universe(data.db))
    counter = obs.CountingTracer()
    obs.install(counter)
    try:
        qp.execute(text)
    finally:
        obs.uninstall()
    return counter.starts


def _guard_check_ns(iterations: int = 500_000) -> float:
    """Cost of one tracing-off guard (``tracer = obs.TRACER`` plus the
    ``is not None`` test), measured with the real module attribute."""
    assert obs.TRACER is None
    start = time.perf_counter()
    for _ in range(iterations):
        tracer = obs.TRACER
        if tracer is not None:  # pragma: no cover - tracing is off
            raise AssertionError
    return (time.perf_counter() - start) / iterations * 1e9


def tracing_overhead(results: List[dict]) -> List[dict]:
    """Traced-vs-untraced medians per workload, plus the estimated
    tracing-*off* overhead: every span site costs ~3 guard checks per
    hit (the start guard, the finish guard, and counter updates), so
    ``hits * 3 * guard_ns`` against the untraced median bounds what the
    instrumentation costs when no tracer is installed."""
    by_name = {record["name"]: record for record in results}
    guard_ns = _guard_check_ns()
    report = []
    for on_name, off_name in sorted(TRACING_PAIRS.items()):
        on = by_name.get(on_name)
        off = by_name.get(off_name)
        if on is None or off is None:
            continue
        kind = on_name[len("tracing-"):-len("-on")]
        hits = _instrumentation_hits(kind)
        off_ms = off["median_ms"]
        null_pct = (hits * 3 * guard_ns) / (off_ms * 1e6) * 100.0 \
            if off_ms else 0.0
        report.append({
            "workload": kind,
            "untraced_ms": off_ms,
            "traced_ms": on["median_ms"],
            "traced_ratio": round(on["median_ms"] / off_ms, 3)
            if off_ms else None,
            "span_starts": hits,
            "guard_ns": round(guard_ns, 2),
            "null_overhead_pct": round(null_pct, 4),
        })
    return report


# ---------------------------------------------------------------------------
# B8 Datalog baseline
# ---------------------------------------------------------------------------

_DAG_CONFIG = GeneratorConfig(
    departments=2, courses=40, sections_per_course=1, teachers=4,
    students=10, enrollments_per_student=1, tas=1, grads=2, faculty=2,
    prereqs_per_course=2, seed=88)


@scenario("datalog-oo-loop-v40", "datalog_baseline", "loop-eval", 40)
def _build():
    return _query_runner(_dataset(_DAG_CONFIG),
                         "context Course * Course_1 ^*")


for _engine_name, _fn in (("seminaive", seminaive_eval),
                          ("naive", naive_eval)):
    @scenario(f"datalog-{_engine_name}-v40", "datalog_baseline",
              "datalog-eval", 40, quick=_engine_name == "seminaive")
    def _build(fn=_fn):
        data = _dataset(_DAG_CONFIG)
        edges = set(links_as_relation(data.db, "Course", "prereq").rows)
        program = transitive_closure_program(edges)

        def run():
            fn(program)["tc"]
            return {"edges": len(edges)}

        return run


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def run_scenario(spec: Scenario, rounds: int) -> dict:
    fn = spec.build()
    fn()  # warmup (populates lazy caches the way pytest rounds do)
    times = []
    metrics = None
    for _ in range(rounds):
        start = time.perf_counter()
        metrics = fn()
        times.append((time.perf_counter() - start) * 1000.0)
    record = {
        "name": spec.name,
        "group": spec.group,
        "op": spec.op,
        "n": spec.n,
        "median_ms": round(statistics.median(times), 4),
        "min_ms": round(min(times), 4),
        "rounds": rounds,
        "metrics": metrics,
    }
    if isinstance(metrics, dict) and "worker_mode" in metrics:
        # Surface how the scenario actually executed (the evaluator
        # falls back to serial when the anchor is too small).
        record["worker_mode"] = metrics["worker_mode"]
        record["workers"] = metrics.get("workers_used")
    return record


def check_regression(results: List[dict], baseline_path: Path,
                     max_ratio: float,
                     min_gate_ms: float = 1.0) -> List[str]:
    """Compare transitive-closure timings against a baseline file.

    The best-of-rounds time is compared (medians of sub-millisecond
    scenarios jitter well past 2x on shared CI runners), and baselines
    faster than ``min_gate_ms`` are skipped outright — too fast to gate.
    """
    baseline = json.loads(baseline_path.read_text())
    reference = {r["name"]: r for r in baseline.get("results", [])
                 if r.get("group") == "transitive_closure"}
    failures = []
    for record in results:
        if record["group"] != "transitive_closure":
            continue
        ref = reference.get(record["name"])
        if ref is None:
            continue
        ref_ms = ref.get("min_ms") or ref.get("median_ms")
        got_ms = record.get("min_ms") or record["median_ms"]
        if not ref_ms or ref_ms < min_gate_ms:
            continue
        ratio = got_ms / ref_ms
        if ratio > max_ratio:
            failures.append(
                f"{record['name']}: {got_ms:.2f} ms vs "
                f"baseline {ref_ms:.2f} ms "
                f"({ratio:.2f}x > {max_ratio:.2f}x)")
    return failures


def _pair_speedups(results: List[dict],
                   pairs: Dict[str, str]) -> List[dict]:
    """Measured speedup of each partitioned scenario over its
    sequential twin (best-of-rounds), for the report and the opt-in
    gates."""
    by_name = {record["name"]: record for record in results}
    report = []
    for parallel_name, sequential_name in sorted(pairs.items()):
        parallel = by_name.get(parallel_name)
        sequential = by_name.get(sequential_name)
        if parallel is None or sequential is None:
            continue
        seq_ms = sequential.get("min_ms") or sequential["median_ms"]
        par_ms = parallel.get("min_ms") or parallel["median_ms"]
        report.append({
            "parallel": parallel_name,
            "sequential": sequential_name,
            "sequential_ms": seq_ms,
            "parallel_ms": par_ms,
            "speedup": round(seq_ms / par_ms, 3) if par_ms else None,
        })
    return report


def parallel_speedups(results: List[dict]) -> List[dict]:
    return _pair_speedups(results, PARALLEL_PAIRS)


def process_speedups(results: List[dict]) -> List[dict]:
    return _pair_speedups(results, PROCESS_PAIRS)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset with fewer rounds")
    parser.add_argument("--seed", type=int, default=None,
                        help="override every dataset's RNG seed")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per scenario "
                             "(default 5, quick 3)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_PR7.json",
                        help="output JSON path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON to gate the "
                             "transitive-closure group against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when a gated timing exceeds "
                             "baseline * this ratio")
    parser.add_argument("--min-gate-ms", type=float, default=1.0,
                        help="skip gating scenarios whose baseline is "
                             "faster than this (too noisy to compare)")
    parser.add_argument("--min-parallel-speedup", type=float,
                        default=None,
                        help="fail when a parallel scenario's speedup "
                             "over its sequential twin falls below this "
                             "ratio (opt-in: only meaningful on "
                             "multi-core runners; parity is always "
                             "checked regardless)")
    parser.add_argument("--min-process-speedup", type=float,
                        default=None,
                        help="fail when a process-mode scenario's "
                             "speedup over its sequential twin falls "
                             "below this ratio (opt-in: needs real "
                             "cores — a single-CPU container cannot "
                             "speed anything up; parity is always "
                             "checked regardless)")
    parser.add_argument("--max-null-overhead-pct", type=float,
                        default=3.0,
                        help="fail when the estimated tracing-off guard "
                             "cost exceeds this percentage of a "
                             "workload's untraced median")
    parser.add_argument("--min-warm-speedup", type=float, default=None,
                        help="fail when a warm hot-query run is not at "
                             "least this many times faster than its "
                             "cold twin (opt-in)")
    parser.add_argument("--min-churn-hit-rate", type=float, default=None,
                        help="fail when the write-churn cache hit rate "
                             "falls below this fraction (opt-in)")
    args = parser.parse_args(argv)

    global _SEED
    _SEED = args.seed
    rounds = args.rounds or (3 if args.quick else 5)
    chosen = [s for s in SCENARIOS if s.quick] if args.quick \
        else list(SCENARIOS)

    results = []
    for spec in chosen:
        record = run_scenario(spec, rounds)
        results.append(record)
        print(f"{spec.group:20s} {spec.name:28s} "
              f"{record['median_ms']:10.3f} ms")

    from repro.oql import kernels, parallel as mp_parallel

    speedups = parallel_speedups(results)
    proc_speedups = process_speedups(results)
    overhead = tracing_overhead(results)
    warm = cache_speedups(results)
    churn = cache_churn(results)
    try:
        cpus_available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus_available = os.cpu_count()
    payload = {
        "meta": {
            "quick": args.quick,
            "seed": args.seed,
            "rounds": rounds,
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
            "cpus_available": cpus_available,
            "mp_start_method": mp_parallel.start_method(),
            "numpy_kernels": kernels.numpy_active(),
            "scenarios": len(results),
        },
        "results": results,
        "parallel_speedups": speedups,
        "process_speedups": proc_speedups,
        "tracing_overhead": overhead,
        "cache_speedups": warm,
        "cache_churn": churn,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out} ({len(results)} scenarios)")

    if speedups:
        print(f"\nthread-parallel speedup over sequential twins "
              f"(cpus={os.cpu_count()}, "
              f"available={cpus_available}):")
        for entry in speedups:
            print(f"  {entry['parallel']:32s} {entry['speedup']:.2f}x "
                  f"({entry['sequential_ms']:.2f} ms -> "
                  f"{entry['parallel_ms']:.2f} ms)")
        if args.min_parallel_speedup is not None:
            slow = [entry for entry in speedups
                    if entry["speedup"] is not None
                    and entry["speedup"] < args.min_parallel_speedup]
            if slow:
                print(f"\nPARALLEL SPEEDUP below "
                      f"{args.min_parallel_speedup:.2f}x:",
                      file=sys.stderr)
                for entry in slow:
                    print(f"  {entry['parallel']}: "
                          f"{entry['speedup']:.2f}x", file=sys.stderr)
                return 1

    if proc_speedups:
        print(f"\nprocess-parallel speedup over sequential twins "
              f"(start method {mp_parallel.start_method()}):")
        for entry in proc_speedups:
            print(f"  {entry['parallel']:32s} {entry['speedup']:.2f}x "
                  f"({entry['sequential_ms']:.2f} ms -> "
                  f"{entry['parallel_ms']:.2f} ms)")
        if args.min_process_speedup is not None:
            slow = [entry for entry in proc_speedups
                    if entry["speedup"] is not None
                    and entry["speedup"] < args.min_process_speedup]
            if slow:
                print(f"\nPROCESS SPEEDUP below "
                      f"{args.min_process_speedup:.2f}x:",
                      file=sys.stderr)
                for entry in slow:
                    print(f"  {entry['parallel']}: "
                          f"{entry['speedup']:.2f}x", file=sys.stderr)
                return 1

    if overhead:
        print("\ntracing overhead (traced ratio; estimated "
              "tracing-off guard cost):")
        for entry in overhead:
            print(f"  {entry['workload']:8s} "
                  f"{entry['traced_ratio']:.2f}x traced, "
                  f"{entry['span_starts']} span starts, "
                  f"null {entry['null_overhead_pct']:.4f}% "
                  f"(gate {args.max_null_overhead_pct:.1f}%)")
        hot = [entry for entry in overhead
               if entry["null_overhead_pct"]
               > args.max_null_overhead_pct]
        if hot:
            print(f"\nNULL-TRACER OVERHEAD above "
                  f"{args.max_null_overhead_pct:.1f}%:", file=sys.stderr)
            for entry in hot:
                print(f"  {entry['workload']}: "
                      f"{entry['null_overhead_pct']:.4f}%",
                      file=sys.stderr)
            return 1

    if warm:
        print("\ncache speedup (warm hit over cold evaluation):")
        for entry in warm:
            print(f"  {entry['warm']:32s} {entry['speedup']:.2f}x "
                  f"({entry['cold_ms']:.2f} ms -> "
                  f"{entry['warm_ms']:.3f} ms)")
        if args.min_warm_speedup is not None:
            slow = [entry for entry in warm
                    if entry["speedup"] is not None
                    and entry["speedup"] < args.min_warm_speedup]
            if slow:
                print(f"\nCACHE SPEEDUP below "
                      f"{args.min_warm_speedup:.2f}x:", file=sys.stderr)
                for entry in slow:
                    print(f"  {entry['warm']}: "
                          f"{entry['speedup']:.2f}x", file=sys.stderr)
                return 1

    if churn:
        print("\ncache hit rate under unrelated-class write churn:")
        for entry in churn:
            print(f"  {entry['scenario']:32s} "
                  f"{entry['hit_rate']:.1%}")
        if args.min_churn_hit_rate is not None:
            cold_churn = [entry for entry in churn
                          if entry["hit_rate"] is not None
                          and entry["hit_rate"]
                          < args.min_churn_hit_rate]
            if cold_churn:
                print(f"\nCHURN HIT RATE below "
                      f"{args.min_churn_hit_rate:.0%}:", file=sys.stderr)
                for entry in cold_churn:
                    print(f"  {entry['scenario']}: "
                          f"{entry['hit_rate']:.1%}", file=sys.stderr)
                return 1

    if args.baseline is not None:
        failures = check_regression(results, args.baseline,
                                    args.max_regression,
                                    args.min_gate_ms)
        if failures:
            print(f"\nREGRESSION against {args.baseline}:",
                  file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no transitive-closure regression vs {args.baseline} "
              f"(max {args.max_regression:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
