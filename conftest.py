"""Repository-root pytest configuration.

``pytest_addoption`` must live in a rootdir ``conftest.py`` to be seen
regardless of which directory is collected, so the ``--seed`` option is
registered here and consumed by ``benchmarks/conftest.py`` (it re-seeds
every generated benchmark dataset).  Plain test runs ignore it.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--seed", action="store", type=int, default=None,
        help="override the RNG seed of every generated benchmark "
             "dataset (default: each scale's fixed per-scale seed)")
