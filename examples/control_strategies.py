"""Section 6 live: rule-oriented (POSTGRES-style) vs result-oriented
control on the paper's Ra -> Rb -> Rc -> Rd chain.

Watch the rule-oriented strategy serve a stale REd after a base update —
and stay stale until somebody happens to query REb — while the
result-oriented strategy keeps the pre-evaluated REd fresh by running the
very same rules forward.

Run:  python examples/control_strategies.py
"""

from repro import EvaluationMode, RuleChainingMode, RuleEngine
from repro.university import build_paper_database

CHAIN = [
    ("Ra", "if context Teacher * Section then REa (Teacher, Section)"),
    ("Rb", "if context REa:Teacher * REa:Section then REb (Teacher)"),
    ("Rc", "if context REb:Teacher then REc (Teacher)"),
    ("Rd", "if context REc:Teacher then REd (Teacher)"),
]


def build(controller, modes):
    data = build_paper_database()
    engine = RuleEngine(data.db, controller=controller)
    for label, text in CHAIN:
        engine.add_rule(text, label=label, mode=modes[label])
    return data, engine


def red(engine):
    result = engine.query("context REd:Teacher select name display")
    return sorted(result.table.column("REd:Teacher.name"))


def hire(data, name):
    with data.db.batch():
        teacher = data.db.insert("Teacher", name=name, degree="PhD",
                                 **{"SS#": "999"})
        data.db.associate(teacher, "teaches", data["s4"])


print("=" * 72)
print("POSTGRES-style rule-oriented control")
print("(Ra, Rb backward; Rc, Rd forward)")
print("=" * 72)
data, engine = build("rule", {
    "Ra": RuleChainingMode.BACKWARD, "Rb": RuleChainingMode.BACKWARD,
    "Rc": RuleChainingMode.FORWARD, "Rd": RuleChainingMode.FORWARD})
print("REd initially:", red(engine))
hire(data, "Newton")
print("base updated (hired Newton).")
print("REd is stale?", engine.is_stale("REd"))
print("REd as served:", red(engine), "   <-- Newton is MISSING (stale!)")
print("...someone queries REb...")
engine.query("context REb:Teacher select name")
print("REd is stale?", engine.is_stale("REd"))
print("REd as served:", red(engine))

print()
print("=" * 72)
print("Result-oriented control (the paper's strategy)")
print("(REd pre-evaluated; REa, REb, REc post-evaluated)")
print("=" * 72)
data, engine = build("result", {
    "Ra": EvaluationMode.POST_EVALUATED,
    "Rb": EvaluationMode.POST_EVALUATED,
    "Rc": EvaluationMode.POST_EVALUATED,
    "Rd": EvaluationMode.PRE_EVALUATED})
engine.refresh()
print("REd initially:", red(engine))
hire(data, "Newton")
print("base updated (hired Newton).")
print("REd is stale?", engine.is_stale("REd"))
print("REd as served:", red(engine), "   <-- fresh immediately")
print()
print("The same rules Ra/Rb ran FORWARD to maintain REd and would run")
print("BACKWARD for a direct query on REb — modes attach to results,")
print("not to rules, which removes POSTGRES's mixing restriction.")
