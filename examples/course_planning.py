"""Course planning with forward chaining.

The registrar scenario the paper's rules R2/R3 motivate: Suggest_offer
and Deps_need_res are declared PRE_EVALUATED, so every enrollment update
immediately re-runs the relevant rules forward and the planning reports
are always fresh — no query ever waits for derivation.

Run:  python examples/course_planning.py
"""

from repro import EvaluationMode, RuleEngine
from repro.university import GeneratorConfig, generate_university

data = generate_university(GeneratorConfig(
    departments=3, courses=15, sections_per_course=2, teachers=8,
    students=120, enrollments_per_student=3, tas=4, grads=12,
    faculty=4, seed=2026))
db = data.db

engine = RuleEngine(db, controller="result")
engine.add_rule(
    "if context Department * Course * Section * Student "
    "where COUNT(Student by Course) > 25 "
    "then Suggest_offer (Course)",
    label="R2", mode=EvaluationMode.PRE_EVALUATED)
engine.add_rule(
    "if context Department * Suggest_offer:Course "
    "where COUNT(Suggest_offer:Course by Department) > 2 "
    "then Deps_need_res (Department)",
    label="R3", mode=EvaluationMode.PRE_EVALUATED)
engine.refresh()


def report():
    offers = engine.query(
        "context Suggest_offer:Course select title c# display")
    needy = engine.query(
        "context Deps_need_res:Department select name display")
    print("Courses suggested for next semester:")
    print(offers.output or "  (none)")
    print("Departments needing more resources:")
    print(needy.output or "  (none)")
    print(f"[stats] {engine.stats.snapshot()}")
    print()


print("=== Initial state ===")
report()

# A registration wave: every student also enrolls in the first section of
# three more courses.  Each batched wave triggers one forward pass.
sections = data.all_of("Section")
students = data.all_of("Student")
print("=== After a registration wave ===")
with db.batch():
    for i, student in enumerate(students):
        for j in range(3):
            target = sections[(i + j * 7) % len(sections)]
            link = db.schema.resolve_link("Student", "Section").link
            if target.oid not in db.linked(student.oid, link):
                db.associate(student, "enrolled", target)
report()

# Dropping a section's enrollments shrinks the suggestion list again.
print("=== After mass drops from one section ===")
victim = sections[0]
link = db.schema.resolve_link("Student", "Section").link
with db.batch():
    for student in students:
        if victim.oid in db.linked(student.oid, link):
            db.dissociate(student, "enrolled", victim)
report()

print("Note: every report above read a stored, already-fresh result —")
print("the forward passes ran at update time (PRE_EVALUATED results).")
