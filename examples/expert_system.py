"""An expert system over a database — the paper's opening motivation.

"Merging expert systems and database management systems technologies has
drawn much interest ... motivated mainly by the need for future ESs that
deal with large amounts of data."  This example builds a small equipment
-maintenance knowledge base: deductive rules encode the expertise, the
object database holds the fleet, and inference chains derive maintenance
advice that updates keep current.

Run:  python examples/expert_system.py
"""

from repro import Database, EvaluationMode, INTEGER, REAL, RuleEngine, \
    STRING, Schema

# ---------------------------------------------------------------------------
# Schema: machines of types, with sensors and maintenance records.
# ---------------------------------------------------------------------------
schema = Schema("maintenance")
for cls, doc in [
    ("Machine", "a fleet machine"),
    ("Press", "hydraulic presses"),
    ("Lathe", "lathes"),
    ("Sensor", "a sensor mounted on a machine"),
    ("Reading", "one sensor reading"),
    ("WorkOrder", "an open maintenance work order"),
]:
    schema.add_eclass(cls, doc)
schema.add_subclass("Machine", "Press")
schema.add_subclass("Machine", "Lathe")
schema.add_attribute("Machine", "name", STRING)
schema.add_attribute("Machine", "hours", INTEGER)
schema.add_attribute("Sensor", "kind", STRING)
schema.add_attribute("Reading", "value", REAL)
schema.add_attribute("WorkOrder", "priority", INTEGER)
schema.add_composition("Machine", "Sensor", name="sensors", many=True)
schema.add_association("Sensor", "Reading", name="readings", many=True)
schema.add_association("WorkOrder", "Machine", name="machine",
                       many=False)

db = Database(schema)
machines = {}
for name, cls, hours in [("P-100", "Press", 12000),
                         ("P-200", "Press", 800),
                         ("L-300", "Lathe", 9500)]:
    machines[name] = db.insert(cls, name, name=name, hours=hours)
for machine, kind, values in [
    ("P-100", "temperature", [82.0, 95.5, 101.2]),
    ("P-100", "vibration", [0.2, 0.3]),
    ("P-200", "temperature", [45.0, 47.0]),
    ("L-300", "vibration", [0.9, 1.4]),
]:
    sensor = db.insert("Sensor", kind=kind)
    db.associate(machines[machine], "sensors", sensor)
    for value in values:
        reading = db.insert("Reading", value=value)
        db.associate(sensor, "readings", reading)

# ---------------------------------------------------------------------------
# The knowledge base.  Every rule derives a subdatabase the next rule
# can read — the closure property is what lets expertise *chain*.
# ---------------------------------------------------------------------------
engine = RuleEngine(db, controller="result")

engine.add_rule(
    "if context Machine * Sensor [kind = 'temperature'] * "
    "Reading [value > 100] then Overheating (Machine)",
    label="KB1", mode=EvaluationMode.PRE_EVALUATED)
engine.add_rule(
    "if context Machine * Sensor [kind = 'vibration'] * "
    "Reading [value > 1.0] then Shaking (Machine)",
    label="KB2", mode=EvaluationMode.PRE_EVALUATED)
engine.add_rule(
    "if context Machine [hours > 10000] then Worn (Machine)",
    label="KB3")
# Chained expertise: anything overheating *or* worn needs inspection.
engine.add_rule(
    "if context Overheating:Machine then Needs_inspection (Machine)",
    label="KB4")
engine.add_rule(
    "if context Worn:Machine then Needs_inspection (Machine)",
    label="KB5")


def report():
    for target in ["Overheating", "Shaking", "Needs_inspection"]:
        result = engine.query(
            f"context {target}:Machine select name hours display")
        print(f"-- {target}:")
        print(result.output)
        print()


print("=== Initial diagnosis ===")
report()

print("=== Explain the inference chain ===")
print(engine.explain("context Needs_inspection:Machine "
                     "select name display").render())
print()

print("=== A hot reading arrives on P-200 ===")
sensor = next(iter(db.linked(
    machines["P-200"].oid,
    next(l for l in schema.aggregations() if l.name == "sensors"))))
with db.batch():
    reading = db.insert("Reading", value=104.0)
    db.associate(db.entity(sensor), "readings", reading)
report()

print("Derivations so far:", dict(engine.stats.derivations))
