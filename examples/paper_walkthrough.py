"""A guided tour through every example in the paper, in order.

Reproduces: the University schema (Figure 2.1), the inherited view of RA
(Figure 2.2), the subdatabase SDB (Figure 3.1), queries 3.1/3.2, rule R1
(Figure 4.3), rules R2-R5 with backward chaining (Query 4.1), the brace
semantics of Section 5.1 (Query 5.1), and the loop-based transitive
closure of Section 5.2 (rules R6/R7).

Run:  python examples/paper_walkthrough.py
"""

from repro import Dictionary, RuleEngine
from repro.university import build_paper_database, build_sdb


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


data = build_paper_database()
engine = RuleEngine(data.db)
engine.universe.register(build_sdb(data))
catalog = Dictionary(data.db.schema)

banner("Figure 2.1 — the University schema (S-diagram)")
print(catalog.render_sdiagram())

banner("Figure 2.2 — class RA with all inherited associations explicit")
print(catalog.render_inherited_view("RA"))

banner("Figure 3.1 — the subdatabase SDB")
print(engine.universe.get_subdb("SDB").describe())
print("\nExtensional pattern types present:")
for ptype in sorted(engine.universe.get_subdb("SDB").pattern_types(),
                    key=lambda t: (-len(t), t.slots)):
    print(f"  {ptype}")

banner("Query 3.1 — context Teacher * Section ... display (Figure 3.2)")
result = engine.query(
    "context SDB:Teacher * SDB:Section select name section# display")
print(result.output)

banner("Query 3.2 — 6000-level courses with current offerings")
result = engine.query(
    "context Department * Course [c# >= 6000 and c# < 7000] * Section "
    "select name title textbook print")
print(result.output)

banner("Rule R1 — derive Teacher_course (Figure 4.3)")
engine.add_rule(
    "if context SDB:Teacher * SDB:Section * SDB:Course "
    "then Teacher_course (Teacher, Course)", label="R1")
print(engine.derive("Teacher_course").describe())

banner("Rules R2-R5 — Suggest_offer, Deps_need_res, May_teach")
engine.add_rule(
    "if context Department[name = 'CIS'] * Course * Section * Student "
    "where COUNT(Student by Course) > 39 then Suggest_offer (Course)",
    label="R2")
engine.add_rule(
    "if context Department * Suggest_offer:Course "
    "where COUNT(Suggest_offer:Course by Department) > 0 "
    "then Deps_need_res (Department)", label="R3 (threshold adapted)")
engine.add_rule(
    "if context TA * Teacher * Section * Suggest_offer:Course "
    "then May_teach (TA, Course)", label="R4")
engine.add_rule(
    "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
    "then May_teach (Grad, Course)", label="R5")
print("Suggest_offer:", sorted(engine.derive("Suggest_offer").labels()))
print("Deps_need_res:", sorted(engine.derive("Deps_need_res").labels()))
print("May_teach:")
print(engine.derive("May_teach").describe())

banner("Query 4.1 — backward chaining (R2 -> R4, R5 -> query)")
result = engine.query(
    "context Faculty * Advising * May_teach:TA [GPA < 3.5] "
    "select TA[name] Faculty[name] display")
print(result.output)
print("\nDerivations performed:", dict(engine.stats.derivations))

banner("Section 5.1 / Query 5.1 — braces (outer-join) with Nulls")
result = engine.query(
    "context {{Grad} * Advising} * Faculty "
    "select Grad[SS#] Faculty[name] display")
print(result.output)

banner("Section 5.2 — transitive closure by looping (prereq chain)")
result = engine.query("context Course * Course_1 ^*")
print(result.subdatabase.describe())

banner("Rule R6 — the Grad-teaching-grad hierarchy")
engine.add_rule(
    "if context Grad * TA * Teacher * Section * Student * Grad_1 ^* "
    "then Grad_teaching_grad (Grad, Grad_)", label="R6")
print(engine.derive("Grad_teaching_grad").describe())

banner("Rule R7 — first and third hierarchy levels")
engine.add_rule(
    "if context Grad * TA * Teacher * Section * Student * Grad_1 ^* "
    "then First_and_third (Grad, Grad_2)", label="R7")
print(engine.derive("First_and_third").describe())
