"""Bill-of-materials explosion: transitive closure on a CAD-style schema.

The paper's introduction motivates deductive OO databases with CAD/CAM
applications; this example builds a parts catalog with a ``contains``
self-association and uses the loop construct of Section 5.2 to compute
the where-used / explosion hierarchies, then chains a second rule over
the derived subdatabase (the closure property at work).

Run:  python examples/parts_explosion.py
"""

from repro import Database, INTEGER, RuleEngine, STRING, Schema

schema = Schema("cad")
schema.add_eclass("Part")
schema.add_eclass("Supplier")
schema.add_attribute("Part", "name", STRING)
schema.add_attribute("Part", "cost", INTEGER)
schema.add_attribute("Supplier", "name", STRING)
schema.add_association("Part", "Part", name="contains", many=True)
schema.add_association("Supplier", "Part", name="supplies", many=True)

db = Database(schema)
parts = {}
for name, cost in [("car", 20000), ("engine", 6000), ("chassis", 4000),
                   ("piston", 120), ("crankshaft", 700), ("bolt", 1),
                   ("wheel", 200), ("tire", 90)]:
    parts[name] = db.insert("Part", name, name=name, cost=cost)
for container, contents in [
    ("car", ["engine", "chassis", "wheel"]),
    ("engine", ["piston", "crankshaft", "bolt"]),
    ("chassis", ["bolt"]),
    ("wheel", ["tire", "bolt"]),
]:
    for item in contents:
        db.associate(parts[container], "contains", parts[item])
acme = db.insert("Supplier", name="Acme Fasteners")
db.associate(acme, "supplies", parts["bolt"])
db.associate(acme, "supplies", parts["tire"])

engine = RuleEngine(db)

print("=== Parts explosion (transitive closure by looping) ===")
result = engine.query("context Part * Part_1 ^*")
for row in result.subdatabase.sorted_rows():
    chain = " -> ".join(repr(v) for v in row if v is not None)
    print(f"  {chain}")

print()
print("=== Rule: Contains_all — every (assembly, any-depth component) ===")
engine.add_rule(
    "if context Part * Part_1 ^* then Contains_all (Part, Part_)",
    label="BOM")
bom = engine.derive("Contains_all")
print(f"  {len(bom)} hierarchy rows; classes: {bom.slot_names}")

print()
print("=== Chained rule: sole-sourced components in active use ===")
# Components supplied by Acme that appear (at any depth) inside some
# assembly's explosion — a rule reading the rule-derived subdatabase.
engine.add_rule(
    "if context Supplier [name = 'Acme Fasteners'] * Contains_all:Part_1 "
    "then Sole_sourced (Contains_all:Part_1)", label="EXP")
exposed = engine.query(
    "context Sole_sourced:Part_1 select name cost display")
print(exposed.output)

print()
print("Derivations:", dict(engine.stats.derivations))
