"""Quickstart: build a schema, load objects, query, and define a rule.

Run:  python examples/quickstart.py
"""

from repro import Database, INTEGER, RuleEngine, STRING, Schema

# ---------------------------------------------------------------------------
# 1. Define an object-oriented schema (the S-diagram): E-classes,
#    descriptive attributes (aggregation links to D-classes), entity
#    associations, and generalization links.
# ---------------------------------------------------------------------------
schema = Schema("library")
schema.add_eclass("Author")
schema.add_eclass("Book")
schema.add_eclass("Novel")
schema.add_subclass("Book", "Novel")           # Novel is-a Book
schema.add_attribute("Author", "name", STRING)
schema.add_attribute("Book", "title", STRING)
schema.add_attribute("Book", "year", INTEGER)
schema.add_association("Author", "Book", name="wrote", many=True)

# ---------------------------------------------------------------------------
# 2. Load extensional data.
# ---------------------------------------------------------------------------
db = Database(schema)
knuth = db.insert("Author", name="Knuth")
eco = db.insert("Author", name="Eco")
taocp = db.insert("Book", title="TAOCP", year=1968)
rose = db.insert("Novel", title="The Name of the Rose", year=1980)
db.associate(knuth, "wrote", taocp)
db.associate(eco, "wrote", rose)

# ---------------------------------------------------------------------------
# 3. Query with OQL: the Context clause names an association pattern, the
#    Select subclause picks attributes, Display renders a table.
# ---------------------------------------------------------------------------
engine = RuleEngine(db)
result = engine.query(
    "context Author * Book [year >= 1975] select name title display")
print("Recent books and their authors:")
print(result.output)
print()

# ---------------------------------------------------------------------------
# 4. Define a deductive rule.  The derived subdatabase Novelists holds
#    authors who wrote a novel; by the induced generalization association
#    its Author class inherits everything the base Author class has, so
#    it can be queried (and read by further rules) like any class.
# ---------------------------------------------------------------------------
engine.add_rule("if context Author * Novel then Novelists (Author)")
novelists = engine.query("context Novelists:Author select name display")
print("Novelists (derived by rule):")
print(novelists.output)

# ---------------------------------------------------------------------------
# 5. The derived subdatabase stays consistent: insert a new novel and the
#    result reflects it on the next query (backward chaining by default).
# ---------------------------------------------------------------------------
with db.batch():
    pale = db.insert("Novel", title="Pale Fire", year=1962)
    nabokov = db.insert("Author", name="Nabokov")
    db.associate(nabokov, "wrote", pale)
print()
print("After inserting Nabokov:")
print(engine.query("context Novelists:Author select name display").output)
