"""The EXPERIMENTS.md Part-1 harness: verify every paper artifact and
print a PASS/FAIL table.

This is the programmatic counterpart of `tests/test_paper_examples.py`:
each check re-derives a paper figure/query/rule result and compares it
against the expectation stated in the paper, so a reader can regenerate
the reproduction record in one command.

Run:  python examples/run_paper_experiments.py
"""

from __future__ import annotations

import traceback
from typing import Callable, List, Tuple

from repro import (
    AmbiguousPathError,
    CyclicDataError,
    PatternType,
    RuleChainingMode,
    RuleEngine,
)
from repro.university import build_paper_database, build_sdb


def fresh_engine():
    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.universe.register(build_sdb(data))
    return data, engine


def add_paper_rules(engine):
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * Student "
        "where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")


CHECKS: List[Tuple[str, str, Callable[[], None]]] = []


def check(artifact: str, expectation: str):
    def register(fn):
        CHECKS.append((artifact, expectation, fn))
        return fn
    return register


@check("Fig 2.1", "University schema builds with all classes and links")
def _fig21():
    data, _ = fresh_engine()
    schema = data.db.schema
    assert schema.resolve_link("Student",
                               "Department").link.name == "Major"
    assert schema.superclasses("TA") == {"Grad", "Teacher", "Student",
                                         "Person"}


@check("Fig 2.2", "RA inherits 'enrolled' along a unique path; "
                  "TA * Section is ambiguous")
def _fig22():
    data, _ = fresh_engine()
    assert data.db.schema.resolve_link("RA",
                                       "Section").link.name == "enrolled"
    try:
        data.db.schema.resolve_link("TA", "Section")
        raise AssertionError("expected ambiguity")
    except AmbiguousPathError:
        pass


@check("Fig 3.1", "SDB holds 7 patterns of exactly 5 types")
def _fig31():
    data, engine = fresh_engine()
    sdb = engine.universe.get_subdb("SDB")
    assert len(sdb) == 7
    assert len(sdb.pattern_types()) == 5
    assert PatternType(("Teacher", "Section")) in sdb.pattern_types()


@check("Q3.1 / Fig 3.2", "result = {(t1,s2),(t2,s3),(t3,s4)}")
def _q31():
    _, engine = fresh_engine()
    result = engine.query(
        "context SDB:Teacher * SDB:Section select name section# display")
    assert result.subdatabase.labels() == {("t1", "s2"), ("t2", "s3"),
                                           ("t3", "s4")}


@check("Q3.2", "three (dept, title, textbook) rows for 6000-level courses")
def _q32():
    _, engine = fresh_engine()
    result = engine.query(
        "context Department * Course [c# >= 6000 and c# < 7000] * "
        "Section select name title textbook print")
    assert len(result.table) == 3


@check("R1 / Fig 4.3", "Teacher_course = {(t1,c1),(t2,c1),(t2,c2)} with "
                       "a new direct association")
def _r1():
    _, engine = fresh_engine()
    engine.add_rule("if context SDB:Teacher * SDB:Section * SDB:Course "
                    "then Teacher_course (Teacher, Course)")
    subdb = engine.derive("Teacher_course")
    assert subdb.labels() == {("t1", "c1"), ("t2", "c1"), ("t2", "c2")}
    assert subdb.intension.edge_between(0, 1).kind == "derived"


@check("R2", "Suggest_offer = {c1} (the only course with >39 students)")
def _r2():
    _, engine = fresh_engine()
    add_paper_rules(engine)
    assert engine.derive("Suggest_offer").labels() == {("c1",)}


@check("R4+R5", "May_teach is the union of both rules' pattern sets")
def _r45():
    _, engine = fresh_engine()
    add_paper_rules(engine)
    subdb = engine.derive("May_teach")
    assert set(subdb.slot_names) == {"TA", "Course", "Grad"}
    assert len(subdb) == 6


@check("Q4.1", "backward chaining triggers R2 before R4/R5; "
               "answer = (Quinn, Su)")
def _q41():
    _, engine = fresh_engine()
    add_paper_rules(engine)
    result = engine.query(
        "context Faculty * Advising * May_teach:TA [GPA < 3.5] "
        "select TA[name] Faculty[name] display")
    assert result.table.rows == [("Quinn", "Su")]
    assert engine.stats.derivations["Suggest_offer"] == 1


@check("§5.1 / Q5.1", "braces keep grads without advisors (Null faculty)")
def _q51():
    _, engine = fresh_engine()
    result = engine.query(
        "context {{Grad} * Advising} * Faculty "
        "select Grad[SS#] Faculty[name] display")
    rows = dict(result.table.rows)
    assert rows["300-00-0002"] is None


@check("§5.2 / R6", "loop builds the Grad-teaching-grad hierarchy with "
                    "run-time aliases")
def _r6():
    _, engine = fresh_engine()
    engine.add_rule(
        "if context Grad * TA * Teacher * Section * Student * Grad_1 ^* "
        "then GG (Grad, Grad_)")
    subdb = engine.derive("GG")
    assert subdb.slot_names == ("Grad", "Grad_1", "Grad_2")
    assert ("ta1", "ta2", "g1") in subdb.labels()


@check("§5.2", "cyclic instance data is detected (the paper's "
               "acyclicity assumption)")
def _cycle():
    data, engine = fresh_engine()
    data.db.associate(data["ta2"], "teaches", data["s4"])
    data.db.associate(data["ta1"], "enrolled", data["s4"])
    try:
        engine.query("context Grad * TA * Teacher * Section * Student "
                     "* Grad_1 ^*")
        raise AssertionError("expected CyclicDataError")
    except CyclicDataError:
        pass


@check("§6", "rule-oriented control serves a stale REd until REb is "
             "queried; result-oriented does not")
def _section6():
    data = build_paper_database()
    engine = RuleEngine(data.db, controller="rule")
    engine.add_rule("if context Teacher * Section then REa "
                    "(Teacher, Section)", label="Ra",
                    mode=RuleChainingMode.BACKWARD)
    engine.add_rule("if context REa:Teacher then REd (Teacher)",
                    label="Rd", mode=RuleChainingMode.FORWARD)
    engine.query("context REd:Teacher select name")
    with data.db.batch():
        t = data.db.insert("Teacher", name="Fresh", **{"SS#": "0"})
        data.db.associate(t, "teaches", data["s4"])
    assert engine.is_stale("REd")
    stale = engine.query("context REd:Teacher select name display")
    assert "Fresh" not in stale.output
    engine.query("context REa:Teacher select name")
    fresh = engine.query("context REd:Teacher select name display")
    assert "Fresh" in fresh.output


def main() -> int:
    width = max(len(a) for a, _, _ in CHECKS)
    failures = 0
    for artifact, expectation, fn in CHECKS:
        try:
            fn()
            status = "PASS"
        except Exception:
            status = "FAIL"
            failures += 1
            traceback.print_exc()
        print(f"{status}  {artifact.ljust(width)}  {expectation}")
    print()
    print(f"{len(CHECKS) - failures}/{len(CHECKS)} paper artifacts "
          f"reproduced")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
