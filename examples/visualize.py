"""Render the paper's diagrams as Graphviz DOT files and analyze the
database as a graph with networkx.

Writes into ./out/ :
    university_schema.dot     -- Figure 2.1 (the S-diagram)
    sdb_intension.dot         -- Figure 3.1a
    sdb_extension.dot         -- Figure 3.1b
    teacher_course.dot        -- Figure 4.3a (derived association dashed,
                                 induced generalization bold)

Render with e.g.:  dot -Tsvg out/university_schema.dot -o schema.svg

Run:  python examples/visualize.py
"""

from pathlib import Path

import networkx as nx

from repro import RuleEngine, viz
from repro.interop import link_graph, schema_graph, subdatabase_graph
from repro.university import build_paper_database, build_sdb

out = Path(__file__).resolve().parent / "out"
out.mkdir(exist_ok=True)

data = build_paper_database()
engine = RuleEngine(data.db)
sdb = build_sdb(data)
engine.universe.register(sdb)
engine.add_rule("if context SDB:Teacher * SDB:Section * SDB:Course "
                "then Teacher_course (Teacher, Course)", label="R1")

files = {
    "university_schema.dot": viz.schema_to_dot(data.db.schema),
    "sdb_intension.dot": viz.intension_to_dot(sdb),
    "sdb_extension.dot": viz.extension_to_dot(sdb),
    "teacher_course.dot": viz.intension_to_dot(
        engine.derive("Teacher_course")),
}
for name, dot in files.items():
    (out / name).write_text(dot)
    print(f"wrote {out / name}")

print()
print("=== Graph analysis (networkx) ===")
sgraph = schema_graph(data.db.schema)
print(f"S-diagram: {sgraph.number_of_nodes()} classes/domains, "
      f"{sgraph.number_of_edges()} links")

ext = subdatabase_graph(sdb, by_label=True)
components = list(nx.connected_components(ext))
print(f"SDB extensional diagram: {len(components)} connected components")
for component in sorted(components, key=len, reverse=True):
    print(f"  {sorted(str(node) for node in component)}")

prereq = link_graph(data.db, "Course", "prereq", by_label=True)
order = list(nx.topological_sort(prereq))
print(f"prerequisite order (topological): {' -> '.join(order)}")
