"""Setuptools entry point.

The primary project metadata lives in ``pyproject.toml``; this file exists
so that environments without the ``wheel`` package (and without network
access to fetch it) can still perform an editable install via
``python setup.py develop`` / ``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
