"""repro — a deductive rule-based language for object-oriented databases.

A from-scratch reproduction of *A Rule-based Language for Deductive
Object-Oriented Databases* (Alashqur, Su, Lam — ICDE 1990): the OSAM*
structural object model, subdatabases, the OQL query language, the
deductive rule language with induced generalization, loop-based transitive
closure, and the result-oriented control strategy.

Quickstart::

    from repro import RuleEngine
    from repro.university import build_paper_database

    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.add_rule(
        "if context Teacher * Section * Course "
        "then Teacher_course (Teacher, Course)", label="R1")
    result = engine.query(
        "context Teacher_course:Teacher * Teacher_course:Course "
        "select name title display")
    print(result.output)
"""

from repro.errors import (
    AmbiguousPathError,
    ConstraintViolationError,
    CyclicDataError,
    CyclicRuleError,
    NoAssociationError,
    OQLSemanticError,
    OQLSyntaxError,
    ReproError,
    RuleSemanticError,
    RuleSyntaxError,
    SchemaError,
    TypeMismatchError,
    UnknownSubdatabaseError,
)
from repro.model import (
    BOOLEAN,
    Database,
    DClass,
    Dictionary,
    EClass,
    Entity,
    INTEGER,
    OID,
    REAL,
    STRING,
    Schema,
    UpdateEvent,
    UpdateKind,
    check_database,
)
from repro.subdb import (
    ClassRef,
    DatabaseSnapshot,
    ExtensionalPattern,
    IntensionalPattern,
    PatternType,
    SnapshotUniverse,
    Subdatabase,
    Universe,
)
from repro.oql import (
    BudgetExceeded,
    OperationRegistry,
    PatternEvaluator,
    QueryBudget,
    QueryProcessor,
    QueryResult,
    Table,
    parse_expression,
    parse_query,
)
from repro.oql.subscribe import (
    Subscription,
    SubscriptionDelta,
    SubscriptionManager,
)
from repro.rules import (
    DeductiveRule,
    EvaluationMode,
    Explanation,
    IncrementalResultController,
    IncrementalRule,
    NotIncremental,
    ResultOrientedController,
    RuleChainingMode,
    RuleEngine,
    RuleOrientedController,
    parse_rule,
)
from repro.subdb import algebra
from repro import interop, viz
from repro.storage import load_session, save_session
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "SchemaError", "AmbiguousPathError", "NoAssociationError",
    "TypeMismatchError", "ConstraintViolationError", "CyclicDataError",
    "OQLSyntaxError", "OQLSemanticError", "UnknownSubdatabaseError",
    "RuleSyntaxError", "RuleSemanticError", "CyclicRuleError",
    # model
    "Schema", "Database", "Dictionary", "EClass", "DClass", "Entity",
    "OID", "INTEGER", "STRING", "REAL", "BOOLEAN", "UpdateEvent",
    "UpdateKind", "check_database",
    # subdatabases
    "ClassRef", "ExtensionalPattern", "PatternType", "IntensionalPattern",
    "Subdatabase", "Universe", "DatabaseSnapshot", "SnapshotUniverse",
    # OQL
    "parse_query", "parse_expression", "PatternEvaluator",
    "QueryProcessor", "QueryResult", "Table", "OperationRegistry",
    "QueryBudget", "BudgetExceeded",
    "Subscription", "SubscriptionDelta", "SubscriptionManager",
    # rules
    "DeductiveRule", "parse_rule", "RuleEngine", "EvaluationMode",
    "RuleChainingMode", "ResultOrientedController",
    "RuleOrientedController", "IncrementalResultController",
    "IncrementalRule", "NotIncremental", "Explanation",
    # extensions
    "algebra", "viz", "interop", "save_session", "load_session",
    # service
    "QueryService", "ServiceClient", "ServiceConfig", "ServiceError",
]
