"""Baselines: the relational deductive approach the paper contrasts with.

The paper's introduction positions its language against the PROLOG-based
deductive rule languages over *relational* databases (GAL84, ULL85, CER86,
STO87 ...), where "each rule defines a virtual relation derived from other
base and/or virtual relations" and the closure property holds with respect
to the relational model.  To benchmark the OO-deductive system against
that line of work on equal footing, this subpackage provides:

* :mod:`repro.baselines.relational` — a small relational algebra
  (relations as tuple sets; select/project/join/union/difference),
* :mod:`repro.baselines.datalog` — a Datalog engine over those relations
  with naive and semi-naive bottom-up evaluation, stratified-safe rule
  checking, and helpers to export an object database's links as
  relations.
"""

from repro.baselines.relational import Relation
from repro.baselines.datalog import (
    Atom,
    DatalogProgram,
    DatalogRule,
    naive_eval,
    seminaive_eval,
)
from repro.baselines.export import extent_as_relation, links_as_relation
from repro.baselines.parser import parse_datalog

__all__ = [
    "Relation",
    "Atom",
    "DatalogRule",
    "DatalogProgram",
    "naive_eval",
    "seminaive_eval",
    "links_as_relation",
    "extent_as_relation",
    "parse_datalog",
]
