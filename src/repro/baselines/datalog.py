"""A Datalog engine with naive and semi-naive bottom-up evaluation.

This is the relational deductive baseline: rules are Horn clauses over
relations, as in the PROLOG/relational-DBMS integrations the paper's
introduction surveys.  It serves two purposes here:

* **cross-validation** — the transitive closure a loop expression computes
  over the object database must equal the fixpoint a Datalog TC program
  computes over the exported link relation (property tests rely on this);
* **benchmarking** — semi-naive vs naive evaluation gives the classical
  incremental-evaluation shape against which the loop evaluator's
  level-wise frontier expansion is compared (benchmark B3/B8).

Variables are Python strings starting with an uppercase letter (the usual
Datalog convention); anything else is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import OQLSemanticError, RuleSemanticError


def is_variable(term: Any) -> bool:
    """Datalog convention: identifiers starting with an uppercase letter
    are variables."""
    return isinstance(term, str) and bool(term) and term[0].isupper()


@dataclass(frozen=True)
class Atom:
    """``predicate(term, term, ...)`` — terms are variables or constants."""

    predicate: str
    terms: Tuple[Any, ...]

    def variables(self) -> Set[str]:
        return {t for t in self.terms if is_variable(t)}

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class DatalogRule:
    """``head :- body1, body2, ...`` (positive bodies only)."""

    head: Atom
    body: Tuple[Atom, ...]

    def __post_init__(self):
        unsafe = self.head.variables() - set().union(
            *(atom.variables() for atom in self.body)) \
            if self.body else self.head.variables()
        if unsafe:
            raise RuleSemanticError(
                f"unsafe Datalog rule: head variables {sorted(unsafe)} "
                f"do not occur in the body")

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(map(str, self.body))}"


@dataclass
class DatalogProgram:
    """A set of rules plus the extensional database (facts)."""

    rules: List[DatalogRule]
    facts: Dict[str, Set[Tuple[Any, ...]]]

    def idb_predicates(self) -> Set[str]:
        return {rule.head.predicate for rule in self.rules}


def _match_atom(atom: Atom, fact: Tuple[Any, ...],
                bindings: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Unify an atom against a ground fact under existing bindings."""
    if len(atom.terms) != len(fact):
        return None
    out = dict(bindings)
    for term, value in zip(atom.terms, fact):
        if is_variable(term):
            bound = out.get(term, _UNBOUND)
            if bound is _UNBOUND:
                out[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return out


_UNBOUND = object()


def _eval_rule(rule: DatalogRule,
               relations: Dict[str, Set[Tuple[Any, ...]]],
               delta: Optional[Dict[str, Set[Tuple[Any, ...]]]] = None
               ) -> Set[Tuple[Any, ...]]:
    """All head facts derivable by one rule.

    With ``delta`` (semi-naive), the rule is evaluated once per body
    position, forcing that position to range over the delta relation —
    every new derivation must use at least one new fact.
    """
    def expand(position: int, bindings: Dict[str, Any],
               forced: Optional[int]) -> Iterable[Dict[str, Any]]:
        if position == len(rule.body):
            yield bindings
            return
        atom = rule.body[position]
        if forced == position:
            source = delta.get(atom.predicate, set())
        else:
            source = relations.get(atom.predicate, set())
        for fact in source:
            nxt = _match_atom(atom, fact, bindings)
            if nxt is not None:
                yield from expand(position + 1, nxt, forced)

    derived: Set[Tuple[Any, ...]] = set()
    positions: Sequence[Optional[int]]
    if delta is None:
        positions = [None]
    else:
        positions = [i for i, atom in enumerate(rule.body)
                     if atom.predicate in delta]
        if not positions:
            return derived
    for forced in positions:
        for bindings in expand(0, {}, forced):
            derived.add(tuple(bindings[t] if is_variable(t) else t
                              for t in rule.head.terms))
    return derived


def naive_eval(program: DatalogProgram
               ) -> Dict[str, Set[Tuple[Any, ...]]]:
    """Bottom-up fixpoint, re-deriving everything each round."""
    relations: Dict[str, Set[Tuple[Any, ...]]] = {
        name: set(facts) for name, facts in program.facts.items()}
    for predicate in program.idb_predicates():
        relations.setdefault(predicate, set())
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            derived = _eval_rule(rule, relations)
            target = relations.setdefault(rule.head.predicate, set())
            before = len(target)
            target |= derived
            if len(target) != before:
                changed = True
    return relations


def seminaive_eval(program: DatalogProgram
                   ) -> Dict[str, Set[Tuple[Any, ...]]]:
    """Bottom-up fixpoint with differential (semi-naive) evaluation:
    each round only joins against the facts new in the previous round."""
    relations: Dict[str, Set[Tuple[Any, ...]]] = {
        name: set(facts) for name, facts in program.facts.items()}
    for predicate in program.idb_predicates():
        relations.setdefault(predicate, set())

    # Round 0: seed the deltas with one naive pass over the EDB.
    delta: Dict[str, Set[Tuple[Any, ...]]] = {}
    for rule in program.rules:
        derived = _eval_rule(rule, relations)
        new = derived - relations[rule.head.predicate]
        if new:
            delta.setdefault(rule.head.predicate, set()).update(new)
    for predicate, new in delta.items():
        relations[predicate] |= new

    while delta:
        next_delta: Dict[str, Set[Tuple[Any, ...]]] = {}
        for rule in program.rules:
            derived = _eval_rule(rule, relations, delta)
            new = derived - relations[rule.head.predicate]
            if new:
                next_delta.setdefault(rule.head.predicate,
                                      set()).update(new)
        for predicate, new in next_delta.items():
            relations[predicate] |= new
        delta = next_delta
    return relations


def transitive_closure_program(edge_facts: Iterable[Tuple[Any, Any]],
                               edge: str = "edge",
                               closure: str = "tc") -> DatalogProgram:
    """The canonical TC program: ``tc(X,Y) :- edge(X,Y)`` and
    ``tc(X,Z) :- tc(X,Y), edge(Y,Z)`` (right-linear)."""
    rules = [
        DatalogRule(Atom(closure, ("X", "Y")),
                    (Atom(edge, ("X", "Y")),)),
        DatalogRule(Atom(closure, ("X", "Z")),
                    (Atom(closure, ("X", "Y")), Atom(edge, ("Y", "Z")))),
    ]
    return DatalogProgram(rules, {edge: set(map(tuple, edge_facts))})
