"""Exporting object-database links as relations.

The relational deductive baseline operates on flat relations; these
helpers flatten an object database's extensional links so the same
workload can be run through both engines (benchmark B8 and the
cross-validation property tests).
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.relational import Relation
from repro.errors import UnknownAssociationError
from repro.model.database import Database


def links_as_relation(db: Database, owner_class: str,
                      link_name: str,
                      name: str | None = None) -> Relation:
    """The (owner OID value, target OID value) pairs of one association
    as a binary relation."""
    link = next((l for l in db.schema.aggregations()
                 if l.owner == owner_class and l.name == link_name), None)
    if link is None:
        raise UnknownAssociationError(
            f"class {owner_class!r} has no association {link_name!r}")
    rows = {(a.value, b.value) for a, b in db.link_pairs(link)}
    return Relation(name or f"{owner_class}_{link_name}",
                    ("owner", "target"), rows)


def extent_as_relation(db: Database, cls: str,
                       name: str | None = None) -> Relation:
    """The extent of a class as a unary relation of OID values."""
    rows = {(oid.value,) for oid in db.extent(cls)}
    return Relation(name or cls, ("oid",), rows)
