"""A textual front-end for the Datalog baseline.

The paper's introduction surveys PROLOG-based rule languages over
relational databases; this parser lets the baseline engine accept that
style of input directly::

    edge(1, 2).
    edge(2, 3).
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).

Conventions: identifiers starting with an uppercase letter are
variables; lowercase identifiers, quoted strings and numbers are
constants; ``%`` starts a line comment; every clause ends with ``.``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.errors import OQLSyntaxError
from repro.baselines.datalog import Atom, DatalogProgram, DatalogRule


def _tokenize(text: str) -> List[Tuple[str, Any, int]]:
    """(kind, value, line) triples; kinds: ident, number, string, op."""
    tokens: List[Tuple[str, Any, int]] = []
    i, line, n = 0, 1, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
        elif ch.isspace():
            i += 1
        elif ch == "%":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "'\"":
            j = i + 1
            while j < n and text[j] != ch:
                j += 1
            if j >= n:
                raise OQLSyntaxError("unterminated string in Datalog "
                                     "input", line=line, column=i)
            tokens.append(("string", text[i + 1:j], line))
            i = j + 1
        elif "0" <= ch <= "9" or (ch == "-" and i + 1 < n
                                  and "0" <= text[i + 1] <= "9"):
            j = i + 1
            while j < n and ("0" <= text[j] <= "9" or text[j] == "."):
                j += 1
            literal = text[i:j]
            value = float(literal) if "." in literal else int(literal)
            tokens.append(("number", value, line))
            i = j
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(("ident", text[i:j], line))
            i = j
        elif text.startswith(":-", i):
            tokens.append(("op", ":-", line))
            i += 2
        elif ch in "(),.":
            tokens.append(("op", ch, line))
            i += 1
        else:
            raise OQLSyntaxError(f"unexpected character {ch!r} in "
                                 f"Datalog input", line=line, column=i)
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, Any, int]]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else ("eof", "", -1)

    def _expect(self, kind: str, value: Any = None):
        token = self._peek()
        if token[0] != kind or (value is not None and token[1] != value):
            raise OQLSyntaxError(
                f"expected {value or kind}, found {token[1]!r}",
                line=token[2])
        self.pos += 1
        return token

    def _term(self) -> Any:
        token = self._peek()
        if token[0] in ("number", "string"):
            self.pos += 1
            return token[1]
        if token[0] == "ident":
            self.pos += 1
            return token[1]  # variable-ness decided by case convention
        raise OQLSyntaxError(f"expected a term, found {token[1]!r}",
                             line=token[2])

    def atom(self) -> Atom:
        name = self._expect("ident")[1]
        self._expect("op", "(")
        terms = [self._term()]
        while self._peek() == ("op", ",", self._peek()[2]):
            self._expect("op", ",")
            terms.append(self._term())
        self._expect("op", ")")
        return Atom(name, tuple(terms))

    def program(self) -> DatalogProgram:
        rules: List[DatalogRule] = []
        facts: Dict[str, Set[Tuple[Any, ...]]] = {}
        while self._peek()[0] != "eof":
            head = self.atom()
            if self._peek()[1] == ":-":
                self._expect("op", ":-")
                body = [self.atom()]
                while self._peek()[1] == ",":
                    self._expect("op", ",")
                    body.append(self.atom())
                rules.append(DatalogRule(head, tuple(body)))
            else:
                if head.variables():
                    raise OQLSyntaxError(
                        f"fact {head} contains variables")
                facts.setdefault(head.predicate, set()).add(head.terms)
            self._expect("op", ".")
        return DatalogProgram(rules, facts)


def parse_datalog(text: str) -> DatalogProgram:
    """Parse a Datalog program (facts + rules) from text."""
    return _Parser(_tokenize(text)).program()
