"""A minimal relational algebra.

Relations are named sets of equal-arity tuples with (optionally) named
columns.  The operators are the textbook ones the Datalog engine needs:
selection, projection, natural join (by column name), union, difference,
and rename.  Everything is immutable-by-convention: operators return new
relations.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import OQLSemanticError


class Relation:
    """A named set of tuples with named columns."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Tuple[Any, ...]] = ()):
        self.name = name
        self.columns = tuple(columns)
        self.rows: Set[Tuple[Any, ...]] = set(rows)
        for row in self.rows:
            if len(row) != len(self.columns):
                raise OQLSemanticError(
                    f"row {row!r} does not match columns {self.columns}")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __contains__(self, row: Tuple[Any, ...]) -> bool:
        return tuple(row) in self.rows

    def _index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise OQLSemanticError(
                f"relation {self.name!r} has no column {column!r} "
                f"(columns: {list(self.columns)})") from None

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool],
               name: Optional[str] = None) -> "Relation":
        return Relation(name or self.name, self.columns,
                        {row for row in self.rows if predicate(row)})

    def project(self, columns: Sequence[str],
                name: Optional[str] = None) -> "Relation":
        indices = [self._index_of(c) for c in columns]
        return Relation(name or self.name, columns,
                        {tuple(row[i] for i in indices)
                         for row in self.rows})

    def rename(self, mapping: dict, name: Optional[str] = None
               ) -> "Relation":
        columns = [mapping.get(c, c) for c in self.columns]
        return Relation(name or self.name, columns, self.rows)

    def union(self, other: "Relation",
              name: Optional[str] = None) -> "Relation":
        if len(self.columns) != len(other.columns):
            raise OQLSemanticError(
                f"union arity mismatch: {self.columns} vs {other.columns}")
        return Relation(name or self.name, self.columns,
                        self.rows | other.rows)

    def difference(self, other: "Relation",
                   name: Optional[str] = None) -> "Relation":
        if len(self.columns) != len(other.columns):
            raise OQLSemanticError(
                f"difference arity mismatch: {self.columns} vs "
                f"{other.columns}")
        return Relation(name or self.name, self.columns,
                        self.rows - other.rows)

    def join(self, other: "Relation",
             name: Optional[str] = None) -> "Relation":
        """Natural join on the shared column names (hash join on the
        smaller side)."""
        shared = [c for c in self.columns if c in other.columns]
        left_keys = [self._index_of(c) for c in shared]
        right_keys = [other._index_of(c) for c in shared]
        right_extra = [i for i, c in enumerate(other.columns)
                       if c not in shared]

        index: dict = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_keys)
            index.setdefault(key, []).append(row)

        out_columns = list(self.columns) + [other.columns[i]
                                            for i in right_extra]
        out_rows = set()
        for row in self.rows:
            key = tuple(row[i] for i in left_keys)
            for match in index.get(key, ()):
                out_rows.add(row + tuple(match[i] for i in right_extra))
        return Relation(name or f"{self.name}*{other.name}",
                        out_columns, out_rows)

    def __repr__(self) -> str:
        return (f"Relation({self.name!r}, columns={list(self.columns)}, "
                f"{len(self.rows)} rows)")
