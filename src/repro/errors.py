"""Exception hierarchy for the deductive object-oriented database.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
layers of the system:

* schema-level problems (:class:`SchemaError` and subclasses),
* data/extension-level problems (:class:`DataError` and subclasses),
* OQL parsing and semantic analysis (:class:`OQLError` and subclasses),
* the deductive rule language (:class:`RuleError` and subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Schema layer
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A problem with schema definition or schema-level name resolution."""


class DuplicateClassError(SchemaError):
    """A class with the same name is already defined in the schema."""


class UnknownClassError(SchemaError):
    """A class name was referenced that is not defined in the schema."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist on (or is not visible from) a class."""


class DuplicateAssociationError(SchemaError):
    """An association with the same key already exists in the schema."""


class UnknownAssociationError(SchemaError):
    """An association was referenced that is not defined in the schema."""


class NoAssociationError(SchemaError):
    """Two classes referenced by an association operator are not associated.

    Raised when an association pattern expression applies ``*`` (or ``!``)
    between two classes for which no direct, inherited, or generalization
    (identity) association can be resolved.
    """


class AmbiguousPathError(SchemaError):
    """A class inherits the status of being related to another class along
    more than one generalization path.

    This is the paper's ``TA * Section`` situation (Section 3.2): ``TA``
    inherits an association with ``Section`` from both ``Teacher`` (teaches)
    and ``Grad`` (is enrolled, via ``Student``), so at least one class along
    the intended path must be referenced explicitly, e.g.
    ``TA * Teacher * Section``.
    """

    def __init__(self, message: str, candidates: tuple = ()):  # noqa: D107
        super().__init__(message)
        #: The candidate associations that made the reference ambiguous.
        self.candidates = tuple(candidates)


class GeneralizationCycleError(SchemaError):
    """Adding a generalization link would create a cycle in the G hierarchy."""


# ---------------------------------------------------------------------------
# Data / extension layer
# ---------------------------------------------------------------------------


class DataError(ReproError):
    """A problem with extensional data (instances and links)."""


class UnknownObjectError(DataError):
    """An OID was referenced that does not exist in the database."""


class TypeMismatchError(DataError):
    """A value does not belong to the domain class of an attribute."""


class ConstraintViolationError(DataError):
    """A schema constraint (non-null, cardinality, membership) was violated."""


class CyclicDataError(DataError):
    """A transitive-closure loop encountered a cycle among instances.

    The paper (Section 5.2, rule R6) assumes the relationship traversed by a
    loop expression is acyclic.  By default the evaluator verifies that
    assumption and raises this error; evaluation with ``on_cycle='stop'``
    instead terminates each hierarchy when an instance repeats.
    """


# ---------------------------------------------------------------------------
# OQL layer
# ---------------------------------------------------------------------------


class OQLError(ReproError):
    """A problem with an OQL query or association pattern expression."""


class OQLSyntaxError(OQLError):
    """The query/rule text could not be parsed."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None, column: int | None = None):
        loc = ""
        if line is not None:
            loc = f" (line {line}, column {column})"
        super().__init__(message + loc)
        self.position = position
        self.line = line
        self.column = column


class OQLSemanticError(OQLError):
    """The query parsed but is not meaningful against the schema."""


class UnknownSubdatabaseError(OQLError):
    """A subdatabase qualifier names a subdatabase that does not exist and
    that no registered rule derives."""


# ---------------------------------------------------------------------------
# Rule layer
# ---------------------------------------------------------------------------


class RuleError(ReproError):
    """A problem with a deductive rule or the rule engine."""


class RuleSyntaxError(RuleError):
    """The rule text could not be parsed."""


class RuleSemanticError(RuleError):
    """The rule parsed but is inconsistent (e.g. a target class that does
    not appear in the context expression)."""


class CyclicRuleError(RuleError):
    """The rule dependency graph contains a cycle.

    The paper's language expresses transitive closure by looping inside a
    single rule (Section 5) rather than by recursion between rules, so a
    cyclic chain of subdatabase derivations is rejected.
    """
