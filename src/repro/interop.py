"""NetworkX interoperability.

Downstream analysis often wants the object database — or a derived
subdatabase — as a graph: centrality of prerequisite chains, connected
components of collaboration networks, shortest advising paths.  These
helpers build :mod:`networkx` graphs without copying attribute data out
of the database (node/edge attributes reference the live entities):

* :func:`schema_graph` — the S-diagram as a ``MultiDiGraph`` (A/C/I/X
  links and G edges, typed);
* :func:`link_graph` — one association's extensional links as a
  ``DiGraph`` over OID values;
* :func:`subdatabase_graph` — a subdatabase's extensional diagram:
  object nodes, one edge per adjacent non-null pattern pair;
* :func:`closure_equals_reachability` — cross-validation helper: does a
  loop result enumerate exactly networkx's reachability?
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import UnknownAssociationError
from repro.model.database import Database
from repro.model.schema import Schema
from repro.subdb.subdatabase import Subdatabase


def schema_graph(schema: Schema) -> "nx.MultiDiGraph":
    """The S-diagram as a typed multigraph.

    Nodes: E-classes (``node_type='eclass'``) and D-classes
    (``node_type='dclass'``).  Edges: aggregation-style links with
    ``kind`` ('A'/'C'/'I'/'X'), ``name``, ``many``; generalization edges
    with ``kind='G'`` from subclass to superclass.
    """
    graph = nx.MultiDiGraph(name=schema.name)
    for cls in schema.eclass_names:
        graph.add_node(cls, node_type="eclass")
    for link in schema.aggregations():
        if link.target in schema.dclass_names:
            graph.add_node(link.target, node_type="dclass")
        graph.add_edge(link.owner, link.target, key=link.name,
                       kind=link.kind.value, name=link.name,
                       many=link.many)
    for g in schema.generalizations():
        graph.add_edge(g.subclass, g.superclass, key="G", kind="G")
    return graph


def link_graph(db: Database, owner: str, name: str,
               by_label: bool = False) -> "nx.DiGraph":
    """One entity association's links as a directed graph.

    Nodes are OID values (or labels with ``by_label=True``; unlabeled
    objects fall back to ``#<value>``).
    """
    link = next((l for l in db.schema.aggregations()
                 if l.owner == owner and l.name == name), None)
    if link is None:
        raise UnknownAssociationError(
            f"class {owner!r} has no association {name!r}")

    def node(oid):
        return repr(oid) if by_label else oid.value

    graph = nx.DiGraph(name=f"{owner}.{name}")
    for a, b in db.link_pairs(link):
        graph.add_edge(node(a), node(b))
    return graph


def subdatabase_graph(subdb: Subdatabase,
                      by_label: bool = False) -> "nx.Graph":
    """A subdatabase's extensional diagram as an undirected graph.

    Nodes are (slot name, object) pairs; one edge per intension edge per
    pattern with both endpoints non-null — exactly the links Figure 3.1b
    draws.
    """
    graph = nx.Graph(name=subdb.name)
    slots = subdb.intension.slot_names

    def node(index, oid):
        return (slots[index], repr(oid) if by_label else oid.value)

    for pattern in subdb.patterns:
        for i, value in enumerate(pattern.values):
            if value is not None:
                graph.add_node(node(i, value))
        for edge in subdb.intension.edges:
            a, b = pattern[edge.i], pattern[edge.j]
            if a is not None and b is not None:
                graph.add_edge(node(edge.i, a), node(edge.j, b),
                               label=edge.label)
    return graph


def closure_equals_reachability(subdb: Subdatabase,
                                graph: "nx.DiGraph") -> bool:
    """True when the (ancestor, descendant) pairs enumerated by a loop
    result equal the strict reachability pairs of ``graph`` (nodes as
    OID values) — the networkx cross-check used by the test suite."""
    pairs = set()
    for pattern in subdb.patterns:
        chain = [v for v in pattern.values if v is not None]
        for i in range(len(chain)):
            for j in range(i + 1, len(chain)):
                pairs.add((chain[i].value, chain[j].value))
    reach = set()
    for source in graph.nodes:
        for target in nx.descendants(graph, source):
            if source != target:
                reach.add((source, target))
    return pairs == reach
