"""The OSAM* structural object model substrate.

This subpackage implements the structurally object-oriented data model the
paper builds on (Su 89, described in Section 2 of the paper):

* :mod:`repro.model.oid` — system-generated unique object identifiers,
* :mod:`repro.model.dclass` — domain classes (D-classes), value domains of
  simple data types,
* :mod:`repro.model.eclass` — entity classes (E-classes),
* :mod:`repro.model.associations` — aggregation (A) and generalization (G)
  association definitions,
* :mod:`repro.model.schema` — the S-diagram: a network of classes and
  associations, with inheritance closure and association resolution,
* :mod:`repro.model.objects` — entity instances,
* :mod:`repro.model.database` — the extensional store (extents plus link
  indexes) with an update journal,
* :mod:`repro.model.dictionary` — the metadata catalog the query processor
  consults,
* :mod:`repro.model.validation` — whole-database constraint checking.
"""

from repro.model.oid import OID, OIDAllocator
from repro.model.dclass import DClass, INTEGER, STRING, REAL, BOOLEAN
from repro.model.eclass import EClass
from repro.model.associations import (
    Aggregation,
    AssociationKind,
    Generalization,
)
from repro.model.schema import ResolvedLink, Schema
from repro.model.objects import Entity
from repro.model.database import Database, UpdateEvent, UpdateKind
from repro.model.dictionary import Dictionary
from repro.model.validation import check_database
from repro.model import evolution

__all__ = [
    "OID",
    "OIDAllocator",
    "DClass",
    "INTEGER",
    "STRING",
    "REAL",
    "BOOLEAN",
    "EClass",
    "Aggregation",
    "Generalization",
    "AssociationKind",
    "Schema",
    "ResolvedLink",
    "Entity",
    "Database",
    "UpdateEvent",
    "UpdateKind",
    "Dictionary",
    "check_database",
    "evolution",
]
