"""Association definitions: aggregation (A) and generalization (G) links.

OSAM* recognizes five association types; the two that appear in the paper's
figures and semantics — and the two this language's constructs are defined
over — are **aggregation** and **generalization** (paper, Section 2).  The
remaining three (interaction, composition, crossproduct) are listed in
:class:`AssociationKind` for completeness of the model's vocabulary but the
query and rule languages operate on A and G links only, exactly as the
paper does.

An aggregation link represents an attribute and has the same name as the
class it connects to unless specified otherwise (e.g. the link ``Major``
from ``Student`` to ``Department``).  Aggregation links from an E-class to
D-classes are the *descriptive attributes* of that class; links between two
E-classes are *entity associations* and are what the association operator
``*`` traverses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class AssociationKind(enum.Enum):
    """The five OSAM* association types."""

    AGGREGATION = "A"
    GENERALIZATION = "G"
    INTERACTION = "I"
    COMPOSITION = "C"
    CROSSPRODUCT = "X"


@dataclass(frozen=True)
class Aggregation:
    """An aggregation-style link (an attribute) emanating from an E-class.

    The same record carries the attribute links of all five OSAM*
    association types — its ``kind`` distinguishes them.  Plain
    AGGREGATION links are ordinary attributes; COMPOSITION links add
    exclusive part-of semantics (see
    :meth:`repro.model.schema.Schema.add_composition`); links created by
    interaction / crossproduct class declarations carry INTERACTION /
    CROSSPRODUCT so the dictionary can render the S-diagram faithfully.
    All of them are traversable by the association operator ``*``, since
    structurally each is an attribute connecting two classes.

    Attributes
    ----------
    owner:
        Name of the E-class the link emanates from.
    name:
        The attribute name.  Defaults to the connected class's name in
        :meth:`repro.model.schema.Schema.add_attribute` /
        :meth:`~repro.model.schema.Schema.add_association` when omitted.
    target:
        Name of the class the link connects to (a D-class for descriptive
        attributes, an E-class for entity associations).
    many:
        ``True`` if an owner instance may be linked to several target
        instances (e.g. a Teacher teaches many Sections).
    required:
        Non-null constraint: every owner instance must be linked to at
        least one target instance / carry a value.  The paper notes
        (Section 3.1 footnote) that such constraints exist in general but
        are *waived* for the example database so that Section ``s4`` may
        have no Course; the constraint machinery is here and checked by
        :func:`repro.model.validation.check_database`.
    """

    owner: str
    name: str
    target: str
    many: bool = False
    required: bool = False
    kind: AssociationKind = AssociationKind.AGGREGATION

    @property
    def key(self) -> tuple[str, str]:
        """The unique identity of the link: (owner class, attribute name)."""
        return (self.owner, self.name)

    def __str__(self) -> str:
        card = "*" if self.many else "1"
        return (f"{self.owner} --{self.kind.value}:{self.name}[{card}]--> "
                f"{self.target}")


@dataclass(frozen=True)
class InteractionClass:
    """An interaction (I) association: an E-class whose instances each
    relate exactly one instance of every participant class.

    The University schema's ``Advising`` is the canonical case: each
    Advising object interacts one Faculty with one Grad.  Declared with
    :meth:`repro.model.schema.Schema.declare_interaction`; participation
    is audited by :func:`repro.model.validation.check_database`.
    """

    cls: str
    participants: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.cls} --I--> ({', '.join(self.participants)})"


@dataclass(frozen=True)
class CrossproductClass:
    """A crossproduct (X) association: an E-class whose instances are
    unique combinations of one instance from each component class.

    Declared with
    :meth:`repro.model.schema.Schema.declare_crossproduct`; the
    uniqueness of complete combinations is enforced at link time and
    audited by :func:`repro.model.validation.check_database`.
    """

    cls: str
    components: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.cls} --X--> ({', '.join(self.components)})"


@dataclass(frozen=True)
class Generalization:
    """A generalization link from a superclass to one of its subclasses.

    The extensional semantics is *identity*: an instance of the subclass
    and the corresponding instance of the superclass are two perspectives
    of the same real-world object (paper, Section 3.2, the TA/Grad
    example).  In this implementation an object therefore carries a single
    OID and is a member of the extent of every superclass of its direct
    class.
    """

    superclass: str
    subclass: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.superclass, self.subclass)

    def __str__(self) -> str:
        return f"{self.superclass} --G--> {self.subclass}"


@dataclass(frozen=True)
class InheritedAggregation:
    """An aggregation link as *seen from* an inheriting class.

    Figure 2.2 of the paper shows the class ``RA`` with all associations it
    inherits from its superclasses explicitly represented.  This record is
    the element of such a view: the underlying stored link plus the class
    through which it was inherited and the endpoint at which the viewing
    class stands.
    """

    link: Aggregation
    #: The class whose view this is (e.g. ``RA``).
    viewer: str
    #: The (super)class at which the link is actually defined.
    defined_at: str
    #: ``"owner"`` if the viewer stands at the link's emanating end,
    #: ``"target"`` if at the connected end.
    end: str = "owner"

    def partner(self) -> str:
        """The class at the other end of the link from the viewer."""
        return self.link.target if self.end == "owner" else self.link.owner

    def __str__(self) -> str:
        direction = "->" if self.end == "owner" else "<-"
        return (f"{self.viewer} {direction} {self.partner()} "
                f"(via {self.defined_at}, link {self.link.name!r})")
