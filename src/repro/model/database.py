"""The extensional store.

:class:`Database` holds the instances (extents) of every E-class and the
extensional links of every entity association, indexed in both directions
so that the association operator traverses a link at equal cost either way.

Every mutation — insert, delete, associate, dissociate, attribute update —
bumps a version counter and emits an :class:`UpdateEvent` to registered
listeners.  The rule engine subscribes to these events to drive forward
chaining and to invalidate memoized derived subdatabases (paper, Section 6:
"whenever the data that is used to derive a subdatabase is updated ... the
relevant deductive rules are run to maintain the consistency between the
derived subdatabase and the original database").
"""

from __future__ import annotations

import enum
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    ConstraintViolationError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.model.associations import Aggregation, AssociationKind
from repro.model.objects import Entity
from repro.model.oid import OID, OIDAllocator
from repro.model.schema import ResolvedLink, Schema


class UpdateKind(enum.Enum):
    """The kinds of extensional updates the paper enumerates (Section 6):
    inserting/deleting objects, associating/dissociating objects, and
    attribute modification.  ``BATCH`` is the single combined event a
    :meth:`Database.batch` block emits on exit."""

    INSERT = "insert"
    DELETE = "delete"
    ASSOCIATE = "associate"
    DISSOCIATE = "dissociate"
    SET_ATTRIBUTE = "set_attribute"
    BATCH = "batch"
    SCHEMA = "schema"


@dataclass(frozen=True)
class UpdateEvent:
    """A single extensional update, as reported to listeners.

    ``classes`` names every E-class whose extension (instances or links)
    the update touched — the rule engine uses it to decide which derived
    subdatabases are affected.  ``oids`` are the touched objects and
    ``link`` the association key for ASSOCIATE/DISSOCIATE (in
    (owner, target) order) — the incremental maintainer consumes both.
    A BATCH event carries its constituent events in ``sub_events``.

    ``payload`` is a self-contained, JSON-ready description of the
    mutation (class, OID values, attribute values, association name) —
    everything a write-ahead log needs to *replay* the event against a
    restored database.  It is ``None`` for SCHEMA and BATCH events
    (schema evolution is checkpointed, not replayed; a batch's payloads
    live on its ``sub_events``).
    """

    kind: UpdateKind
    classes: Tuple[str, ...]
    version: int
    detail: str = ""
    oids: Tuple["OID", ...] = ()
    link: Optional[Tuple[str, str]] = None
    sub_events: Tuple["UpdateEvent", ...] = ()
    payload: Optional[Dict[str, Any]] = None


Listener = Callable[[UpdateEvent], None]


class RWLock:
    """A write-preferring reader-writer lock, reentrant for the writer.

    Writers (database mutators) exclude each other and all readers for
    the duration of one mutation — including listener notification, so
    version bumps, cache invalidation and snapshot copy-on-write are
    atomic with the data change they belong to.  The writer may re-enter
    (cascaded deletes, ``batch`` blocks) and may take the read side while
    holding the write side.  Read acquisition is *not* reentrant:
    callers hold it only across one short structure access.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None
        self._write_depth = 0
        self._owner_reads = 0
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._owner_reads += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me and self._owner_reads:
                self._owner_reads -= 1
                return
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

#: Shared immutable empty neighbor set, returned by the bulk lookups for
#: objects with no links so callers can intersect/difference without a
#: per-miss allocation.
EMPTY_OIDS: frozenset = frozenset()


class Database:
    """An in-memory object database over a :class:`Schema`."""

    def __init__(self, schema: Schema, name: str = "db"):
        self.schema = schema
        self.name = name
        self._allocator = OIDAllocator()
        #: direct extents: class name -> {oid: entity}
        self._extents: Dict[str, Dict[OID, Entity]] = {
            cls: {} for cls in schema.eclass_names}
        #: link indexes per association key, forward (owner -> targets)
        self._fwd: Dict[Tuple[str, str], Dict[OID, Set[OID]]] = {}
        #: and reverse (target -> owners)
        self._rev: Dict[Tuple[str, str], Dict[OID, Set[OID]]] = {}
        self._entities: Dict[OID, Entity] = {}
        self._version = 0
        #: Per-class version vector: class name -> version of the last
        #: mutation that touched its extension.  ``_emit`` stamps every
        #: class in the event's superclass closure, so a cache entry that
        #: records the versions of the classes it read stays valid across
        #: writes to unrelated classes.  Classes never written sit at 0.
        self._class_versions: Dict[str, int] = {}
        #: Bumped by SCHEMA events (class/attribute/association changes);
        #: folded into every vector so schema evolution invalidates
        #: everything, as before.
        self._schema_version = 0
        self._listeners: List[Listener] = []
        self._batch_depth = 0
        self._batch_classes: Set[str] = set()
        self._batch_count = 0
        self._batch_events: List[UpdateEvent] = []
        # Full (subclass-inclusive) extents memoized per class version
        # (an insert into a subclass stamps the superclass closure, so a
        # class's own version covers its whole subtree); the returned
        # sets are shared — callers must not mutate them.  Values are
        # ``((schema_version, class_version), set)``.
        self._extent_cache: Dict[str, Tuple[Tuple[int, int], Set[OID]]] = {}
        #: Reader-writer lock: every mutator holds the write side through
        #: its listener notification; snapshots hold the read side while
        #: pinning state or falling through to live structures.
        self._rw = RWLock()
        # Copy-on-write hooks (weakly held): notified *before* a mutation
        # touches a structure, so snapshots can pin the pre-image.  The
        # list itself is guarded by a plain mutex — registration happens
        # on reader threads, pruning on the writer, and a lost
        # registration would silently break a snapshot's isolation.
        self._snapshot_hooks: List[weakref.ref] = []
        self._hooks_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Reader-writer protocol & snapshot copy-on-write
    # ------------------------------------------------------------------

    def read_locked(self):
        """Shared-access context: excludes in-flight mutations (and whole
        ``batch`` blocks) while live structures are being read."""
        return self._rw.read_locked()

    def write_locked(self):
        """Exclusive-access context (reentrant per thread) — what every
        mutator wraps itself in."""
        return self._rw.write_locked()

    def register_snapshot_hook(self, hook: Any) -> None:
        """Register an object whose ``before_write(...)`` is called ahead
        of every mutation with the pieces about to change (held weakly)."""
        with self._hooks_lock:
            self._snapshot_hooks.append(weakref.ref(hook))

    def unregister_snapshot_hook(self, hook: Any) -> None:
        with self._hooks_lock:
            self._snapshot_hooks = [ref for ref in self._snapshot_hooks
                                    if ref() is not None
                                    and ref() is not hook]

    def _before_write(self, classes: Iterable[str] = (),
                      links: Iterable[Tuple[str, str]] = (),
                      attr_oids: Iterable[OID] = (),
                      entity_oids: Iterable[OID] = ()) -> None:
        """Give every live snapshot a chance to pin the pre-images of the
        structures this mutation is about to change (copy-on-write)."""
        hooks = self._snapshot_hooks
        if not hooks:
            return
        dead = 0
        for ref in hooks:
            hook = ref()
            if hook is None:
                dead += 1
            else:
                hook.before_write(classes=classes, links=links,
                                  attr_oids=attr_oids,
                                  entity_oids=entity_oids)
        if dead:
            # Prune against the *current* list under the mutex: a reader
            # may have registered a new hook since we captured ours.
            with self._hooks_lock:
                self._snapshot_hooks = [ref for ref in self._snapshot_hooks
                                        if ref() is not None]

    # ------------------------------------------------------------------
    # Versioning & listeners
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing counter, bumped by every mutation."""
        return self._version

    @property
    def schema_version(self) -> int:
        """Counter bumped by every SCHEMA event (schema evolution)."""
        return self._schema_version

    def class_version(self, cls: str) -> int:
        """The version of the last mutation that touched the extension
        of ``cls`` (its instances or links at either end), or 0 if the
        class has never been written.  Because :meth:`_emit` stamps the
        whole superclass closure of the touched class, a query over the
        extent of ``cls`` only ever sees results that changed after this
        number moved."""
        return self._class_versions.get(cls, 0)

    def version_vector(self, classes: Iterable[str]) -> Tuple[int, ...]:
        """The per-class versions of ``classes`` (iterated in the given
        order), prefixed with the schema version — the invalidation key
        for anything computed from those classes' extensions."""
        get = self._class_versions.get
        return (self._schema_version,) + tuple(get(c, 0) for c in classes)

    def version_state(self) -> Dict[str, Any]:
        """The complete version bookkeeping as a JSON-ready dict: the
        global counter, the schema counter, and the per-class vector.
        Persisted with every save/checkpoint so a restored database
        resumes its invalidation history instead of restarting every
        watermark at zero."""
        return {
            "version": self._version,
            "schema_version": self._schema_version,
            "class_versions": dict(sorted(self._class_versions.items())),
        }

    def restore_version_state(self, state: Dict[str, Any]) -> None:
        """Overwrite the version bookkeeping with a persisted snapshot
        (inverse of :meth:`version_state`).

        Used by the persistence layer after re-inserting stored
        entities: the load-time churn inflated every counter, and this
        resets them to the values the saved session actually had —
        which is also what makes a WAL checkpoint watermark exact.
        """
        with self.write_locked():
            self._version = int(state.get("version", self._version))
            self._schema_version = int(
                state.get("schema_version", self._schema_version))
            self._class_versions = {
                cls: int(v)
                for cls, v in state.get("class_versions", {}).items()}
            # Cached extents are keyed by the old counters; drop them
            # rather than leaving entries that can never match again.
            self._extent_cache.clear()

    def add_listener(self, listener: Listener) -> None:
        """Register a callback invoked after every mutation.

        Listeners are notified in registration order — deterministic,
        so e.g. the rule engine's maintenance listener (registered at
        engine construction) always runs before later-attached
        subscribers, which therefore observe maintained state."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        """Unregister a listener.  Safe to call from inside a listener:
        a listener removed while a notification is in flight is skipped
        for the remainder of that event (see :meth:`_notify`)."""
        self._listeners.remove(listener)

    def listener_count(self) -> int:
        """How many update listeners are registered — the baseline for
        leak checks (a detached subscription manager must return the
        count to where it started)."""
        return len(self._listeners)

    def _notify(self, event: UpdateEvent) -> None:
        # Iterate a snapshot, but re-check membership before each call:
        # a listener added during the notification does not see the
        # in-flight event, and one removed by an earlier listener is
        # skipped instead of being notified after its removal.
        for listener in list(self._listeners):
            if listener in self._listeners:
                listener(event)

    def _emit(self, kind: UpdateKind, classes: Iterable[str],
              detail: str = "", oids: Tuple[OID, ...] = (),
              link: Optional[Tuple[str, str]] = None,
              payload: Optional[Dict[str, Any]] = None) -> None:
        self._version += 1
        classes = tuple(classes)
        for cls in classes:
            self._class_versions[cls] = self._version
        if kind is UpdateKind.SCHEMA:
            self._schema_version += 1
        event = UpdateEvent(kind=kind, classes=classes,
                            version=self._version, detail=detail,
                            oids=oids, link=link, payload=payload)
        if self._batch_depth > 0:
            self._batch_classes.update(classes)
            self._batch_count += 1
            self._batch_events.append(event)
            return
        self._notify(event)

    @contextmanager
    def batch(self):
        """Group several mutations into one update event.

        Listener notification (and hence rule maintenance — the forward
        pass of Section 6) is deferred to the end of the outermost batch
        block, which then emits a single :data:`UpdateKind.BATCH` event
        whose ``classes`` is the union of every touched class.  Each
        mutation still bumps the version counter individually.
        """
        # The write lock is held for the whole block: a snapshot (or any
        # read-locked access) can never observe the intermediate states
        # between a batch's constituent mutations.
        self._rw.acquire_write()
        self._batch_depth += 1
        try:
            yield self
        finally:
            try:
                self._batch_depth -= 1
                if self._batch_depth == 0 and self._batch_count:
                    classes = tuple(sorted(self._batch_classes))
                    count = self._batch_count
                    sub_events = tuple(self._batch_events)
                    self._batch_classes = set()
                    self._batch_count = 0
                    self._batch_events = []
                    event = UpdateEvent(kind=UpdateKind.BATCH,
                                        classes=classes,
                                        version=self._version,
                                        detail=f"batch of {count} updates",
                                        sub_events=sub_events)
                    self._notify(event)
            finally:
                self._rw.release_write()

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------

    def insert(self, cls: str, label: Optional[str] = None,
               **attrs: Any) -> Entity:
        """Create a new instance of E-class ``cls``.

        Attribute values are validated against the descriptive attributes
        visible from the class (own + inherited) and their domain classes.
        """
        with self.write_locked():
            extent = self._require_extent(cls)
            visible = self.schema.descriptive_attributes(cls)
            for name, value in attrs.items():
                if name not in visible:
                    raise UnknownAttributeError(
                        f"class {cls!r} has no descriptive attribute "
                        f"{name!r}")
                self.schema.dclass(visible[name].target).validate(value)
            affected = self.schema.up(cls)
            self._before_write(classes=affected)
            oid = self._allocator.allocate(label)
            entity = Entity(oid, cls, attrs)
            extent[oid] = entity
            self._entities[oid] = entity
            self._emit(UpdateKind.INSERT, affected,
                       f"insert {cls} {oid!r}", oids=(oid,),
                       payload={"cls": cls, "oid": oid.value,
                                "label": label, "attrs": dict(attrs)})
            return entity

    def _check_crossproduct(self, link: Aggregation, owner_oid: OID,
                            target_oid: OID) -> None:
        """Reject a link that would complete a duplicate crossproduct
        combination: no two instances of a crossproduct class may relate
        the same tuple of component instances."""
        if link.kind is not AssociationKind.CROSSPRODUCT:
            return
        declaration = self.schema.crossproduct_of(link.owner)
        if declaration is None:  # pragma: no cover - defensive
            return
        combination = []
        for component in declaration.components:
            key = (link.owner, component.lower())
            if component == link.target and key == link.key:
                combination.append(target_oid)
                continue
            linked = self._fwd.get(key, {}).get(owner_oid, set())
            if not linked:
                return  # incomplete combination: nothing to compare yet
            combination.append(next(iter(linked)))
        for other in self.direct_extent(link.owner):
            if other == owner_oid:
                continue
            other_combination = []
            for component in declaration.components:
                key = (link.owner, component.lower())
                linked = self._fwd.get(key, {}).get(other, set())
                if not linked:
                    break
                other_combination.append(next(iter(linked)))
            else:
                if other_combination == combination:
                    raise ConstraintViolationError(
                        f"crossproduct {link.owner!r}: combination "
                        f"{combination!r} already exists as {other!r}")

    def delete(self, oid: OID) -> None:
        """Remove an instance and every link it participates in.

        Parts held through a composition (C) link are deleted with their
        whole (cascade)."""
        with self.write_locked():
            entity = self.entity(oid)
            touched_links = \
                [key for key, index in self._fwd.items() if oid in index] \
                + [key for key, index in self._rev.items() if oid in index]
            affected = self.schema.up(entity.cls)
            self._before_write(classes=affected, links=touched_links,
                               entity_oids=(oid,))
            # Cascade composition parts first.
            for link in self.schema.aggregations():
                if link.kind is AssociationKind.COMPOSITION and \
                        self.schema.is_subclass_of(entity.cls, link.owner):
                    for part in list(self._fwd.get(link.key, {})
                                     .get(oid, ())):
                        if self.has(part):
                            self.delete(part)
            # Drop links first (silently; their removal is part of this
            # event).
            for key, index in list(self._fwd.items()):
                if oid in index:
                    for target in list(index[oid]):
                        self._unlink(key, oid, target)
            for key, index in list(self._rev.items()):
                if oid in index:
                    for owner in list(index[oid]):
                        self._unlink(key, owner, oid)
            del self._extents[entity.cls][oid]
            del self._entities[oid]
            self._emit(UpdateKind.DELETE, affected,
                       f"delete {entity.cls} {oid!r}", oids=(oid,),
                       payload={"oid": oid.value})

    def entity(self, oid: OID) -> Entity:
        """The entity carrying ``oid`` (raises if it does not exist)."""
        try:
            return self._entities[oid]
        except KeyError:
            raise UnknownObjectError(f"no object with OID {oid!r}") from None

    def has(self, oid: OID) -> bool:
        return oid in self._entities

    def _require_extent(self, cls: str) -> Dict[OID, Entity]:
        """The direct-extent dict of ``cls``, created lazily so classes
        added to the schema after this database was built (schema
        evolution) work transparently."""
        extent = self._extents.get(cls)
        if extent is None:
            if not self.schema.has_eclass(cls):
                raise UnknownClassError(f"unknown E-class {cls!r}")
            extent = self._extents.setdefault(cls, {})
        return extent

    def extent(self, cls: str) -> Set[OID]:
        """The extent of ``cls``: its direct instances plus (by the
        identity semantics of generalization) the instances of all its
        subclasses.

        The returned set is a memo shared between callers and must not
        be mutated (copy it first).  Entries are validated against the
        per-class version vector, so writes to unrelated classes keep
        the memo warm.
        """
        token = (self._schema_version, self._class_versions.get(cls, 0))
        cached = self._extent_cache.get(cls)
        if cached is not None and cached[0] == token:
            return cached[1]
        out: Set[OID] = set(self._require_extent(cls))
        for sub in self.schema.subclasses(cls):
            out.update(self._extents.get(sub, ()))
        self._extent_cache[cls] = (token, out)
        return out

    def direct_extent(self, cls: str) -> Set[OID]:
        """Only the instances whose *direct* class is ``cls``."""
        return set(self._require_extent(cls))

    def extent_size(self, cls: str) -> int:
        """``len(extent(cls))`` without materializing the set.

        Direct extents of distinct classes are disjoint (every object has
        exactly one direct class), so the sizes simply add up.
        """
        size = len(self._require_extent(cls))
        for sub in self.schema.subclasses(cls):
            size += len(self._extents.get(sub, ()))
        return size

    def is_instance_of(self, oid: OID, cls: str) -> bool:
        """True if the object belongs to the extent of ``cls``."""
        entity = self.entity(oid)
        return self.schema.is_subclass_of(entity.cls, cls)

    def __len__(self) -> int:
        return len(self._entities)

    def iter_entities(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def get_attribute(self, oid: OID, name: str) -> Any:
        """The value of descriptive attribute ``name`` on the object
        (``None`` when unset); the attribute must be visible from the
        object's direct class."""
        entity = self.entity(oid)
        self.schema.attribute(entity.cls, name)  # visibility check
        return entity.get(name)

    def set_attribute(self, oid: OID, name: str, value: Any) -> None:
        """Update a descriptive attribute (validated, journaled)."""
        with self.write_locked():
            entity = self.entity(oid)
            link = self.schema.attribute(entity.cls, name)
            self.schema.dclass(link.target).validate(value)
            self._before_write(attr_oids=(oid,))
            entity._set(name, value)
            affected = self.schema.up(entity.cls)
            self._emit(UpdateKind.SET_ATTRIBUTE, affected,
                       f"set {entity.cls} {oid!r}.{name}", oids=(oid,),
                       payload={"oid": oid.value, "name": name,
                                "value": value})

    # ------------------------------------------------------------------
    # Links (entity associations)
    # ------------------------------------------------------------------

    def _resolve_assoc(self, owner_oid: OID,
                       name: str) -> Tuple[Aggregation, str]:
        """Find the entity association named ``name`` visible from the
        owner object's class (own or inherited)."""
        entity = self.entity(owner_oid)
        for cls in sorted(self.schema.up(entity.cls)):
            link = next((l for l in self.schema.aggregations()
                         if l.owner == cls and l.name == name
                         and self.schema.has_eclass(l.target)), None)
            if link is not None:
                return link, cls
        raise UnknownAttributeError(
            f"class {entity.cls!r} has no entity association {name!r}")

    def associate(self, owner: Entity | OID, name: str,
                  target: Entity | OID) -> None:
        """Create an extensional link of association ``name`` between the
        two objects.

        The owner object must be an instance of the association's owner
        class (possibly via inheritance), the target an instance of its
        target class.  Single-valued associations enforce their
        cardinality.
        """
        owner_oid = owner.oid if isinstance(owner, Entity) else owner
        target_oid = target.oid if isinstance(target, Entity) else target
        with self.write_locked():
            link, _ = self._resolve_assoc(owner_oid, name)
            if not self.is_instance_of(target_oid, link.target):
                raise ConstraintViolationError(
                    f"object {target_oid!r} is not an instance of "
                    f"{link.target!r} (association {link.name!r})")
            fwd = self._fwd.setdefault(link.key, {})
            existing = fwd.get(owner_oid, set())
            if not link.many and existing and target_oid not in existing:
                raise ConstraintViolationError(
                    f"association {link.name!r} of {link.owner!r} is "
                    f"single-valued; {owner_oid!r} is already linked")
            if link.kind is AssociationKind.COMPOSITION:
                owners = self._rev.get(link.key, {}).get(target_oid, set())
                if owners and owner_oid not in owners:
                    raise ConstraintViolationError(
                        f"composition {link.name!r}: part {target_oid!r} "
                        f"already belongs to another whole (exclusive "
                        f"part-of)")
            self._check_crossproduct(link, owner_oid, target_oid)
            self._before_write(links=(link.key,))
            self._link(link.key, owner_oid, target_oid)
            affected = (self.schema.up(self.entity(owner_oid).cls)
                        | self.schema.up(self.entity(target_oid).cls))
            self._emit(UpdateKind.ASSOCIATE, affected,
                       f"associate {owner_oid!r} -{link.name}-> "
                       f"{target_oid!r}",
                       oids=(owner_oid, target_oid), link=link.key,
                       payload={"owner": owner_oid.value,
                                "name": link.name,
                                "target": target_oid.value})

    def dissociate(self, owner: Entity | OID, name: str,
                   target: Entity | OID) -> None:
        """Remove an extensional link previously created by
        :meth:`associate`."""
        owner_oid = owner.oid if isinstance(owner, Entity) else owner
        target_oid = target.oid if isinstance(target, Entity) else target
        with self.write_locked():
            link, _ = self._resolve_assoc(owner_oid, name)
            if target_oid not in self._fwd.get(link.key, {}) \
                    .get(owner_oid, ()):
                raise ConstraintViolationError(
                    f"objects {owner_oid!r} and {target_oid!r} are not "
                    f"linked by {link.name!r}")
            self._before_write(links=(link.key,))
            self._unlink(link.key, owner_oid, target_oid)
            affected = (self.schema.up(self.entity(owner_oid).cls)
                        | self.schema.up(self.entity(target_oid).cls))
            self._emit(UpdateKind.DISSOCIATE, affected,
                       f"dissociate {owner_oid!r} -{link.name}-> "
                       f"{target_oid!r}",
                       oids=(owner_oid, target_oid), link=link.key,
                       payload={"owner": owner_oid.value,
                                "name": link.name,
                                "target": target_oid.value})

    def _link(self, key: Tuple[str, str], owner: OID, target: OID) -> None:
        self._fwd.setdefault(key, {}).setdefault(owner, set()).add(target)
        self._rev.setdefault(key, {}).setdefault(target, set()).add(owner)

    def _unlink(self, key: Tuple[str, str], owner: OID, target: OID) -> None:
        self._fwd[key][owner].discard(target)
        if not self._fwd[key][owner]:
            del self._fwd[key][owner]
        self._rev[key][target].discard(owner)
        if not self._rev[key][target]:
            del self._rev[key][target]

    # ------------------------------------------------------------------
    # Link traversal (used by the pattern-matching engine)
    # ------------------------------------------------------------------

    def link_index(self, link: Aggregation,
                   from_owner: bool = True) -> Dict[OID, Set[OID]]:
        """The internal link index of one association direction, shared
        by reference — strictly read-only for callers.  The compact
        execution layer scans it once to build a CSR adjacency index
        instead of performing per-frontier dict probes."""
        index = self._fwd if from_owner else self._rev
        return index.get(link.key, {})

    def linked(self, oid: OID, link: Aggregation,
               from_owner: bool = True) -> Set[OID]:
        """The objects linked to ``oid`` through ``link``.

        ``from_owner=True`` reads the forward index (``oid`` stands at the
        emanating end); ``False`` reads the reverse index.
        """
        index = self._fwd if from_owner else self._rev
        return set(index.get(link.key, {}).get(oid, ()))

    def link_pairs(self, link: Aggregation) -> Set[Tuple[OID, OID]]:
        """Every (owner, target) pair of the association."""
        out = set()
        for owner, targets in self._fwd.get(link.key, {}).items():
            for target in targets:
                out.add((owner, target))
        return out

    def link_count(self, link: Aggregation) -> int:
        return sum(len(t) for t in self._fwd.get(link.key, {}).values())

    def neighbors(self, oid: OID, resolved: ResolvedLink,
                  forward: bool = True) -> Set[OID]:
        """Traverse a :class:`ResolvedLink` from ``oid``.

        For an aggregation link the direction is derived from the
        resolution (``a_is_owner``) combined with ``forward`` (whether we
        are moving from the resolved pair's first class to its second).
        For an identity link the neighbor is the object itself — the two
        classes' instances are the same real-world objects.
        """
        if resolved.kind == "identity":
            return {oid}
        from_owner = resolved.a_is_owner if forward else not resolved.a_is_owner
        return self.linked(oid, resolved.link, from_owner=from_owner)

    def bulk_neighbors(self, oids: Iterable[OID], resolved: ResolvedLink,
                       forward: bool = True) -> Dict[OID, Set[OID]]:
        """Neighbor sets for a whole frontier of objects in one pass.

        One index lookup resolves the association; each object then maps
        to its stored neighbor set *by reference* (no per-object copy —
        callers must not mutate the returned sets).  Objects without
        links map to a shared empty set.  This is the hot lookup of the
        frontier-batched join executor.
        """
        if resolved.kind == "identity":
            return {oid: {oid} for oid in oids}
        from_owner = resolved.a_is_owner if forward else not resolved.a_is_owner
        index = self._fwd if from_owner else self._rev
        table = index.get(resolved.link.key, {})
        return {oid: table.get(oid, EMPTY_OIDS) for oid in oids}

    # ------------------------------------------------------------------
    # Bulk statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Coarse size statistics (for benchmarks and diagnostics)."""
        return {
            "objects": len(self._entities),
            "links": sum(len(t) for index in self._fwd.values()
                         for t in index.values()),
            "classes": len(self._extents),
            "version": self._version,
        }
