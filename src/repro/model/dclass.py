"""Domain classes (D-classes).

The sole function of a D-class is to form a domain of values of a simple
data type (integers, strings, reals, booleans) from which the descriptive
attributes of entity objects draw their values (paper, Section 2).

Besides the underlying Python type a D-class may carry an arbitrary
``check`` predicate, so schemas can express restricted domains such as
"grade letters" or "course numbers between 1000 and 7999".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import TypeMismatchError


class DClass:
    """A domain of values of a simple data type.

    Parameters
    ----------
    name:
        The domain-class name as it appears in the S-diagram (circular
        nodes in Figure 2.1).
    pytype:
        The Python type (or tuple of types) instances must belong to.
    check:
        Optional extra predicate a value must satisfy.
    """

    __slots__ = ("name", "pytype", "check")

    def __init__(self, name: str, pytype: type | tuple[type, ...],
                 check: Optional[Callable[[Any], bool]] = None):
        self.name = name
        self.pytype = pytype
        self.check = check

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it belongs to this domain, else raise.

        ``bool`` is rejected for integer domains even though it subclasses
        ``int`` in Python: mixing booleans into an integer attribute is
        almost always a bug in application code.
        """
        if isinstance(value, bool) and self.pytype is not bool:
            raise TypeMismatchError(
                f"value {value!r} is a boolean, not a {self.name}")
        if not isinstance(value, self.pytype):
            raise TypeMismatchError(
                f"value {value!r} does not belong to domain class "
                f"{self.name!r} ({self.pytype})")
        if self.check is not None and not self.check(value):
            raise TypeMismatchError(
                f"value {value!r} fails the domain check of D-class "
                f"{self.name!r}")
        return value

    def __repr__(self) -> str:
        return f"DClass({self.name!r})"


def _numeric_ok(value: Any) -> bool:
    return True


#: Predefined domain of integers.
INTEGER = DClass("integer", int)
#: Predefined domain of strings.
STRING = DClass("string", str)
#: Predefined domain of reals (floats; ints are accepted and widen).
REAL = DClass("real", (float, int))
#: Predefined domain of booleans.
BOOLEAN = DClass("boolean", bool)
