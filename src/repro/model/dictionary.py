"""The metadata dictionary.

The paper notes (Section 3.2) that "the query processor of an OO DBMS can
make use of the type information stored in the dictionary to properly
interpret the queries and enforce the relevant semantics and constraints"
— association types are defined once in the schema and never restated in
queries.  :class:`Dictionary` is that catalog: a read-only façade over a
:class:`~repro.model.schema.Schema` offering the lookups the OQL binder
needs, plus human-readable renderings of the S-diagram used by the
examples.
"""

from __future__ import annotations

from typing import Dict, List

from repro.model.associations import Aggregation, InheritedAggregation
from repro.model.schema import Schema


class Dictionary:
    """Read-only catalog over a schema."""

    def __init__(self, schema: Schema):
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    # ------------------------------------------------------------------
    # Catalog queries
    # ------------------------------------------------------------------

    def class_info(self, name: str) -> Dict[str, object]:
        """A structured description of one E-class."""
        schema = self._schema
        return {
            "name": name,
            "doc": schema.eclass(name).doc,
            "superclasses": sorted(schema.superclasses(name)),
            "subclasses": sorted(schema.subclasses(name)),
            "attributes": {
                attr: link.target
                for attr, link in
                sorted(schema.descriptive_attributes(name).items())
            },
            "associations": [str(v) for v in schema.inherited_view(name)
                             if schema.has_eclass(v.link.target)],
        }

    def attribute_owners(self, attr: str) -> List[str]:
        """Every E-class from which descriptive attribute ``attr`` is
        visible — used by the Select subclause to decide whether a bare
        attribute name is unique among the context classes."""
        return [cls for cls in self._schema.eclass_names
                if attr in self._schema.descriptive_attributes(cls)]

    # ------------------------------------------------------------------
    # Renderings
    # ------------------------------------------------------------------

    def render_sdiagram(self) -> str:
        """An ASCII rendering of the S-diagram: one line per class with
        its generalization and aggregation links."""
        schema = self._schema
        lines: List[str] = [f"S-diagram of schema {schema.name!r}", ""]
        for cls in schema.eclass_names:
            lines.append(f"[E] {cls}")
            subs = sorted(schema._subclasses.get(cls, ()))
            if subs:
                lines.append(f"    G -> {', '.join(subs)}")
            interaction = schema.interaction_of(cls)
            if interaction is not None:
                lines.append(f"    I -> "
                             f"{', '.join(interaction.participants)}")
            crossproduct = schema.crossproduct_of(cls)
            if crossproduct is not None:
                lines.append(f"    X -> "
                             f"{', '.join(crossproduct.components)}")
            for link in schema.aggregations():
                if link.owner != cls:
                    continue
                node = "D" if link.target in schema.dclass_names else "E"
                card = "*" if link.many else "1"
                lines.append(
                    f"    {link.kind.value}:{link.name}[{card}] -> "
                    f"({node}) {link.target}")
        return "\n".join(lines)

    def render_inherited_view(self, cls: str) -> str:
        """An ASCII rendering of a class with all inherited associations
        explicitly represented (Figure 2.2 for ``RA``)."""
        schema = self._schema
        lines = [f"Actual view of class {cls!r} "
                 f"(all inherited associations explicit):"]
        for item in schema.inherited_view(cls):
            inherited = "" if item.defined_at == cls else \
                f"   [inherited from {item.defined_at}]"
            direction = "->" if item.end == "owner" else "<-"
            lines.append(
                f"  {cls} {direction} {item.partner()}"
                f" (link {item.link.name!r}){inherited}")
        return "\n".join(lines)
