"""Entity classes (E-classes).

An E-class forms a domain of objects that occur in an application's world
(Faculty, Department, ...).  Each of its objects is represented by a
system-generated unique OID (paper, Section 2).

The class object itself is deliberately light-weight: all structural
information — descriptive attributes, entity associations, generalization
links — lives in the :class:`~repro.model.schema.Schema`, which is the
single source of truth for the S-diagram.  An E-class may additionally
register *operations* (the behaviorally object-oriented side of the model,
Section 1): named Python callables invocable from OQL operation clauses.
"""

from __future__ import annotations

from typing import Callable, Dict


class EClass:
    """An entity class node of the S-diagram.

    Parameters
    ----------
    name:
        The class name (rectangular nodes in Figure 2.1).
    doc:
        Optional human-readable description, stored in the dictionary.
    """

    __slots__ = ("name", "doc", "operations")

    def __init__(self, name: str, doc: str = ""):
        self.name = name
        self.doc = doc
        #: User-defined operations registered with the class (e.g. the
        #: paper's ``Rotate``, ``Order-part``, ``Hire_employee``).
        self.operations: Dict[str, Callable] = {}

    def register_operation(self, name: str, fn: Callable) -> None:
        """Register a user-defined operation invocable from OQL."""
        self.operations[name.lower()] = fn

    def __repr__(self) -> str:
        return f"EClass({self.name!r})"
