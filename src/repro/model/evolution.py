"""Schema evolution.

An OO DBMS must let schemas change after data exists.  These operations
mutate a live :class:`~repro.model.database.Database` and its schema
*together*, keeping the extension consistent and notifying listeners so
the rule engine can invalidate derived results:

* :func:`drop_association` — remove an aggregation link and all its
  extensional links (or attribute values);
* :func:`drop_eclass` — remove an E-class; requires an empty extent and
  no referencing schema elements unless ``cascade=True`` (which deletes
  instances and referencing links first);
* :func:`drop_subclass` — remove a generalization edge; rejected when
  instances rely on it (an object's direct class must keep every
  attribute/link it uses);
* :func:`rename_attribute` — rename a descriptive attribute, migrating
  stored values.

Every operation emits a ``SCHEMA`` update event naming the affected
classes; the rule engine treats a schema event as touching everything it
names.
"""

from __future__ import annotations

from typing import List

from repro.errors import (
    ConstraintViolationError,
    SchemaError,
    UnknownAssociationError,
    UnknownClassError,
)
from repro.model.database import Database, UpdateKind


def _emit_schema(db: Database, classes, detail: str) -> None:
    db._emit(UpdateKind.SCHEMA, classes, detail)


def drop_association(db: Database, owner: str, name: str) -> None:
    """Remove the aggregation link ``owner.name`` and its extension.

    For an entity association all its links are dropped; for a
    descriptive attribute the stored values are removed from every
    instance of the owner class and its subclasses.
    """
    schema = db.schema
    key = (owner, name)
    link = schema._aggregations.get(key)
    if link is None:
        raise UnknownAssociationError(
            f"class {owner!r} has no aggregation link {name!r}")
    if link.target in schema.dclass_names:
        for oid in db.extent(owner):
            entity = db.entity(oid)
            if name in entity:
                entity._attrs.pop(name, None)
    else:
        for pair in list(db.link_pairs(link)):
            db._unlink(link.key, *pair)
    del schema._aggregations[key]
    # Interaction / crossproduct declarations referencing this link are
    # weakened accordingly.
    declaration = schema._interactions.get(owner)
    if declaration and name in [p.lower()
                                for p in declaration.participants]:
        del schema._interactions[owner]
    declaration = schema._crossproducts.get(owner)
    if declaration and name in [c.lower()
                                for c in declaration.components]:
        del schema._crossproducts[owner]
    _emit_schema(db, {owner, link.target} & set(schema.eclass_names)
                 or {owner}, f"drop association {owner}.{name}")


def drop_eclass(db: Database, name: str, cascade: bool = False) -> None:
    """Remove an E-class from the schema.

    Without ``cascade`` the class must have no direct instances, no
    subclasses, and no aggregation link touching it.  With ``cascade``
    its direct instances are deleted and every touching link (from any
    class) is dropped first; subclasses still block the drop — remove
    them explicitly.
    """
    schema = db.schema
    if not schema.has_eclass(name):
        raise UnknownClassError(f"unknown E-class {name!r}")
    if schema._subclasses.get(name):
        raise SchemaError(
            f"class {name!r} has subclasses "
            f"{sorted(schema._subclasses[name])}; drop them first")
    touching = [link for link in schema.aggregations()
                if link.owner == name or link.target == name]
    instances = db.direct_extent(name)
    if not cascade:
        if instances:
            raise ConstraintViolationError(
                f"class {name!r} has {len(instances)} instances; "
                f"delete them or pass cascade=True")
        if touching:
            raise SchemaError(
                f"class {name!r} is referenced by "
                f"{[str(l) for l in touching]}; drop those links or "
                f"pass cascade=True")
    else:
        for oid in sorted(instances):
            if db.has(oid):
                db.delete(oid)
        for link in touching:
            if link.key in schema._aggregations:
                drop_association(db, link.owner, link.name)
    for superclass in list(schema._superclasses.get(name, ())):
        schema._subclasses[superclass].discard(name)
    del schema._eclasses[name]
    schema._subclasses.pop(name, None)
    schema._superclasses.pop(name, None)
    db._extents.pop(name, None)
    _emit_schema(db, {name}, f"drop class {name}")


def drop_subclass(db: Database, superclass: str, subclass: str) -> None:
    """Remove a generalization edge.

    Rejected when any instance *relies* on the edge: a direct or
    transitive instance of ``subclass`` that carries attribute values or
    links defined at ``superclass`` (or above, if this was the only path
    up).
    """
    schema = db.schema
    if subclass not in schema._subclasses.get(superclass, set()):
        raise SchemaError(
            f"{subclass!r} is not a direct subclass of {superclass!r}")
    # What would the subclass lose?  Everything visible through this
    # edge but not through its other superclasses.
    schema._subclasses[superclass].discard(subclass)
    schema._superclasses[subclass].discard(superclass)
    try:
        remaining = schema.descriptive_attributes(subclass)
        lost_links = []
        for link in schema.aggregations():
            if link.target in schema.dclass_names:
                continue
            if link.owner not in schema.up(subclass) and any(
                    db._fwd.get(link.key, {}).get(oid)
                    for oid in db.direct_extent(subclass)):
                lost_links.append(link)
        offenders = []
        for oid in db.extent(subclass):
            entity = db.entity(oid)
            if not schema.is_subclass_of(entity.cls, subclass):
                continue
            for attr in entity.attributes:
                if attr not in schema.descriptive_attributes(entity.cls):
                    offenders.append((oid, attr))
        if offenders or lost_links:
            raise ConstraintViolationError(
                f"dropping {superclass!r} -> {subclass!r} would orphan "
                f"attribute values {offenders[:3]!r} / links "
                f"{[str(l) for l in lost_links[:3]]}")
    except Exception:
        # Restore the edge before propagating.
        schema._subclasses[superclass].add(subclass)
        schema._superclasses[subclass].add(superclass)
        raise
    _emit_schema(db, {superclass, subclass},
                 f"drop generalization {superclass} -> {subclass}")


def rename_attribute(db: Database, owner: str, old: str,
                     new: str) -> None:
    """Rename a descriptive attribute, migrating stored values."""
    schema = db.schema
    link = schema._aggregations.get((owner, old))
    if link is None or link.target not in schema.dclass_names:
        raise UnknownAssociationError(
            f"class {owner!r} has no descriptive attribute {old!r}")
    if (owner, new) in schema._aggregations:
        raise SchemaError(
            f"class {owner!r} already has a link named {new!r}")
    del schema._aggregations[(owner, old)]
    schema._aggregations[(owner, new)] = type(link)(
        owner=owner, name=new, target=link.target, many=link.many,
        required=link.required, kind=link.kind)
    for oid in db.extent(owner):
        entity = db.entity(oid)
        if old in entity:
            entity._attrs[new] = entity._attrs.pop(old)
    _emit_schema(db, {owner}, f"rename {owner}.{old} -> {owner}.{new}")
