"""Per-class OID interning: dense integer ids for compact execution.

The pattern-matching engine's hot paths — frontier joins, subsumption,
pattern dedup — historically operated on Python sets of :class:`OID`
objects, paying a Python-level ``__hash__``/``__eq__`` dispatch per
element.  An :class:`InternTable` maps the extent of one class to dense
integers ``0..n-1`` (and back), so those same operations run over plain
ints and small-int tuples at C speed, and adjacency can be stored
columnar (CSR offsets + neighbor arrays, see
:mod:`repro.subdb.adjindex`).

Tables are owned by a per-universe store that validates them against the
database's version counter / update events; this module is deliberately
ignorant of :class:`~repro.subdb.universe.Universe` (the model layer
must not depend on the subdatabase layer) — the store supplies extents
and validity tokens.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.model.oid import OID


class InternTable:
    """A dense ``OID <-> int`` bijection over one class extent.

    ``oids[i]`` decodes dense id ``i``; ``index[oid.value]`` encodes an
    OID (keyed by the raw integer value so encoding costs one C-level
    dict probe instead of a Python-level ``OID.__hash__`` call).  The
    dense order is sorted by OID value, so the same data always interns
    identically — differential tests rely on this determinism.
    """

    __slots__ = ("key", "oids", "values", "index", "token", "_full_ids")

    def __init__(self, key: Any, extent: Iterable[OID],
                 token: Any = None):
        self.key = key
        self.oids: list = sorted(extent, key=lambda o: o.value)
        #: ``values[i]`` is ``oids[i].value`` — the raw-int decode column
        #: used when hashing decoded rows without touching OID objects.
        self.values: list = [oid.value for oid in self.oids]
        self.index: Dict[int, int] = {
            value: i for i, value in enumerate(self.values)}
        #: Validity token compared by identity by the owning store
        #: (``None`` for base-class tables, the subdatabase object for
        #: derived extents).
        self.token = token
        self._full_ids: Optional[FrozenSet[int]] = None

    def append(self, oid: OID) -> int:
        """Extend the bijection with a freshly inserted object.

        Only legal when ``oid`` sorts after every existing member (the
        OID allocator is monotonic, so inserts always do) — existing
        dense ids keep their meaning, which is what lets the store apply
        an INSERT as a delta instead of rebuilding, and what keeps rows
        already interned against this table decodable.  Returns the new
        dense id.
        """
        if self.values and oid.value <= self.values[-1]:
            raise ValueError(
                f"append out of order: {oid.value} <= {self.values[-1]}")
        i = len(self.oids)
        self.oids.append(oid)
        self.values.append(oid.value)
        self.index[oid.value] = i
        self._full_ids = None
        return i

    def without(self, oid: OID) -> "InternTable":
        """A NEW table over the extent minus ``oid``.

        Deletion shifts dense ids, so it must not mutate in place: rows
        interned against *this* table (deferred subdatabase decodes)
        keep their snapshot while new work re-interns against the
        replacement.
        """
        return InternTable(self.key,
                           (o for o in self.oids if o is not oid
                            and o.value != oid.value),
                           self.token)

    def __len__(self) -> int:
        return len(self.oids)

    def encode(self, oid: OID) -> Optional[int]:
        """The dense id of ``oid``, or ``None`` if outside the extent."""
        return self.index.get(oid.value)

    def encode_set(self, oids: Iterable[OID]) -> FrozenSet[int]:
        """Dense ids of every member of ``oids`` that is in the extent."""
        index = self.index
        return frozenset(index[o.value] for o in oids
                         if o.value in index)

    def decode(self, i: int) -> OID:
        return self.oids[i]

    @property
    def full_id_set(self) -> FrozenSet[int]:
        """All dense ids as a frozenset (cached — the complement operand
        of ``!`` joins over an unfiltered extent)."""
        ids = self._full_ids
        if ids is None:
            ids = self._full_ids = frozenset(range(len(self.oids)))
        return ids

    def plane_arrays(self) -> Dict[str, array]:
        """The table's frozen *plane* representation: its flat int64
        columns, ready for export as shared-memory segments
        (:mod:`repro.subdb.planes`).  ``values`` is the dense-id →
        raw-OID-value decode column; dense ids themselves are positional
        so nothing else needs to cross a process boundary."""
        return {"values": array("q", self.values)}

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"InternTable({self.key!r}, {len(self.oids)} oids)"


class OIDInterner:
    """A registry of intern tables keyed by extent identity.

    Keys are opaque to the interner except for the convention that
    base-class tables use ``("base", cls)`` — that is what
    :meth:`invalidate_classes` matches when an insert or delete event
    names the touched classes.  Subdatabase-extent tables are dropped by
    name via :meth:`invalidate_subdb` (and additionally self-invalidate
    through their ``token``, compared by the owning store).
    """

    def __init__(self) -> None:
        self._tables: Dict[Any, InternTable] = {}

    def get(self, key: Any) -> Optional[InternTable]:
        return self._tables.get(key)

    def build(self, key: Any, extent: Iterable[OID],
              token: Any = None) -> InternTable:
        table = InternTable(key, extent, token)
        self._tables[key] = table
        return table

    def replace(self, key: Any, table: InternTable) -> None:
        """Swap in a rebuilt table (delta deletion): holders of the old
        object keep a consistent snapshot; new work sees the new one."""
        self._tables[key] = table

    def drop(self, key: Any) -> None:
        self._tables.pop(key, None)

    def invalidate_classes(self, classes: Iterable[str]) -> None:
        """Drop the base tables of every named class (their extents
        changed: an object was inserted or deleted)."""
        for cls in classes:
            self._tables.pop(("base", cls), None)

    def invalidate_subdb(self, name: str) -> None:
        """Drop every table built over an extent of subdatabase ``name``."""
        stale = [key for key in self._tables
                 if key[0] != "base" and key[1] == name]
        for key in stale:
            del self._tables[key]

    def clear(self) -> None:
        self._tables.clear()

    def __len__(self) -> int:
        return len(self._tables)
