"""Entity instances.

An entity object carries a single OID and a *direct* class; by the identity
semantics of generalization links it is simultaneously an instance of every
superclass of its direct class (the paper's TA/Grad instances are "two
different perspectives of the same real world object", Section 3.2).
Descriptive-attribute values are stored on the object; entity-association
links are stored in the :class:`~repro.model.database.Database` link
indexes, not on the object, so that both directions can be traversed at
equal cost.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.model.oid import OID


class Entity:
    """An instance of an E-class.

    Application code obtains entities through
    :meth:`repro.model.database.Database.insert` and reads attribute values
    with item access (``entity["name"]``) or :meth:`get`.
    """

    __slots__ = ("oid", "cls", "_attrs")

    def __init__(self, oid: OID, cls: str, attrs: Dict[str, Any]):
        self.oid = oid
        self.cls = cls
        self._attrs = dict(attrs)

    def get(self, name: str, default: Any = None) -> Any:
        """The value of descriptive attribute ``name`` (or ``default``)."""
        return self._attrs.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self._attrs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    @property
    def attributes(self) -> Dict[str, Any]:
        """A copy of the attribute values (mutations go through the
        database so the update journal sees them)."""
        return dict(self._attrs)

    def _set(self, name: str, value: Any) -> None:
        """Internal: used by :meth:`Database.set_attribute`."""
        self._attrs[name] = value

    def __repr__(self) -> str:
        return f"<{self.cls} {self.oid!r}>"
