"""Object identifiers.

Every entity object is represented by a system-generated unique object
identifier (OID).  The paper's figures additionally name objects with short
labels such as ``t1``, ``s2``, ``c4`` (Teacher, Section, Course instances in
Figure 3.1b); an :class:`OID` therefore optionally carries a display label,
which participates in ``repr`` but never in equality or hashing.
"""

from __future__ import annotations

from typing import Optional


class OID:
    """A system-generated unique object identifier.

    Identity is determined by the integer ``value`` alone; the optional
    ``label`` exists only so that examples and tests can refer to objects
    with the paper's names (``t1``, ``s2``, ...).
    """

    __slots__ = ("value", "label")

    def __init__(self, value: int, label: Optional[str] = None):
        self.value = value
        self.label = label

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OID):
            return self.value == other.value
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, OID):
            return self.value != other.value
        return NotImplemented

    def __lt__(self, other: "OID") -> bool:
        # A deterministic ordering makes pattern sets printable in a stable
        # order, which the paper-figure tests rely on.
        return self.value < other.value

    def __le__(self, other: "OID") -> bool:
        return self.value <= other.value

    def __gt__(self, other: "OID") -> bool:
        return self.value > other.value

    def __ge__(self, other: "OID") -> bool:
        return self.value >= other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        if self.label is not None:
            return self.label
        return f"#{self.value}"


class OIDAllocator:
    """Allocates monotonically increasing OIDs.

    Each :class:`~repro.model.database.Database` owns one allocator, so OIDs
    are unique within a database.  The allocator is deliberately simple and
    deterministic: tests and the paper-figure data rely on reproducible
    identifier assignment.
    """

    def __init__(self, start: int = 1):
        self._next = start

    def allocate(self, label: Optional[str] = None) -> OID:
        """Return a fresh :class:`OID`, optionally carrying a display label."""
        oid = OID(self._next, label)
        self._next += 1
        return oid

    def seed(self, value: int) -> None:
        """Move the allocator so the *next* OID carries exactly ``value``.

        The persistence layer uses this to re-insert stored entities
        through the ordinary :meth:`~repro.model.database.Database.insert`
        path while preserving their original identifiers — the entity is
        *born* with its final OID, so insert events and listener-built
        structures never see a provisional identifier.  Allocation is
        monotonic, so the seed may only move forward.
        """
        if value < self._next:
            raise ValueError(
                f"cannot seed OID allocator backwards (next is "
                f"{self._next}, requested {value})")
        self._next = value

    @property
    def next_value(self) -> int:
        """The integer the next allocated OID will carry (for diagnostics)."""
        return self._next
