"""The S-diagram: a network of object classes and their associations.

A database schema is represented in OSAM* as a network of associated object
classes (paper, Section 2).  :class:`Schema` is the single source of truth
for that network: it registers E-classes and D-classes, aggregation links
(descriptive attributes and entity associations) and generalization links,
and answers the structural questions the query/rule languages need:

* the transitive superclass / subclass closure,
* the descriptive attributes visible from a class (own + inherited),
* the *full inherited view* of a class — every aggregation link that
  connects to or emanates from the class or any of its superclasses
  (Figure 2.2 of the paper, the class ``RA`` with all inherited
  associations explicitly represented),
* resolution of the association between two classes referenced by the
  association operator ``*``, walking generalization paths and detecting
  the ambiguity of the paper's ``TA * Section`` example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from dataclasses import dataclass

from repro.errors import (
    AmbiguousPathError,
    DuplicateAssociationError,
    DuplicateClassError,
    GeneralizationCycleError,
    NoAssociationError,
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.model.associations import (
    Aggregation,
    AssociationKind,
    CrossproductClass,
    Generalization,
    InheritedAggregation,
    InteractionClass,
)
from repro.model.dclass import DClass
from repro.model.eclass import EClass


@dataclass(frozen=True)
class ResolvedLink:
    """The outcome of resolving the association between two class names.

    ``kind`` is ``"aggregation"`` when an (own or inherited) aggregation
    link connects the two classes, in which case ``link`` is the stored
    link and ``a_is_owner`` tells whether the *first* class of the resolved
    pair stands at the link's emanating (owner) end.

    ``kind`` is ``"identity"`` when the two classes are related by
    generalization: the semantics implied is that an instance of the one is
    the very same real-world object as an instance of the other (paper,
    Section 3.2), so the extensional match is OID equality.
    """

    kind: str
    link: Optional[Aggregation] = None
    a_is_owner: bool = True

    def __str__(self) -> str:
        if self.kind == "identity":
            return "<identity (generalization) link>"
        arrow = "->" if self.a_is_owner else "<-"
        return f"<{self.link.name} {arrow}>"


class Schema:
    """A network of E-classes, D-classes and their A/G associations."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self._eclasses: Dict[str, EClass] = {}
        self._dclasses: Dict[str, DClass] = {}
        #: Aggregation links keyed by (owner, attribute-name).
        self._aggregations: Dict[Tuple[str, str], Aggregation] = {}
        #: Direct generalization edges: superclass -> set of subclasses.
        self._subclasses: Dict[str, Set[str]] = {}
        #: Direct generalization edges: subclass -> set of superclasses.
        self._superclasses: Dict[str, Set[str]] = {}
        #: Interaction (I) class declarations, keyed by class name.
        self._interactions: Dict[str, InteractionClass] = {}
        #: Crossproduct (X) class declarations, keyed by class name.
        self._crossproducts: Dict[str, CrossproductClass] = {}

    # ------------------------------------------------------------------
    # Schema construction
    # ------------------------------------------------------------------

    def add_eclass(self, name: str, doc: str = "") -> EClass:
        """Define an entity class (a rectangular node of the S-diagram)."""
        if name in self._eclasses or name in self._dclasses:
            raise DuplicateClassError(f"class {name!r} already defined")
        eclass = EClass(name, doc)
        self._eclasses[name] = eclass
        self._subclasses.setdefault(name, set())
        self._superclasses.setdefault(name, set())
        return eclass

    def add_dclass(self, dclass: DClass) -> DClass:
        """Register a domain class (a circular node of the S-diagram)."""
        if dclass.name in self._dclasses or dclass.name in self._eclasses:
            raise DuplicateClassError(f"class {dclass.name!r} already defined")
        self._dclasses[dclass.name] = dclass
        return dclass

    def add_attribute(self, owner: str, name: str, domain: DClass | str,
                      required: bool = False) -> Aggregation:
        """Define a descriptive attribute: an aggregation link from an
        E-class to a D-class.

        ``domain`` may be a :class:`DClass` (registered on first use) or
        the name of one already registered.
        """
        self._require_eclass(owner)
        if isinstance(domain, DClass):
            if domain.name not in self._dclasses:
                self.add_dclass(domain)
            domain_name = domain.name
        else:
            if domain not in self._dclasses:
                raise UnknownClassError(f"unknown D-class {domain!r}")
            domain_name = domain
        link = Aggregation(owner=owner, name=name, target=domain_name,
                           many=False, required=required)
        self._store_aggregation(link)
        return link

    def add_association(self, owner: str, target: str,
                        name: Optional[str] = None, many: bool = True,
                        required: bool = False) -> Aggregation:
        """Define an entity association: an aggregation link between two
        E-classes.

        Per the paper, the link takes the name of the class it connects to
        unless a different ``name`` is given (e.g. ``Major`` from
        ``Student`` to ``Department``).
        """
        self._require_eclass(owner)
        self._require_eclass(target)
        link = Aggregation(owner=owner, name=name or target, target=target,
                           many=many, required=required)
        self._store_aggregation(link)
        return link

    def add_composition(self, owner: str, target: str,
                        name: Optional[str] = None,
                        many: bool = True,
                        required: bool = False) -> Aggregation:
        """Define a composition (C) link: ``target`` instances are
        *exclusive parts* of one ``owner`` instance.

        The database layer enforces the exclusivity (a part may be
        linked to at most one whole through this link) and cascades
        deletion of the whole to its parts.
        """
        self._require_eclass(owner)
        self._require_eclass(target)
        link = Aggregation(owner=owner, name=name or target,
                           target=target, many=many, required=required,
                           kind=AssociationKind.COMPOSITION)
        self._store_aggregation(link)
        return link

    def declare_interaction(self, cls: str,
                            participants: Iterable[str]
                            ) -> InteractionClass:
        """Declare ``cls`` an interaction (I) class over ``participants``.

        One single-valued, required link per participant is created
        (named after the participant, lower-cased); every instance of
        ``cls`` must relate exactly one instance of each participant —
        audited by :func:`repro.model.validation.check_database`.
        """
        self._require_eclass(cls)
        participants = tuple(participants)
        if len(participants) < 2:
            raise SchemaError(
                f"interaction class {cls!r} needs at least two "
                f"participants")
        for participant in participants:
            self._require_eclass(participant)
            self._store_aggregation(Aggregation(
                owner=cls, name=participant.lower(), target=participant,
                many=False, required=True,
                kind=AssociationKind.INTERACTION))
        declaration = InteractionClass(cls, participants)
        self._interactions[cls] = declaration
        return declaration

    def declare_crossproduct(self, cls: str,
                             components: Iterable[str]
                             ) -> CrossproductClass:
        """Declare ``cls`` a crossproduct (X) class over ``components``.

        Instances are unique combinations of one instance per component;
        the database layer rejects a link that would complete a
        duplicate combination.
        """
        self._require_eclass(cls)
        components = tuple(components)
        if len(components) < 2:
            raise SchemaError(
                f"crossproduct class {cls!r} needs at least two "
                f"components")
        for component in components:
            self._require_eclass(component)
            self._store_aggregation(Aggregation(
                owner=cls, name=component.lower(), target=component,
                many=False, required=True,
                kind=AssociationKind.CROSSPRODUCT))
        declaration = CrossproductClass(cls, components)
        self._crossproducts[cls] = declaration
        return declaration

    def interaction_of(self, cls: str) -> Optional[InteractionClass]:
        return self._interactions.get(cls)

    def crossproduct_of(self, cls: str) -> Optional[CrossproductClass]:
        return self._crossproducts.get(cls)

    @property
    def interactions(self) -> List[InteractionClass]:
        return [self._interactions[k] for k in sorted(self._interactions)]

    @property
    def crossproducts(self) -> List[CrossproductClass]:
        return [self._crossproducts[k]
                for k in sorted(self._crossproducts)]

    def add_subclass(self, superclass: str, subclass: str) -> Generalization:
        """Define a generalization link (``subclass`` G-linked under
        ``superclass``).  Multiple superclasses are allowed — the paper's
        ``TA`` is a subclass of both ``Grad`` and ``Teacher``."""
        self._require_eclass(superclass)
        self._require_eclass(subclass)
        if superclass == subclass or subclass in self.superclasses(superclass):
            raise GeneralizationCycleError(
                f"generalization {superclass} -> {subclass} would create "
                f"a cycle")
        self._subclasses[superclass].add(subclass)
        self._superclasses[subclass].add(superclass)
        return Generalization(superclass, subclass)

    def _store_aggregation(self, link: Aggregation) -> None:
        if link.key in self._aggregations:
            raise DuplicateAssociationError(
                f"class {link.owner!r} already has an aggregation link "
                f"named {link.name!r}")
        self._aggregations[link.key] = link

    def _require_eclass(self, name: str) -> EClass:
        try:
            return self._eclasses[name]
        except KeyError:
            raise UnknownClassError(f"unknown E-class {name!r}") from None

    # ------------------------------------------------------------------
    # Basic lookups
    # ------------------------------------------------------------------

    def eclass(self, name: str) -> EClass:
        """The :class:`EClass` named ``name`` (raises if unknown)."""
        return self._require_eclass(name)

    def dclass(self, name: str) -> DClass:
        try:
            return self._dclasses[name]
        except KeyError:
            raise UnknownClassError(f"unknown D-class {name!r}") from None

    def has_eclass(self, name: str) -> bool:
        return name in self._eclasses

    @property
    def eclass_names(self) -> List[str]:
        return sorted(self._eclasses)

    @property
    def dclass_names(self) -> List[str]:
        return sorted(self._dclasses)

    def aggregations(self) -> List[Aggregation]:
        """All stored aggregation links, in a stable order."""
        return [self._aggregations[k] for k in sorted(self._aggregations)]

    def generalizations(self) -> List[Generalization]:
        """All direct generalization edges, in a stable order."""
        return [Generalization(sup, sub)
                for sup in sorted(self._subclasses)
                for sub in sorted(self._subclasses[sup])]

    # ------------------------------------------------------------------
    # Generalization closure
    # ------------------------------------------------------------------

    def superclasses(self, name: str) -> Set[str]:
        """All transitive superclasses of ``name`` (not including it)."""
        self._require_eclass(name)
        out: Set[str] = set()
        frontier = list(self._superclasses.get(name, ()))
        while frontier:
            cls = frontier.pop()
            if cls not in out:
                out.add(cls)
                frontier.extend(self._superclasses.get(cls, ()))
        return out

    def subclasses(self, name: str) -> Set[str]:
        """All transitive subclasses of ``name`` (not including it)."""
        self._require_eclass(name)
        out: Set[str] = set()
        frontier = list(self._subclasses.get(name, ()))
        while frontier:
            cls = frontier.pop()
            if cls not in out:
                out.add(cls)
                frontier.extend(self._subclasses.get(cls, ()))
        return out

    def up(self, name: str) -> Set[str]:
        """``name`` together with all its transitive superclasses."""
        return {name} | self.superclasses(name)

    def down(self, name: str) -> Set[str]:
        """``name`` together with all its transitive subclasses."""
        return {name} | self.subclasses(name)

    def is_subclass_of(self, sub: str, sup: str) -> bool:
        """True if ``sub`` equals ``sup`` or is a transitive subclass."""
        return sub == sup or sup in self.superclasses(sub)

    def related_by_generalization(self, a: str, b: str) -> bool:
        """True if one class is a (transitive) sub/superclass of the other
        (or they are the same class) — the identity-link relation."""
        return self.is_subclass_of(a, b) or self.is_subclass_of(b, a)

    # ------------------------------------------------------------------
    # Attribute visibility
    # ------------------------------------------------------------------

    def descriptive_attributes(self, name: str) -> Dict[str, Aggregation]:
        """The descriptive attributes visible from class ``name``.

        A class inherits all aggregation links of its superclasses; links
        defined on the class itself shadow inherited ones of the same
        name.  Only links to D-classes are descriptive attributes.
        """
        out: Dict[str, Aggregation] = {}
        # Walk from the most remote superclasses down so nearer definitions
        # shadow farther ones.
        order = self._linearized_ancestry(name)
        for cls in order:
            for (owner, attr), link in self._aggregations.items():
                if owner == cls and link.target in self._dclasses:
                    out[attr] = link
        return out

    def attribute(self, cls: str, name: str) -> Aggregation:
        """The descriptive attribute ``name`` as visible from ``cls``."""
        attrs = self.descriptive_attributes(cls)
        try:
            return attrs[name]
        except KeyError:
            raise UnknownAttributeError(
                f"class {cls!r} has no descriptive attribute {name!r} "
                f"(visible: {sorted(attrs)})") from None

    def _linearized_ancestry(self, name: str) -> List[str]:
        """Superclasses before subclasses, ending at ``name`` itself."""
        supers = self.superclasses(name)
        # Order ancestors so that a class appears after all its own
        # superclasses (reverse topological order of the G-hierarchy).
        ordered: List[str] = []
        remaining = set(supers)
        while remaining:
            progressed = False
            for cls in sorted(remaining):
                if self.superclasses(cls) <= set(ordered):
                    ordered.append(cls)
                    remaining.discard(cls)
                    progressed = True
            if not progressed:  # pragma: no cover - cycles are rejected at add
                ordered.extend(sorted(remaining))
                break
        ordered.append(name)
        return ordered

    # ------------------------------------------------------------------
    # Entity associations and the inherited view (Figure 2.2)
    # ------------------------------------------------------------------

    def entity_links_at(self, name: str) -> List[Aggregation]:
        """Aggregation links between E-classes defined *directly* at
        ``name`` (either emanating from it or connecting to it)."""
        out = []
        for link in self.aggregations():
            if link.target in self._dclasses:
                continue
            if link.owner == name or link.target == name:
                out.append(link)
        return out

    def inherited_view(self, name: str) -> List[InheritedAggregation]:
        """Every aggregation link that connects to or emanates from
        ``name`` or any of its superclasses — the *actual view* of the
        class with all inherited associations explicitly represented
        (Figure 2.2 of the paper, class ``RA``).

        Both descriptive attributes (links to D-classes) and entity
        associations are included, since the figure shows both.
        """
        view: List[InheritedAggregation] = []
        for cls in sorted(self.up(name)):
            for link in self.aggregations():
                if link.owner == cls:
                    view.append(InheritedAggregation(
                        link=link, viewer=name, defined_at=cls, end="owner"))
                elif link.target == cls:
                    view.append(InheritedAggregation(
                        link=link, viewer=name, defined_at=cls, end="target"))
        return view

    # ------------------------------------------------------------------
    # Association resolution for the association operator
    # ------------------------------------------------------------------

    def resolve_link(self, a: str, b: str) -> ResolvedLink:
        """Resolve the association the operator ``*`` traverses between
        classes ``a`` and ``b``.

        Resolution order (paper, Sections 3.2 and 4.1):

        1. Collect every aggregation link between ``a``-or-a-superclass and
           ``b``-or-a-superclass (a class inherits all aggregation
           associations of its superclasses).  Exactly one candidate means
           an unambiguous aggregation traversal.
        2. More than one *distinct* candidate raises
           :class:`~repro.errors.AmbiguousPathError` — the ``TA * Section``
           case; the query must mention an intermediate class.
        3. No aggregation candidate, but the classes related by
           generalization, yields the *identity* link (``TA * Grad``).
        4. Otherwise the classes are simply not associated.
        """
        self._require_eclass(a)
        self._require_eclass(b)
        up_a = self.up(a)
        up_b = self.up(b)

        candidates: List[ResolvedLink] = []
        seen: Set[Tuple[Tuple[str, str], bool]] = set()
        for link in self.aggregations():
            if link.target in self._dclasses:
                continue
            if link.owner in up_a and link.target in up_b:
                sig = (link.key, True)
                if sig not in seen:
                    seen.add(sig)
                    candidates.append(ResolvedLink("aggregation", link, True))
            if link.owner in up_b and link.target in up_a:
                sig = (link.key, False)
                if sig not in seen:
                    seen.add(sig)
                    candidates.append(ResolvedLink("aggregation", link, False))

        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            # A self-link on a single class legitimately appears in both
            # directions; for a == b prefer the owner-side orientation.
            keys = {c.link.key for c in candidates}
            if len(keys) == 1 and a == b:
                return next(c for c in candidates if c.a_is_owner)
            raise AmbiguousPathError(
                f"class {a!r} is related to {b!r} along more than one "
                f"generalization path; mention an intermediate class to "
                f"disambiguate (candidates: "
                f"{', '.join(str(c.link) for c in candidates)})",
                candidates=tuple(c.link for c in candidates))

        if self.related_by_generalization(a, b):
            return ResolvedLink("identity")

        raise NoAssociationError(
            f"classes {a!r} and {b!r} are not associated (directly, by "
            f"inheritance, or by generalization)")

    def are_associated(self, a: str, b: str) -> bool:
        """True if ``resolve_link(a, b)`` would succeed unambiguously."""
        try:
            self.resolve_link(a, b)
            return True
        except (NoAssociationError, AmbiguousPathError):
            return False
