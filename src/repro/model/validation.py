"""Whole-database constraint checking.

The paper's example database deliberately *waives* two constraints so the
figures can show the general case (Section 3.1 footnote: Section ``s3`` is
related to two Courses and ``s4`` to none).  The constraint machinery is
nevertheless part of the model: :func:`check_database` verifies every
declared non-null (``required``) and single-valued (``many=False``)
aggregation constraint and returns the violations found, so applications
can run it as an integrity audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.model.database import Database
from repro.model.oid import OID


@dataclass(frozen=True)
class Violation:
    """One constraint violation discovered by :func:`check_database`."""

    kind: str          # "non_null" | "cardinality"
    cls: str           # class of the offending object
    oid: OID
    link_name: str
    message: str

    def __str__(self) -> str:
        return self.message


def _check_interactions(db: Database) -> List[Violation]:
    """Every instance of an interaction (I) class must relate exactly
    one instance of each participant class."""
    violations: List[Violation] = []
    for declaration in db.schema.interactions:
        for oid in sorted(db.direct_extent(declaration.cls)):
            for participant in declaration.participants:
                key = (declaration.cls, participant.lower())
                linked = db._fwd.get(key, {}).get(oid, set())
                if len(linked) != 1:
                    violations.append(Violation(
                        "interaction", declaration.cls, oid,
                        participant.lower(),
                        f"{oid!r}: interaction {declaration.cls!r} "
                        f"relates {len(linked)} {participant!r} "
                        f"instances (exactly 1 required)"))
    return violations


def _check_crossproducts(db: Database) -> List[Violation]:
    """Crossproduct (X) class instances must be complete, unique
    combinations of their components."""
    violations: List[Violation] = []
    for declaration in db.schema.crossproducts:
        seen = {}
        for oid in sorted(db.direct_extent(declaration.cls)):
            combination = []
            complete = True
            for component in declaration.components:
                key = (declaration.cls, component.lower())
                linked = db._fwd.get(key, {}).get(oid, set())
                if len(linked) != 1:
                    complete = False
                    violations.append(Violation(
                        "crossproduct", declaration.cls, oid,
                        component.lower(),
                        f"{oid!r}: crossproduct {declaration.cls!r} "
                        f"relates {len(linked)} {component!r} "
                        f"instances (exactly 1 required)"))
                else:
                    combination.append(next(iter(linked)))
            if complete:
                signature = tuple(combination)
                if signature in seen:
                    violations.append(Violation(
                        "crossproduct", declaration.cls, oid,
                        declaration.cls,
                        f"{oid!r}: duplicates the combination of "
                        f"{seen[signature]!r}"))
                else:
                    seen[signature] = oid
    return violations


def check_database(db: Database) -> List[Violation]:
    """Audit every declared constraint; return the violations found.

    * ``required`` descriptive attributes must carry a value on every
      instance of the owning class (and its subclasses);
    * ``required`` entity associations must link every owner instance to
      at least one target;
    * ``many=False`` entity associations must link every owner instance to
      at most one target.  (Insert-time checks enforce this too; the audit
      re-verifies, e.g. after bulk loads that bypass ``associate``.)
    """
    violations: List[Violation] = []
    schema = db.schema
    violations.extend(_check_interactions(db))
    violations.extend(_check_crossproducts(db))
    for link in schema.aggregations():
        owners = db.extent(link.owner)
        is_attribute = link.target in schema.dclass_names
        for oid in sorted(owners):
            if is_attribute:
                if link.required and db.entity(oid).get(link.name) is None:
                    violations.append(Violation(
                        "non_null", db.entity(oid).cls, oid, link.name,
                        f"{oid!r}: required attribute {link.name!r} unset"))
                continue
            targets = db.linked(oid, link, from_owner=True)
            if link.required and not targets:
                violations.append(Violation(
                    "non_null", db.entity(oid).cls, oid, link.name,
                    f"{oid!r}: required association {link.name!r} has no "
                    f"target"))
            if not link.many and len(targets) > 1:
                violations.append(Violation(
                    "cardinality", db.entity(oid).cls, oid, link.name,
                    f"{oid!r}: single-valued association {link.name!r} "
                    f"links {len(targets)} targets"))
    return violations
