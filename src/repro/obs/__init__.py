"""Observability: query/rule tracing with zero overhead when off.

``obs.TRACER`` is the single module-level hook every instrumentation
point in the planner, evaluator, rule engine, and incremental
maintainer consults::

    from repro import obs
    ...
    tracer = obs.TRACER          # one attribute load
    if tracer is not None:       # one pointer test — the whole off-cost
        span = tracer.start("query", result=name)

Call :func:`install` to start recording, :func:`uninstall` to stop.
Instrumentation sites must read ``obs.TRACER`` through the module
attribute at each use (never ``from repro.obs import TRACER``), so
installation is visible immediately everywhere.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (chrome_trace, render_tree, save_chrome_trace,
                              to_chrome_events)
from repro.obs.recorder import TraceRecorder
from repro.obs.tracer import CountingTracer, Span, Tracer

__all__ = ["TRACER", "install", "uninstall", "last_trace",
           "Tracer", "CountingTracer", "Span", "TraceRecorder",
           "chrome_trace", "to_chrome_events", "save_chrome_trace",
           "render_tree"]

#: The globally installed tracer, or ``None`` (tracing off — default).
TRACER: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None, *,
            max_traces: int = 64) -> Tracer:
    """Install ``tracer`` (or a fresh :class:`Tracer`) globally."""
    global TRACER
    if tracer is None:
        tracer = Tracer(max_traces=max_traces)
    TRACER = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove the global tracer; returns it (recorder intact)."""
    global TRACER
    tracer, TRACER = TRACER, None
    return tracer


def last_trace():
    """The most recent completed trace of the installed tracer."""
    return TRACER.recorder.last() if TRACER is not None else None
