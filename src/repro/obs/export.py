"""Trace exporters: Chrome ``chrome://tracing`` JSON and a text tree.

Chrome's trace-event format (the "catapult" JSON array) is the lingua
franca for flame views: each span becomes one complete event
(``"ph": "X"``) with microsecond timestamps relative to the tracer
epoch, the recording thread as ``tid``, and attributes/counters merged
into ``args``.  Load the saved file in ``chrome://tracing`` or
https://ui.perfetto.dev to browse partition fan-out and per-join-step
timings visually.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

__all__ = ["to_chrome_events", "chrome_trace", "save_chrome_trace",
           "render_tree"]


def to_chrome_events(roots: Iterable) -> List[Dict[str, Any]]:
    """Flatten trace trees into Chrome complete events."""
    events: List[Dict[str, Any]] = []
    for root in roots:
        for span in root.walk():
            args: Dict[str, Any] = {"trace_id": span.trace_id,
                                    "span_id": span.span_id,
                                    "status": span.status}
            args.update(span.attrs)
            args.update(span.counters)
            if span.cpu_ms is not None:
                args["cpu_ms"] = round(span.cpu_ms, 3)
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": span.thread_id,
                "ts": round(span.start_us, 1),
                "dur": round((span.wall_ms or 0.0) * 1000.0, 1),
                "cat": "repro",
                "args": args,
            })
    return events


def chrome_trace(roots: Iterable) -> Dict[str, Any]:
    """The full document ``chrome://tracing`` expects."""
    return {"traceEvents": to_chrome_events(roots),
            "displayTimeUnit": "ms"}


def save_chrome_trace(path: Union[str, Path], roots: Iterable) -> Path:
    """Write traces as Chrome JSON; returns the resolved path."""
    target = Path(path)
    target.write_text(json.dumps(chrome_trace(roots), sort_keys=True,
                                 indent=1))
    return target


def _format_span(span) -> str:
    parts = [span.name]
    if span.wall_ms is not None:
        parts.append(f"{span.wall_ms:.2f}ms")
    if span.cpu_ms is not None:
        parts.append(f"cpu={span.cpu_ms:.2f}ms")
    if span.status not in ("ok", "open"):
        parts.append(f"status={span.status}")
    for key in sorted(span.attrs):
        parts.append(f"{key}={span.attrs[key]}")
    for key in sorted(span.counters):
        value = span.counters[key]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(root) -> str:
    """Pretty one-trace tree for the shell's ``\\trace show``."""
    lines = [f"trace {root.trace_id}"]

    def emit(span, prefix: str, is_last: bool) -> None:
        branch = "└─ " if is_last else "├─ "
        lines.append(prefix + branch + _format_span(span))
        child_prefix = prefix + ("   " if is_last else "│  ")
        # Render children in start order regardless of the (possibly
        # racy) order partition workers attached themselves.
        children = sorted(span.children, key=lambda s: s.start_us)
        for index, child in enumerate(children):
            emit(child, child_prefix, index == len(children) - 1)

    lines[0] = f"trace {root.trace_id}: {_format_span(root)}"
    children = sorted(root.children, key=lambda s: s.start_us)
    for index, child in enumerate(children):
        emit(child, "", index == len(children) - 1)
    return "\n".join(lines)
