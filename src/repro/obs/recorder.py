"""Bounded ring buffer of completed traces.

A *trace* is the root :class:`~repro.obs.tracer.Span` of a finished
span tree.  The recorder keeps the most recent ``max_traces`` of them;
older traces fall off the back, so a long-lived shell session with
tracing left on cannot grow without bound.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional

__all__ = ["TraceRecorder"]


class TraceRecorder:
    def __init__(self, max_traces: int = 64) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=max_traces)

    def record(self, root) -> None:
        """File a completed root span (called by the tracer)."""
        with self._lock:
            self._traces.append(root)

    def last(self):
        """The most recently completed trace, or ``None``."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def get(self, trace_id: Optional[int]):
        """Look up a trace by id; ``None`` if evicted or unknown."""
        if trace_id is None:
            return None
        with self._lock:
            for root in reversed(self._traces):
                if root.trace_id == trace_id:
                    return root
        return None

    def traces(self) -> List:
        """Snapshot of all retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
