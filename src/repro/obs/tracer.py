"""Span tracer with zero-overhead-off instrumentation semantics.

The instrumentation contract used throughout the codebase is::

    tracer = obs.TRACER
    span = tracer.start("join-step", slot="Course") if tracer is not None \
        else None
    try:
        ...
    finally:
        if span is not None:
            span.add("rows_out", len(rows))
            tracer.finish(span)

When no tracer is installed (``obs.TRACER is None``, the default) every
instrumentation point reduces to a module-attribute load and an ``is
None`` test — no allocation, no locking, no timing call.  The
``start``/``finish`` pair (rather than a context manager) keeps the hot
path free of generator/``__enter__`` machinery and lets the off-path
share the exact code shape of the on-path.

Span trees are stitched per-thread: each thread keeps its own stack of
open spans, so nesting is automatic within a thread, and cross-thread
children (partition workers) pass an explicit ``parent=`` captured on
the dispatching thread.  Completed root spans are handed to the
tracer's :class:`~repro.obs.recorder.TraceRecorder` ring buffer.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.recorder import TraceRecorder

__all__ = ["Span", "Tracer", "CountingTracer"]


class Span:
    """One timed node of a trace tree.

    Attributes are descriptive key/values fixed at creation (plus
    late :meth:`set` calls); counters are additive numeric facts
    (``rows_out``, ``frontier``, ...) accumulated with :meth:`add`.
    Wall time comes from ``perf_counter``; CPU time from
    ``thread_time`` — a span is started and finished on the same
    thread by construction, so the difference is that thread's CPU
    share.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs",
                 "counters", "children", "thread_id", "start_us",
                 "wall_ms", "cpu_ms", "status", "closed",
                 "_parent", "_wall0", "_cpu0")

    def __init__(self, trace_id: int, span_id: int, parent: Optional["Span"],
                 name: str, attrs: Dict[str, Any], start_us: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.children: List[Span] = []
        self.thread_id = threading.get_ident()
        self.start_us = start_us
        self.wall_ms: Optional[float] = None
        self.cpu_ms: Optional[float] = None
        self.status = "open"
        self.closed = False
        self._parent = parent
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric counter on this span."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) a descriptive attribute."""
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        timing = (f"{self.wall_ms:.3f}ms" if self.wall_ms is not None
                  else "open")
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"trace={self.trace_id}, {timing})")


class Tracer:
    """Records nestable spans into per-thread stacks and a ring buffer.

    ``start``/``finish`` must be paired (``finally``-protected at every
    call site).  A root span — one started with no parent and no open
    span on its thread — defines a trace; finishing it files the whole
    tree with the recorder.
    """

    def __init__(self, max_traces: int = 64) -> None:
        self.recorder = TraceRecorder(max_traces=max_traces)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._epoch = time.perf_counter()

    # -- span lifecycle ------------------------------------------------

    def start(self, name: str, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a span.

        With no explicit ``parent`` the innermost open span on the
        calling thread is used; partition workers pass the dispatcher's
        span explicitly to stitch across threads.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        if parent is None:
            with self._lock:
                trace_id = next(self._trace_ids)
        else:
            trace_id = parent.trace_id
        with self._lock:
            span_id = next(self._span_ids)
        now = time.perf_counter()
        span = Span(trace_id, span_id, parent, name, dict(attrs),
                    start_us=(now - self._epoch) * 1e6)
        span._wall0 = now
        span._cpu0 = time.thread_time()
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span``; attach it to its parent or file the trace.

        Any descendants of ``span`` still open on this thread were
        abandoned by a non-local exit (an exception that skipped their
        ``finally``, which our call sites never do, or a span held
        across ``yield``); they are force-closed with status
        ``aborted`` so a finished trace never contains open spans.
        """
        if span.closed:
            if span.status == "aborted":
                return  # already swept by an ancestor's finish
            raise RuntimeError(f"span {span.name!r} finished twice")
        stack = self._stack()
        while stack and stack[-1] is not span:
            self._close(stack.pop(), aborted=True)
        if stack and stack[-1] is span:
            stack.pop()
        self._close(span, aborted=False)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- internals -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _close(self, span: Span, aborted: bool) -> None:
        span.closed = True
        now = time.perf_counter()
        span.wall_ms = (now - span._wall0) * 1000.0
        span.cpu_ms = (time.thread_time() - span._cpu0) * 1000.0
        if aborted:
            span.status = "aborted"
        else:
            exc = sys.exc_info()[1]
            span.status = ("ok" if exc is None
                           else f"error:{type(exc).__name__}")
        parent = span._parent
        if parent is None:
            self.recorder.record(span)
        else:
            # Partition workers append to a shared parent concurrently.
            with self._lock:
                parent.children.append(span)


class _NullSpan:
    """Inert span returned by :class:`CountingTracer`."""

    __slots__ = ()
    trace_id: Optional[int] = None
    span_id: Optional[int] = None

    def add(self, key: str, amount: float = 1) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


class CountingTracer:
    """Tracer stand-in that only counts instrumentation-site hits.

    Used by the overhead benchmark: installing it and running a
    workload measures how many times the ``if tracer is not None``
    guard fired down the true branch — i.e. how many guard checks the
    *untraced* run of the same workload performs — without paying for
    span allocation or timing, which would distort the count's
    purpose.
    """

    def __init__(self) -> None:
        self.starts = 0
        self._span = _NullSpan()

    def start(self, name: str, parent: Any = None, **attrs: Any) -> _NullSpan:
        self.starts += 1
        return self._span

    def finish(self, span: Any) -> None:
        pass

    def current_span(self) -> None:
        return None
