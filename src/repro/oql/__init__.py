"""OQL: the object-oriented query language (ALA89a) plus the constructs
the deductive rule language borrows from it.

A query block consists of a Context clause — an association pattern
expression over E-classes, with optional intra-class conditions, brace
subexpressions and a loop superscript — an optional Where subclause
(inter-class comparisons and aggregation conditions), an optional Select
subclause, and an operation (Display/Print or a user-defined operation).

The public entry points are :func:`parse_query`, :func:`parse_expression`
and :class:`QueryProcessor`.
"""

from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    ContextExpr,
    Literal,
    LoopSpec,
    NotOp,
    Query,
    SelectItem,
)
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.oql.lexer import Token, tokenize
from repro.oql.parser import parse_expression, parse_query
from repro.oql.evaluator import PatternEvaluator
from repro.oql.operations import OperationRegistry, Table
from repro.oql.query import QueryProcessor, QueryResult

__all__ = [
    "AggComparison",
    "AttrRef",
    "BoolOp",
    "Chain",
    "ClassTerm",
    "Comparison",
    "ContextExpr",
    "Literal",
    "LoopSpec",
    "NotOp",
    "Query",
    "SelectItem",
    "Token",
    "tokenize",
    "parse_expression",
    "parse_query",
    "PatternEvaluator",
    "QueryBudget",
    "BudgetExceeded",
    "OperationRegistry",
    "Table",
    "QueryProcessor",
    "QueryResult",
]
