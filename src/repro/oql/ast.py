"""Abstract syntax for OQL queries and rule bodies.

The AST mirrors the paper's clause structure:

* :class:`ContextExpr` — the association pattern expression of the Context
  clause: a :class:`Chain` of class terms and brace groups connected by
  ``*``/``!``, optionally carrying a :class:`LoopSpec` superscript;
* the condition nodes (:class:`Comparison`, :class:`BoolOp`,
  :class:`NotOp`) serve both intra-class conditions (in brackets after a
  class name) and the Where subclause's inter-class comparisons;
* :class:`AggComparison` — the Where subclause's aggregation-function
  conditions (``COUNT(Student by Course) > 39``);
* :class:`SelectItem` and :class:`Query` complete the query block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.subdb.refs import ClassRef


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean or Null."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return "null" if self.value is None else str(self.value)


@dataclass(frozen=True)
class AttrRef:
    """A reference to a descriptive attribute.

    Inside an intra-class condition ``owner`` is ``None`` (the attribute
    belongs to the class the condition is attached to); in the Where
    subclause attributes are qualified — ``TA[name]`` / ``TA.name``.
    """

    attr: str
    owner: Optional[ClassRef] = None

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}" if self.owner else self.attr


Operand = Union[Literal, AttrRef]


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in ``= != < <= > >=``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over two or more conditions."""

    op: str
    items: Tuple["Condition", ...]

    def __str__(self) -> str:
        return f" {self.op} ".join(f"({item})" for item in self.items)


@dataclass(frozen=True)
class NotOp:
    item: "Condition"

    def __str__(self) -> str:
        return f"not ({self.item})"


Condition = Union[Comparison, BoolOp, NotOp]


@dataclass(frozen=True)
class AggComparison:
    """An aggregation condition of the Where subclause.

    ``COUNT(Student by Course) > 39`` — for each distinct object at the
    ``by`` class's slot, aggregate over the distinct associated objects at
    the target class's slot (their ``attr`` values for SUM/AVG/MIN/MAX),
    and keep only the extensional patterns whose ``by`` object satisfies
    the comparison (paper, rule R2).
    """

    func: str                 # count | sum | avg | min | max
    target: ClassRef
    attr: Optional[str]
    by: ClassRef
    op: str
    value: Literal

    def __str__(self) -> str:
        target = f"{self.target}.{self.attr}" if self.attr else str(self.target)
        return (f"{self.func.upper()}({target} by {self.by}) "
                f"{self.op} {self.value}")


WhereCond = Union[Comparison, AggComparison, BoolOp, NotOp]


# ---------------------------------------------------------------------------
# Association pattern expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassTerm:
    """A class reference with an optional intra-class condition."""

    ref: ClassRef
    condition: Optional[Condition] = None

    def __str__(self) -> str:
        if self.condition is None:
            return str(self.ref)
        return f"{self.ref}[{self.condition}]"


@dataclass(frozen=True)
class Chain:
    """A sequence of elements (class terms or brace groups) joined by the
    association (``*``) / non-association (``!``) operators."""

    elements: Tuple[Union[ClassTerm, "Chain"], ...]
    ops: Tuple[str, ...]       # len(elements) - 1 entries, each "*" or "!"
    braced: bool = False

    def __post_init__(self):
        assert len(self.ops) == max(len(self.elements) - 1, 0)

    def __str__(self) -> str:
        parts = [str(self.elements[0])]
        for op, element in zip(self.ops, self.elements[1:]):
            parts.append(f" {op} {element}")
        body = "".join(parts)
        return "{" + body + "}" if self.braced else body


@dataclass(frozen=True)
class LoopSpec:
    """The loop superscript: ``^*`` (iterate to Nulls — transitive
    closure) or ``^N`` (N traversals of the cycle)."""

    count: Optional[int] = None     # None = unbounded

    def __str__(self) -> str:
        return "^*" if self.count is None else f"^{self.count}"


@dataclass(frozen=True)
class ContextExpr:
    """The Context clause's association pattern expression."""

    chain: Chain
    loop: Optional[LoopSpec] = None

    def __str__(self) -> str:
        return f"{self.chain} {self.loop}" if self.loop else str(self.chain)


# ---------------------------------------------------------------------------
# Select clause & query block
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of the Select subclause.

    * bare attribute — ``ref is None``, one entry in ``attrs``; the class
      is found by uniqueness among the context classes;
    * ``Class`` — ``attrs is None``: all visible attributes of the class;
    * ``Class[a, b]`` / ``Class.a`` — the listed attributes.
    """

    ref: Optional[ClassRef]
    attrs: Optional[Tuple[str, ...]]

    def __str__(self) -> str:
        if self.ref is None:
            return self.attrs[0]
        if self.attrs is None:
            return str(self.ref)
        return f"{self.ref}[{', '.join(self.attrs)}]"


@dataclass(frozen=True)
class Query:
    """A full OQL query block."""

    context: ContextExpr
    where: Tuple[WhereCond, ...] = ()
    select: Optional[Tuple[SelectItem, ...]] = None
    operation: Optional[str] = None

    def __str__(self) -> str:
        parts = [f"context {self.context}"]
        if self.where:
            parts.append("where " + " and ".join(str(w) for w in self.where))
        if self.select is not None:
            parts.append("select " + " ".join(str(s) for s in self.select))
        if self.operation:
            parts.append(self.operation)
        return "\n".join(parts)
