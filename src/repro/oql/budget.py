"""Query budgets: bounded time, rows, and loop depth per evaluation.

A :class:`QueryBudget` is threaded through the evaluator, the semi-naive
loop, the rule engine and incremental maintenance.  When any limit trips
the evaluation raises :class:`BudgetExceeded` — a catchable error that
carries the verdict (which limit), the elapsed time, the rows charged so
far, and the partial :class:`~repro.oql.evaluator.EvaluationMetrics` —
so a ``^*`` over an adversarial cycle degrades into a clean, bounded
failure instead of monopolizing the engine.

Budgets are *shareable*: one budget object may cover a whole derivation
cascade (a query plus every rule it backward-chains through), so the
row counter and the clock accumulate across sub-evaluations.  The
counters are lock-protected, so partitions of a parallel evaluation can
charge the same budget concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import ReproError


class BudgetExceeded(ReproError):
    """A query budget limit tripped mid-evaluation.

    ``verdict`` names the limit (``"deadline"``, ``"max_rows"`` or
    ``"max_loop_levels"``); ``elapsed_ms`` and ``rows`` are the spend at
    the moment of the trip; ``metrics`` holds the partial
    :class:`~repro.oql.evaluator.EvaluationMetrics` of the interrupted
    evaluation when the evaluator could attach them (``None`` when the
    trip happened outside an evaluator, e.g. in incremental
    maintenance).
    """

    def __init__(self, verdict: str, elapsed_ms: float, rows: int,
                 limit) -> None:
        super().__init__(
            f"query budget exceeded ({verdict}: limit {limit}, "
            f"elapsed {elapsed_ms:.1f} ms, {rows} rows)")
        self.verdict = verdict
        self.elapsed_ms = elapsed_ms
        self.rows = rows
        self.limit = limit
        self.metrics = None
        #: Id of the (partial) trace recorded for the interrupted
        #: evaluation when a tracer was installed — look it up with
        #: ``obs.TRACER.recorder.get(trace_id)`` to see where the spend
        #: went before the trip.
        self.trace_id: Optional[int] = None


class QueryBudget:
    """Resource limits for one evaluation (or one derivation cascade).

    ``deadline_ms`` bounds wall-clock time, ``max_rows`` bounds the
    total intermediate rows generated, ``max_loop_levels`` bounds the
    depth a ``^*``/``^N`` loop may reach.  Any subset may be ``None``
    (unbounded).  The clock starts at the first :meth:`ensure_started`
    (the evaluator calls it on entry); :meth:`start` restarts it for
    reuse across independent queries.
    """

    #: Budgeted extension loops check the clock every CHECK_EVERY
    #: appended rows, bounding the overshoot past a deadline to the
    #: time one chunk takes rather than the time one whole hop takes.
    CHECK_EVERY = 4096

    #: The limit names :meth:`from_limits` accepts, in canonical order.
    LIMIT_KEYS = ("deadline_ms", "max_rows", "max_loop_levels")

    def __init__(self, deadline_ms: Optional[float] = None,
                 max_rows: Optional[int] = None,
                 max_loop_levels: Optional[int] = None):
        self.deadline_ms = deadline_ms
        self.max_rows = max_rows
        self.max_loop_levels = max_loop_levels
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._rows = 0
        #: Enforcement calls served since the last (re)start — an
        #: unlocked, approximate tally (concurrent partitions may lose
        #: increments) surfaced as a span counter by the tracer.
        self.checks = 0

    @classmethod
    def from_limits(cls, limits: Optional[dict] = None,
                    caps: Optional[dict] = None) -> "QueryBudget":
        """Build a budget from a request-shaped limits mapping, clamped
        to server-side ``caps``.

        ``limits`` holds any subset of :data:`LIMIT_KEYS` (JSON
        numbers); unknown keys, non-numeric or non-positive values
        raise ``ValueError`` (the service answers BAD_REQUEST).
        ``caps`` has the same shape: each requested limit is reduced to
        the cap when it exceeds it, and an axis the request leaves
        unbounded inherits the cap outright — admission control can
        therefore guarantee *every* admitted request is bounded by the
        server's ceilings, whatever the client asked for.
        """
        limits = dict(limits or {})
        caps = caps or {}
        unknown = set(limits) - set(cls.LIMIT_KEYS)
        if unknown:
            raise ValueError(
                f"unknown budget limit(s) {sorted(unknown)} "
                f"(accepted: {', '.join(cls.LIMIT_KEYS)})")
        merged = {}
        for key in cls.LIMIT_KEYS:
            requested = limits.get(key)
            cap = caps.get(key)
            if requested is not None:
                if isinstance(requested, bool) or \
                        not isinstance(requested, (int, float)):
                    raise ValueError(f"budget limit {key} must be a "
                                     f"number, got {requested!r}")
                if requested <= 0:
                    raise ValueError(f"budget limit {key} must be "
                                     f"positive, got {requested!r}")
            if requested is None:
                value = cap
            elif cap is None:
                value = requested
            else:
                value = min(requested, cap)
            if value is not None:
                value = float(value) if key == "deadline_ms" \
                    else int(value)
            merged[key] = value
        return cls(**merged)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "QueryBudget":
        """(Re)start the clock and zero the row counter."""
        with self._lock:
            self._started_at = time.perf_counter()
            self._rows = 0
            self.checks = 0
        return self

    def ensure_started(self) -> None:
        if self._started_at is None:
            self.start()

    # -- introspection --------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        if self._started_at is None:
            return 0.0
        return (time.perf_counter() - self._started_at) * 1000.0

    @property
    def rows_charged(self) -> int:
        return self._rows

    def remaining_ms(self) -> Optional[float]:
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - self.elapsed_ms

    # -- enforcement ----------------------------------------------------

    def _trip(self, verdict: str, limit) -> BudgetExceeded:
        return BudgetExceeded(verdict, self.elapsed_ms, self._rows, limit)

    def check_time(self) -> None:
        """Raise when the wall-clock deadline has passed."""
        self.checks += 1
        if self.deadline_ms is not None and \
                self.elapsed_ms > self.deadline_ms:
            raise self._trip("deadline", f"{self.deadline_ms} ms")

    def charge_rows(self, n: int) -> None:
        """Account ``n`` generated rows; raise when the total passes
        ``max_rows``.  Thread-safe (parallel partitions share one
        budget)."""
        if n:
            self.checks += 1
            with self._lock:
                self._rows += n
            if self.max_rows is not None and self._rows > self.max_rows:
                raise self._trip("max_rows", self.max_rows)

    def check_level(self, level: int) -> None:
        """Raise when a loop is about to expand past ``max_loop_levels``
        (``level`` counts loop hops already materialized)."""
        self.checks += 1
        if self.max_loop_levels is not None and \
                level > self.max_loop_levels:
            raise self._trip("max_loop_levels", self.max_loop_levels)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        parts = []
        if self.deadline_ms is not None:
            parts.append(f"deadline_ms={self.deadline_ms}")
        if self.max_rows is not None:
            parts.append(f"max_rows={self.max_rows}")
        if self.max_loop_levels is not None:
            parts.append(f"max_loop_levels={self.max_loop_levels}")
        return f"QueryBudget({', '.join(parts) or 'unbounded'})"
