"""Built-in user-operations for the operation clause.

The paper's operation clause admits system-defined data-manipulation
operations beyond Display/Print (Section 3.2).  This module provides a
practical set, registered with
:func:`register_builtin_operations`::

    context Teacher * Section count()      -- number of result rows
    context Teacher * Section to_csv()     -- the table as CSV text
    context Teacher * Section describe()   -- the subdatabase description
    context Teacher * Section to_dot()     -- DOT text of the extension

Each returns its value through ``QueryResult.op_result``.
"""

from __future__ import annotations

import csv
import io

from repro.oql.operations import OperationRegistry, Table
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import Universe


def op_count(universe: Universe, subdb: Subdatabase,
             table: Table) -> int:
    """The number of (deduplicated) result rows."""
    return len(table)


def op_to_csv(universe: Universe, subdb: Subdatabase,
              table: Table) -> str:
    """The bound table as CSV text (header + rows, Nulls empty)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(["" if value is None else value
                         for value in row])
    return buffer.getvalue()


def op_describe(universe: Universe, subdb: Subdatabase,
                table: Table) -> str:
    """The context subdatabase's full description (intension, patterns,
    induced links)."""
    return subdb.describe()


def op_to_dot(universe: Universe, subdb: Subdatabase,
              table: Table) -> str:
    """The extensional diagram as Graphviz DOT text."""
    from repro.viz import extension_to_dot
    return extension_to_dot(subdb)


def register_builtin_operations(registry: OperationRegistry
                                ) -> OperationRegistry:
    """Register the built-in operations on ``registry`` (returned for
    chaining)."""
    registry.register("count", op_count)
    registry.register("to_csv", op_to_csv)
    registry.register("describe", op_describe)
    registry.register("to_dot", op_to_dot)
    return registry
