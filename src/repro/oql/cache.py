"""Cross-query result caching keyed by fingerprint + version vector.

A repeated query costs a full join evaluation today even when nothing it
reads has changed — and under the class-granular version vector of
:class:`~repro.model.database.Database`, "nothing it reads has changed"
is finally checkable per class instead of per database.  This module
provides the two pieces the evaluator composes:

* :func:`fingerprint` — a canonical string for a query's AST (context
  expression + Where conditions).  Every AST node is a frozen dataclass
  with a deterministic ``repr``, so equal fingerprints mean equal
  queries, independent of the result name the caller picked;
* :class:`ResultCache` — a byte-bounded LRU mapping
  ``(kind, fingerprint)`` to ``(version vector, value)``.  A lookup
  hits only when the stored vector equals the current vector of the
  classes the query touches, so a write to an *unrelated* class evicts
  nothing and invalidation is exact: vector mismatch ⇒ miss (the stale
  entry is dropped on the spot).

Eligibility is the caller's job: only queries whose every class
reference is a *base* reference are keyed this way (derived
subdatabase contents carry no per-class versions; those queries bypass
the cache).  Coherence under snapshots is by construction — a
:class:`~repro.subdb.snapshot.DatabaseSnapshot` pins its vector at
creation, so every lookup against a snapshot sees constant versions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.oql.ast import ClassTerm, ContextExpr, WhereCond
from repro.subdb.subdatabase import Subdatabase

#: Default capacity handed out when the cache is enabled without an
#: explicit budget (the shell's ``\cache on``).
DEFAULT_CACHE_BYTES = 16 << 20


def fingerprint(expr: ContextExpr, where: Iterable[WhereCond]) -> str:
    """A canonical key for (context expression, where conditions).

    Built from ``repr`` of the frozen AST dataclasses: field names and
    values are spelled out, so ``Literal(1)`` and ``Literal('1')`` (or a
    bare class vs. an aliased one) never collide the way a rendered
    string might.
    """
    return repr((expr, tuple(where)))


def dependency_classes(terms: Iterable[ClassTerm]
                       ) -> Optional[Tuple[str, ...]]:
    """The classes whose version vector covers a chain query's inputs —
    or ``None`` when the query is cache-ineligible.

    For a base reference, every event that can change what the slot
    matches — insert/delete of an instance (of the class or any
    subclass), a link at either end, an attribute write — stamps the
    superclass closure of the touched object's direct class, which
    contains the slot's class whenever the object is in its extent.
    The term classes therefore form a complete dependency set.  A
    derived reference reads subdatabase contents, which no per-class
    version describes: the query bypasses the cache.
    """
    classes = set()
    for term in terms:
        if term.ref.subdb is not None:
            return None
        classes.add(term.ref.cls)
    return tuple(sorted(classes))


def clone_result(subdb: Subdatabase, name: str) -> Subdatabase:
    """A rename-on-read copy of a cached result.

    Interned templates share their row set and tables (each clone
    decodes independently and lazily); decoded templates share the
    immutable patterns while the constructor copies the set.  Either
    way the cached template can never be corrupted through a serving.
    """
    if subdb._patterns is None:
        rows, tables = subdb._interned
        return Subdatabase.from_interned_rows(name, subdb.intension, rows,
                                              tables, subdb.derived_info)
    return Subdatabase(name, subdb.intension, subdb._patterns,
                       subdb.derived_info)


def result_nbytes(subdb: Subdatabase) -> int:
    """A deliberate overestimate of a cached result's footprint: per-row
    tuple + per-slot int/OID, plus a fixed envelope."""
    width = max(len(subdb.intension), 1)
    return 256 + len(subdb) * (56 + 24 * width)


class ResultCache:
    """A byte-bounded LRU of vector-validated entries.

    Entries are ``key -> (vector, value, nbytes)``.  :meth:`lookup`
    returns the value only when the caller's current vector equals the
    stored one; on mismatch the entry is dropped (it can never become
    valid again — versions are monotonic).  :meth:`store` evicts from
    the LRU tail until the new entry fits.  Counters are cumulative for
    the cache's lifetime (the shell's ``\\cache stats``); per-query
    deltas live in ``EvaluationMetrics``.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES,
                 enabled: bool = True):
        self.max_bytes = max_bytes
        self.enabled = enabled and max_bytes > 0
        self._entries: "OrderedDict[Any, Tuple[Tuple[int, ...], Any, int]]" \
            = OrderedDict()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Any,
               vector: Tuple[int, ...]) -> Optional[Any]:
        """The cached value for ``key`` at exactly ``vector``, or
        ``None`` (counted as a miss; a vector mismatch also drops the
        stale entry)."""
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] == vector:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            del self._entries[key]
            self.bytes_used -= entry[2]
            self.invalidations += 1
        self.misses += 1
        return None

    def store(self, key: Any, vector: Tuple[int, ...], value: Any,
              nbytes: int) -> bool:
        """Insert (replacing any entry under ``key``); returns False
        when the value alone exceeds the whole budget."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old[2]
        if nbytes > self.max_bytes:
            return False
        while self._entries and self.bytes_used + nbytes > self.max_bytes:
            _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
            self.bytes_used -= evicted_bytes
            self.evictions += 1
        self._entries[key] = (vector, value, nbytes)
        self.bytes_used += nbytes
        return True

    def drop(self, key: Any) -> None:
        """Remove one entry by key (definition-level invalidation, e.g.
        a rule-base change that leaves version vectors untouched)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.bytes_used -= entry[2]
            self.invalidations += 1

    def clear(self) -> None:
        self._entries.clear()
        self.bytes_used = 0

    def stats(self) -> Dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "entries": len(self._entries),
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
