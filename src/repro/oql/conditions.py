"""Evaluation of condition ASTs.

Two getters drive the same recursive evaluation:

* intra-class conditions read attributes of a single object (the class
  term the condition is attached to);
* Where-subclause comparisons read attributes of the objects at specific
  slots of an extensional pattern.

Comparison semantics: ``=``/``!=`` work across types (different types are
simply unequal); ordering comparisons require both operands comparable
(numbers with numbers, strings with strings) and raise
:class:`~repro.errors.OQLSemanticError` otherwise — the paper permits
inter-class comparisons only "if these attributes are type comparable".
A ``None`` (Null/unset) operand satisfies only ``= null`` / ``!= <x>``
style checks: ordering against Null is false.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import OQLSemanticError
from repro.oql.ast import (
    AttrRef,
    BoolOp,
    Comparison,
    Condition,
    Literal,
    NotOp,
)

Getter = Callable[[AttrRef], Any]

_NUMBER_TYPES = (int, float)


def compare(left: Any, op: str, right: Any) -> bool:
    """Apply one comparison operator with the semantics above."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Ordering comparisons.
    if left is None or right is None:
        return False
    left_num = isinstance(left, _NUMBER_TYPES) and not isinstance(left, bool)
    right_num = isinstance(right, _NUMBER_TYPES) and not isinstance(right, bool)
    if left_num != right_num or (not left_num and
                                 type(left) is not type(right)):
        raise OQLSemanticError(
            f"operands {left!r} and {right!r} are not type comparable")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise OQLSemanticError(f"unknown comparison operator {op!r}")


def _operand_value(operand, getter: Getter) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, AttrRef):
        return getter(operand)
    raise OQLSemanticError(f"unknown operand {operand!r}")


def evaluate(condition: Condition, getter: Getter) -> bool:
    """Recursively evaluate a condition AST with ``getter`` supplying
    attribute values."""
    if isinstance(condition, Comparison):
        left = _operand_value(condition.left, getter)
        right = _operand_value(condition.right, getter)
        return compare(left, condition.op, right)
    if isinstance(condition, BoolOp):
        if condition.op == "and":
            return all(evaluate(item, getter) for item in condition.items)
        return any(evaluate(item, getter) for item in condition.items)
    if isinstance(condition, NotOp):
        return not evaluate(condition.item, getter)
    raise OQLSemanticError(f"unknown condition node {condition!r}")
