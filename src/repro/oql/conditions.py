"""Evaluation of condition ASTs.

Two getters drive the same recursive evaluation:

* intra-class conditions read attributes of a single object (the class
  term the condition is attached to);
* Where-subclause comparisons read attributes of the objects at specific
  slots of an extensional pattern.

Comparison semantics: ``=``/``!=`` work across types (different types are
simply unequal); ordering comparisons require both operands comparable
(numbers with numbers, strings with strings) and raise
:class:`~repro.errors.OQLSemanticError` otherwise — the paper permits
inter-class comparisons only "if these attributes are type comparable".
A ``None`` (Null/unset) operand satisfies only ``= null`` / ``!= <x>``
style checks: ordering against Null is false.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import OQLSemanticError
from repro.oql.ast import (
    AttrRef,
    BoolOp,
    Comparison,
    Condition,
    Literal,
    NotOp,
)

Getter = Callable[[AttrRef], Any]

_NUMBER_TYPES = (int, float)

#: Mirror of a comparison with its operands swapped (``5 < x`` is
#: ``x > 5``; equality operators are symmetric).
FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
           "=": "=", "!=": "!="}


def and_conjuncts(condition: Condition) -> list:
    """Flatten nested ``and`` groups into their conjunct list, in
    evaluation order.  :func:`evaluate` runs an ``and`` as a
    short-circuiting ``all()`` over its items, so a nested ``and``
    evaluates exactly like the flattened sequence — the value-index
    probe path and the planner's selectivity estimator both lean on
    that equivalence."""
    if isinstance(condition, BoolOp) and condition.op == "and":
        out: list = []
        for item in condition.items:
            out.extend(and_conjuncts(item))
        return out
    return [condition]


def literal_comparison(conj: Condition):
    """Normalize a conjunct to ``(attr, op, literal)`` when it compares
    an *own* attribute (no qualifier) against a literal — mirrored when
    the literal stands on the left — or ``None`` when it has any other
    shape.  :func:`compare`'s ``None`` handling, equality semantics and
    type-comparability errors are all symmetric in its operands, so the
    mirrored form is interchangeable with the original, errors
    included."""
    if not isinstance(conj, Comparison):
        return None
    if isinstance(conj.left, AttrRef) and isinstance(conj.right, Literal):
        attr_ref, op, literal = conj.left, conj.op, conj.right.value
    elif isinstance(conj.right, AttrRef) and \
            isinstance(conj.left, Literal):
        op = FLIP_OP.get(conj.op)
        if op is None:
            return None
        attr_ref, literal = conj.right, conj.left.value
    else:
        return None
    if attr_ref.owner is not None:
        return None
    return attr_ref.attr, op, literal


def compare(left: Any, op: str, right: Any) -> bool:
    """Apply one comparison operator with the semantics above."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Ordering comparisons.
    if left is None or right is None:
        return False
    left_num = isinstance(left, _NUMBER_TYPES) and not isinstance(left, bool)
    right_num = isinstance(right, _NUMBER_TYPES) and not isinstance(right, bool)
    if left_num != right_num or (not left_num and
                                 type(left) is not type(right)):
        raise OQLSemanticError(
            f"operands {left!r} and {right!r} are not type comparable")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise OQLSemanticError(f"unknown comparison operator {op!r}")


def _operand_value(operand, getter: Getter) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, AttrRef):
        return getter(operand)
    raise OQLSemanticError(f"unknown operand {operand!r}")


def evaluate(condition: Condition, getter: Getter) -> bool:
    """Recursively evaluate a condition AST with ``getter`` supplying
    attribute values."""
    if isinstance(condition, Comparison):
        left = _operand_value(condition.left, getter)
        right = _operand_value(condition.right, getter)
        return compare(left, condition.op, right)
    if isinstance(condition, BoolOp):
        if condition.op == "and":
            return all(evaluate(item, getter) for item in condition.items)
        return any(evaluate(item, getter) for item in condition.items)
    if isinstance(condition, NotOp):
        return not evaluate(condition.item, getter)
    raise OQLSemanticError(f"unknown condition node {condition!r}")
