"""The pattern-matching engine.

:class:`PatternEvaluator` turns an association pattern expression into a
:class:`~repro.subdb.subdatabase.Subdatabase`:

* a **linear chain** ``A * B * C`` is matched by a left-to-right join over
  the (own, inherited, or derived) association resolved between each pair
  of adjacent classes — keeping only fully connected patterns, exactly as
  the association operator is defined in Section 3.2;
* the **non-association operator** ``!`` extends a partial pattern with
  the extent objects *not* associated with the current end;
* **brace groups** identify additional pattern types (Section 5.1):
  ``A * {B * C} * D`` yields all patterns of types (A,B,C,D) and (B,C),
  with the subsumption rule dropping a brace pattern that is part of a
  retained larger pattern — Codd's outer-join semantics;
* a **loop superscript** ``^*`` / ``^N`` on a cyclic chain performs the
  transitive closure of Section 5.2 by iterating over the cycle,
  automatically generating aliases ``B_1, C_1, A_2, ...`` per level and
  keeping hierarchies that terminate early (implicit braces).

Chain matching is planned and executed in two layers:

* a :class:`~repro.oql.planner.Planner` chooses a contiguous join order
  (``optimize="naive" | "greedy" | "cost"``) from extent sizes and link
  fan-out statistics, emitting a :class:`~repro.oql.planner.JoinPlan`;
* a *frontier-batched executor* runs the plan hop by hop: one bulk
  neighbor lookup per hop over the distinct frontier endpoints, one
  set intersection (or difference, for ``!``) per distinct endpoint —
  never per row.  All three strategies produce identical results; only
  the join order and hence the intermediate row counts differ.

The Where subclause is applied afterwards: inter-class comparisons and
aggregation conditions (``COUNT ... by ...``) drop extensional patterns
from the context subdatabase.
"""

from __future__ import annotations

import time
import weakref
from array import array
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.errors import (CyclicDataError, OQLSemanticError,
                          UnknownAttributeError)
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.model.oid import OID
from repro.oql import conditions
from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    ContextExpr,
    NotOp,
    WhereCond,
)
from repro.model.interning import InternTable
from repro.oql import kernels
from repro.oql import parallel
from repro.oql.cache import (DEFAULT_CACHE_BYTES, ResultCache, clone_result,
                             dependency_classes, fingerprint, result_nbytes)
from repro.oql.planner import OPTIMIZE_MODES, JoinPlan, Planner
from repro.subdb import attrindex, planes
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern, subsume, subsume_rows
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import EdgeResolution, Universe


def resolve_slot_index(slots: Sequence[ClassRef], owner: ClassRef) -> int:
    """Resolve a Where-subclause qualifier to a slot index.

    Exact slot names win; otherwise an unqualified class name matches
    the unique slot of that class (any subdatabase qualifier / alias),
    mirroring the paper's rule that qualification is only needed when
    ambiguous.  Shared by :class:`PatternEvaluator` and the incremental
    maintainer so both raise identical :class:`OQLSemanticError`\\ s for
    unknown or ambiguous references.
    """
    for index, ref in enumerate(slots):
        if ref.slot == owner.slot:
            return index
    matches = [index for index, ref in enumerate(slots)
               if ref.cls == owner.cls
               and (owner.subdb is None or ref.subdb == owner.subdb)]
    if len(matches) == 1:
        return matches[0]
    slot_names = [ref.slot for ref in slots]
    if not matches:
        raise OQLSemanticError(
            f"where subclause references {owner}, which is not a "
            f"context class (context: {slot_names})")
    raise OQLSemanticError(
        f"where subclause reference {owner} is ambiguous among "
        f"context classes {slot_names}")


@dataclass
class EvaluationMetrics:
    """Instrumentation collected during one evaluation (an EXPLAIN
    ANALYZE-style record, exposed as ``PatternEvaluator.last_metrics``
    and ``QueryResult.metrics``)."""

    #: Objects pulled from class extents (after intra-class filtering).
    extent_objects: int = 0
    #: Neighbor-set lookups performed while matching.
    edge_traversals: int = 0
    #: Partial rows materialized across all match ranges.
    rows_generated: int = 0
    #: Patterns dropped by the subsumption rule.
    patterns_subsumed: int = 0
    #: Patterns in the final result.
    patterns_out: int = 0
    #: Loop levels materialized (0 for non-loop evaluations).
    loop_levels: int = 0
    #: Workers actually used (1 = sequential execution).
    workers_used: int = 1
    #: How partitioned work ran: ``"serial"`` when nothing was
    #: partitioned, else ``"thread"`` or ``"process"``.
    worker_mode: str = "serial"
    #: Per-partition records of parallel plan executions: dicts with
    #: ``partition``, ``anchor_rows``, ``rows_out``, ``ms``, ``mode``
    #: (and ``cpu_ms``/``pid`` for process partitions).
    partitions: List[dict] = field(default_factory=list)
    #: Which budget limit tripped ("none" when the evaluation finished
    #: inside its budget, or ran without one).
    budget_verdict: str = "none"
    #: The join plans chosen for each matched range (one per brace
    #: group, plus the base cycle of a loop), with per-step
    #: actual-vs-estimated row counts filled in by the executor.
    plans: List[JoinPlan] = field(default_factory=list)
    #: Id of the trace recorded for this evaluation (``None`` when no
    #: tracer was installed); resolve it via
    #: ``obs.TRACER.recorder.get(trace_id)``.
    trace_id: Optional[int] = None
    #: Cross-query result-cache traffic of this evaluation: a hit means
    #: the whole result was served without joining; a memo hit means a
    #: loop seeded its anchor-expansion table from a previous query.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_memo_hits: int = 0
    #: Value-index probes answered (one per conjunct served from an
    #: :class:`~repro.subdb.attrindex.AttrIndex` instead of a scan).
    index_probes: int = 0
    #: Candidate rows those probes returned (before any residual
    #: conjuncts filtered them further).
    index_rows: int = 0
    #: Per-entity intra-class condition evaluations this evaluation
    #: still performed in Python (full scans plus residual filtering of
    #: index candidates) — the observable index probes drive down.
    extent_filter_evals: int = 0

    def snapshot(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "extent_objects": self.extent_objects,
            "edge_traversals": self.edge_traversals,
            "rows_generated": self.rows_generated,
            "patterns_subsumed": self.patterns_subsumed,
            "patterns_out": self.patterns_out,
            "loop_levels": self.loop_levels,
            "workers_used": self.workers_used,
            "worker_mode": self.worker_mode,
            "budget_verdict": self.budget_verdict,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_memo_hits": self.cache_memo_hits,
            "index_probes": self.index_probes,
            "index_rows": self.index_rows,
            "extent_filter_evals": self.extent_filter_evals,
        }

    def describe_plans(self) -> str:
        """The chosen join plans, estimated vs actual, one block each."""
        return "\n".join(plan.describe() for plan in self.plans)


@dataclass
class _Flattened:
    """A chain flattened to slot order, with brace-group ranges."""

    terms: List[ClassTerm]
    ops: List[str]                       # between consecutive slots
    groups: List[Tuple[int, int]]        # inclusive ranges, outermost first


def _flatten(chain: Chain) -> _Flattened:
    terms: List[ClassTerm] = []
    ops: List[str] = []
    groups: List[Tuple[int, int]] = []

    def walk(node: Chain) -> None:
        start = len(terms)
        for index, element in enumerate(node.elements):
            if index > 0:
                ops.append(node.ops[index - 1])
            if isinstance(element, Chain):
                walk(element)
            else:
                terms.append(element)
        if node.braced:
            groups.append((start, len(terms) - 1))

    walk(chain)
    whole = (0, len(terms) - 1)
    ordered = [whole] + [g for g in groups if g != whole]
    # Outer groups before inner ones (wider ranges first) so subsumption
    # processes larger pattern types first.
    ordered.sort(key=lambda g: (g[0] - g[1], g[0]))
    _Flattened_groups = []
    seen = set()
    for group in ordered:
        if group not in seen:
            seen.add(group)
            _Flattened_groups.append(group)
    return _Flattened(terms, ops, _Flattened_groups)


class PatternEvaluator:
    """Evaluates context expressions against a :class:`Universe`."""

    def __init__(self, universe: Universe, on_cycle: str = "error",
                 max_depth: int = 1000,
                 optimize: Union[bool, str] = "cost",
                 compact: bool = True,
                 workers: int = 1,
                 worker_mode: str = "thread",
                 min_parallel_rows: int = 256,
                 cache_bytes: int = 0,
                 auto_index_min_rows: int = 0):
        if on_cycle not in ("error", "stop"):
            raise ValueError("on_cycle must be 'error' or 'stop'")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if worker_mode not in ("thread", "process"):
            raise ValueError("worker_mode must be 'thread' or 'process'")
        self.universe = universe
        #: Partition-parallel plan execution: when > 1, the anchor
        #: extent of a compact plan splits into up to ``workers``
        #: contiguous ranges of interned ids evaluated on a worker
        #: pool, merged in partition order (results are identical to
        #: sequential execution, row for row).
        self.workers = workers
        #: ``"thread"`` partitions run on a shared thread pool over the
        #: live in-process arrays (zero setup cost, but compute-bound
        #: hops serialize on the GIL); ``"process"`` ships partitions to
        #: a persistent process pool over shared-memory planes — true
        #: multicore, at the price of plane export and result pickling.
        self.worker_mode = worker_mode
        # The process-partition coordinator, created on first process
        # dispatch; its PlaneManager caches adjacency exports across
        # queries.  The finalizer unlinks every plane if the evaluator
        # is dropped without close().
        self._process_exec: Optional[parallel.ProcessPartitionExecutor] = \
            None
        self._process_finalizer = None
        #: Anchor extents below this size always run sequentially —
        #: thread dispatch costs more than the join saves.
        self.min_parallel_rows = min_parallel_rows
        #: Ambient budget applied to every evaluation that does not
        #: pass an explicit one (the rule engine sets it for the
        #: duration of a budgeted derivation cascade).
        self.budget: Optional[QueryBudget] = None
        # The budget active for the evaluation currently on the stack
        # (save/restored across provider-driven nested evaluations).
        self._budget: Optional[QueryBudget] = None
        #: When True (the default), chains and loops execute over
        #: interned dense ids against CSR adjacency indexes, decoding
        #: back to OID patterns only at materialization.  ``False``
        #: selects the original set-of-OIDs executor — results are
        #: identical (the differential tests assert it); only speed
        #: differs.
        self.compact = compact
        #: Behaviour when a loop revisits an instance: ``"error"`` raises
        #: :class:`CyclicDataError` (the paper assumes acyclic data),
        #: ``"stop"`` terminates that hierarchy (computes the closure of a
        #: cyclic graph).
        self.on_cycle = on_cycle
        #: Safety bound on unbounded-loop depth.
        self.max_depth = max_depth
        #: Join-order strategy (the paper's "search engine of the
        #: underlying OO DBMS"): ``"cost"`` plans via cardinality
        #: estimates over extent/fan-out statistics, ``"greedy"``
        #: anchors at the smallest filtered extent and grows towards
        #: the smaller neighbor, ``"naive"`` joins left-to-right.
        #: ``True``/``False`` are accepted as aliases for
        #: ``"cost"``/``"naive"``.  Results are identical in all modes.
        if isinstance(optimize, bool):
            optimize = "cost" if optimize else "naive"
        if optimize not in OPTIMIZE_MODES:
            raise ValueError(
                f"optimize must be a bool or one of {OPTIMIZE_MODES}")
        self.optimize = optimize
        #: The statistics-backed join planner (cached against the
        #: universe's data version).
        self.planner = Planner(universe)
        #: The cross-query result cache (LRU, byte-bounded, keyed by
        #: query fingerprint + per-class version vector).  Pass
        #: ``cache_bytes > 0`` to enable it; it can also be toggled
        #: at runtime via ``result_cache.enabled`` (the shell's
        #: ``\cache on|off``) at the default capacity.
        self.result_cache = ResultCache(
            cache_bytes if cache_bytes > 0 else DEFAULT_CACHE_BYTES,
            enabled=cache_bytes > 0)
        # Filtered extents memoized per ref token (conditions are pure,
        # so a term's filtered extent only changes when the classes it
        # reads change) — a write to an unrelated class keeps every
        # other term's extent warm.  Values are ``(token, set)``.
        self._extent_cache: Dict[ClassTerm, Tuple[Tuple[int, ...],
                                                  Set[OID]]] = {}
        # Terms whose latest filtered extent came *entirely* from value
        # index probes (no residual conjuncts): ``(token, ids, index)``
        # with ids the sorted dense candidates.  Validated against the
        # same ref token as the extent memo, and consumed by the
        # process-dispatch path to export the filter as a reusable
        # shared plane instead of a per-query ephemeral one.
        self._probe_cache: Dict[ClassTerm,
                                Tuple[Tuple[int, ...], array,
                                      attrindex.AttrIndex]] = {}
        # How each term's filtered extent was last computed ("index",
        # "index+scan", or "scan") — stamped onto every JoinPlan as its
        # per-slot access annotation (visible in explain output).
        self._extent_access: Dict[ClassTerm, str] = {}
        #: Opt-in auto-build heuristic: when > 0, a full filtered-extent
        #: scan over at least this many objects declares a value index
        #: on every own-attribute-vs-literal conjunct it evaluated, so
        #: the *next* evaluation probes instead of scanning.  0 (the
        #: default) disables it — indexes are declared explicitly.
        self.auto_index_min_rows = auto_index_min_rows
        #: Filtered-extent computations that missed the memo (the
        #: regression observable for per-class extent-cache scoping).
        self.extent_filter_evals = 0
        #: Instrumentation of the most recent *completed* evaluate()
        #: call (assigned when the call returns or raises).
        self.last_metrics = EvaluationMetrics()
        # The record of the evaluation currently on the stack; nested
        # (provider-driven) evaluations save/restore it, so helpers
        # always append to their own call's metrics.
        self._metrics = self.last_metrics

    @property
    def _process_executor(self) -> parallel.ProcessPartitionExecutor:
        exec_ = self._process_exec
        if exec_ is None:
            exec_ = self._process_exec = parallel.ProcessPartitionExecutor()
            self._process_finalizer = weakref.finalize(self, exec_.close)
        return exec_

    def close(self) -> None:
        """Unlink every shared-memory plane this evaluator exported.
        Idempotent; the worker pools are process-global and survive
        (they are torn down once at interpreter exit)."""
        if self._process_exec is not None:
            self._process_exec.close()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(self, expr: ContextExpr,
                 where: Sequence[WhereCond] = (),
                 name: str = "result",
                 budget: Optional[QueryBudget] = None) -> Subdatabase:
        """Evaluate a context expression (+ optional Where subclause).

        ``budget`` bounds this evaluation (falling back to the ambient
        :attr:`budget`); on a trip the raised
        :class:`~repro.oql.budget.BudgetExceeded` carries the partial
        metrics, and :attr:`last_metrics` records the verdict.
        """
        metrics = EvaluationMetrics()
        # Nested evaluations (a derivation cascade re-entering through
        # the universe's provider) save and restore the active record,
        # so an outer evaluation never appends into an inner one's
        # metrics — and last_metrics always describes a *completed*
        # call.
        prev_metrics = self._metrics
        self._metrics = metrics
        tracer = obs.TRACER
        span = tracer.start("query", result=name, compact=self.compact,
                            workers=self.workers,
                            worker_mode=self.worker_mode) \
            if tracer is not None else None
        if span is not None:
            metrics.trace_id = span.trace_id
        active = budget if budget is not None else self.budget
        if active is not None:
            active.ensure_started()
        prev = self._budget
        self._budget = active
        try:
            flat = _flatten(expr.chain)
            self._check_unique_slots(flat)
            cache_key = cache_vector = None
            cache = self.result_cache
            if cache.enabled:
                hit = self._cache_probe(cache, flat, expr, where)
                if hit is not None:
                    if hit[0] is not None:
                        subdb = clone_result(hit[0], name)
                        metrics.patterns_out = len(subdb)
                        return subdb
                    cache_key, cache_vector = hit[1], hit[2]
            if expr.loop is not None:
                if self.compact:
                    subdb = self._evaluate_loop_compact(flat,
                                                        expr.loop.count,
                                                        name)
                else:
                    subdb = self._evaluate_loop(flat, expr.loop.count, name)
            elif self.compact:
                subdb = self._evaluate_chain_compact(flat, name)
            else:
                subdb = self._evaluate_chain(flat, name)
            if where:
                subdb = self._apply_where(subdb, where)
            # len(subdb) counts interned rows without forcing a decode.
            metrics.patterns_out = len(subdb)
            if cache_key is not None:
                # Only a *completed* evaluation populates the cache: a
                # BudgetExceeded trip unwinds past this line, so partial
                # results can never be served later.
                before = cache.evictions
                cache.store(cache_key, cache_vector, subdb,
                            result_nbytes(subdb))
                metrics.cache_evictions += cache.evictions - before
            return subdb
        except BudgetExceeded as exc:
            metrics.budget_verdict = exc.verdict
            if exc.metrics is None:
                exc.metrics = metrics
            if span is not None and exc.trace_id is None:
                exc.trace_id = span.trace_id
            raise
        finally:
            self._budget = prev
            self._metrics = prev_metrics
            self.last_metrics = metrics
            if span is not None:
                span.add("rows_out", metrics.patterns_out)
                span.add("rows_generated", metrics.rows_generated)
                if active is not None:
                    span.set("budget_checks", active.checks)
                    span.set("budget_verdict", metrics.budget_verdict)
                tracer.finish(span)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _cache_probe(self, cache: ResultCache, flat: _Flattened,
                     expr: ContextExpr, where: Sequence[WhereCond]
                     ) -> Optional[Tuple[Optional[Subdatabase],
                                         Tuple, Tuple[int, ...]]]:
        """Look the query up in the cross-query result cache.

        Returns ``None`` when the query is ineligible (some reference
        reads a derived subdatabase — no per-class version covers it),
        ``(template, key, vector)`` on a hit, and
        ``(None, key, vector)`` on a miss, in which case the caller
        stores its result under that same (key, vector) — captured
        *before* evaluation, so a concurrent write to a dependency
        class during the join leaves a vector no future lookup can
        match.
        """
        dep = dependency_classes(flat.terms)
        if dep is None:
            return None
        tracer = obs.TRACER
        cspan = tracer.start("cache-lookup") if tracer is not None else None
        try:
            key = ("query", fingerprint(expr, where))
            vector = self.universe.class_vector(dep)
            template = cache.lookup(key, vector)
            if template is not None:
                self._metrics.cache_hits += 1
                if cspan is not None:
                    cspan.set("outcome", "hit")
                    cspan.add("rows", len(template))
                return (template, key, vector)
            self._metrics.cache_misses += 1
            if cspan is not None:
                cspan.set("outcome", "miss")
            return (None, key, vector)
        finally:
            if cspan is not None:
                tracer.finish(cspan)

    def _check_unique_slots(self, flat: _Flattened) -> None:
        seen: Set[str] = set()
        for term in flat.terms:
            slot = term.ref.slot
            if slot in seen:
                raise OQLSemanticError(
                    f"class {slot!r} appears twice in the expression; use "
                    f"an alias ({slot}_1) for the second occurrence")
            seen.add(slot)

    def _extent(self, term: ClassTerm) -> Set[OID]:
        """The term's extent, filtered by its intra-class condition
        (memoized per ref token — the returned set is shared and must
        not be mutated).  Entries are validated against the per-class
        version vector, so a write to an unrelated class no longer
        recomputes every filtered extent.

        When the class carries declared value indexes, the leading
        index-answerable conjuncts are served as sorted dense-id probes
        (:meth:`_probe_extent`) and only the residual tail — if any —
        falls back to per-entity evaluation over the candidates.  Probe
        and scan are byte-identical, errors included; the differential
        tier asserts it."""
        if term.condition is None:
            extent = self.universe.extent(term.ref)
            self._metrics.extent_objects += len(extent)
            return extent
        token = self.universe.ref_token(term.ref)
        cached = self._extent_cache.get(term)
        if cached is not None and cached[0] == token:
            self._metrics.extent_objects += len(cached[1])
            return cached[1]
        self.extent_filter_evals += 1
        if len(self._extent_cache) > 1024:
            self._extent_cache.clear()
            self._probe_cache.clear()
            self._extent_access.clear()
        filtered = self._probe_extent(term, token)
        if filtered is None:
            extent = self.universe.extent(term.ref)
            getter_for = self._getter_for(term)
            filtered = {oid for oid in extent
                        if conditions.evaluate(term.condition,
                                               getter_for(oid))}
            self._metrics.extent_filter_evals += len(extent)
            self._extent_access[term] = "scan"
            self._maybe_auto_index(term, len(extent))
        self._extent_cache[term] = (token, filtered)
        self._metrics.extent_objects += len(filtered)
        return filtered

    def _getter_for(self, term: ClassTerm):
        """The per-entity attribute getter factory intra-class filters
        evaluate against (shared by the scan and the residual tail of a
        probe, so both raise identical errors)."""
        universe = self.universe
        ref = term.ref

        def getter_for(oid: OID):
            def getter(attr_ref: AttrRef):
                if attr_ref.owner is not None:
                    raise OQLSemanticError(
                        "intra-class conditions may only reference the "
                        "class's own attributes")
                return universe.attr_value(ref, oid, attr_ref.attr)
            return getter

        return getter_for

    def _probe_extent(self, term: ClassTerm,
                      token: Tuple[int, ...]) -> Optional[Set[OID]]:
        """Serve a term's filtered extent from declared value indexes,
        or return ``None`` to scan.

        The condition's ``and`` conjuncts are peeled front to back:
        each leading conjunct an index answers exactly becomes a sorted
        dense-id probe, and the probed candidate lists intersect as
        sorted arrays.  The first conjunct that cannot be answered —
        no index, an operand shape indexes don't cover, or a probe the
        index reports as unable to reproduce scan semantics for
        (:data:`~repro.subdb.attrindex.CONFLICT` /
        :data:`~repro.subdb.attrindex.FALLBACK`) — stops the peel; it
        and every later conjunct form the *residual*, evaluated per
        candidate in original order.  That preserves the scan's
        left-to-right short-circuit exactly, so type-comparability
        errors surface for precisely the same inputs.  If not even the
        first conjunct is answerable the whole term scans."""
        ref = term.ref
        if ref.subdb is not None:
            return None
        store = self.universe.compact.attrs
        if not store.declared:
            return None
        conjuncts = conditions.and_conjuncts(term.condition)
        ids: Optional[array] = None
        probes = 0
        index_used = None
        for pos, conj in enumerate(conjuncts):
            answer = self._probe_conjunct(ref, conj, first=pos == 0)
            if answer is None:
                break
            conj_ids, index_used = answer
            ids = conj_ids if ids is None else \
                kernels.sorted_intersect(ids, conj_ids)
            probes += 1
        if ids is None or index_used is None:
            return None
        residual = conjuncts[probes:]
        tracer = obs.TRACER
        span = tracer.start("index-probe", slot=ref.slot,
                            conjuncts=probes,
                            residual=len(residual)) \
            if tracer is not None else None
        try:
            metrics = self._metrics
            metrics.index_probes += probes
            metrics.index_rows += len(ids)
            decode = index_used.table.oids
            if not residual:
                filtered = {decode[i] for i in ids}
                self._probe_cache[term] = (token, ids, index_used)
                self._extent_access[term] = "index"
            else:
                self._probe_cache.pop(term, None)
                self._extent_access[term] = "index+scan"
                getter_for = self._getter_for(term)
                filtered = set()
                keep = filtered.add
                for i in ids:
                    oid = decode[i]
                    if all(conditions.evaluate(conj, getter_for(oid))
                           for conj in residual):
                        keep(oid)
                metrics.extent_filter_evals += len(ids)
            if span is not None:
                span.add("rows", len(ids))
                span.add("rows_out", len(filtered))
            return filtered
        finally:
            if span is not None:
                tracer.finish(span)

    def _probe_conjunct(self, ref: ClassRef, conj,
                        first: bool) -> Optional[Tuple[array,
                                                       attrindex.AttrIndex]]:
        """One conjunct's index answer — ``(sorted dense ids, index)``
        — or ``None`` when it must be scanned."""
        normalized = conditions.literal_comparison(conj)
        if normalized is None:
            return None
        attr, op, literal = normalized
        index = self.universe.attr_index(ref, attr)
        if index is None:
            return None
        if len(index.table):
            # Every entity of a non-empty extent would evaluate the
            # first conjunct, so a schema-invisible attribute raises on
            # the scan path — reproduce that here.  A later conjunct
            # might never be reached (short-circuit), so it only stops
            # the peel.  Empty extents never call the getter at all.
            try:
                self.universe.check_attribute(ref, attr)
            except UnknownAttributeError:
                if first:
                    raise
                return None
        status, ids = index.probe(op, literal)
        if status != attrindex.OK or ids is None:
            return None
        return ids, index

    def _maybe_auto_index(self, term: ClassTerm, extent_size: int) -> None:
        """The opt-in auto-build heuristic: after a large enough full
        scan, declare an index on each own-attribute-vs-literal
        conjunct so the next evaluation probes instead."""
        threshold = self.auto_index_min_rows
        if not threshold or extent_size < threshold or \
                term.ref.subdb is not None:
            return
        for conj in conditions.and_conjuncts(term.condition):
            normalized = conditions.literal_comparison(conj)
            if normalized is None:
                continue
            try:
                self.universe.declare_index(term.ref.cls, normalized[0])
            except UnknownAttributeError:
                pass

    def _access_modes(self, terms: List[ClassTerm]
                      ) -> Tuple[Optional[str], ...]:
        """Per-slot access annotation for a plan: ``None`` for an
        unconditioned slot, else how the slot's filtered extent was
        last computed (``"index"``, ``"index+scan"``, ``"scan"``)."""
        return tuple(None if term.condition is None
                     else self._extent_access.get(term, "scan")
                     for term in terms)

    def _resolutions(self, flat: _Flattened) -> List[EdgeResolution]:
        return [self.universe.resolve_edge(flat.terms[i].ref,
                                           flat.terms[i + 1].ref)
                for i in range(len(flat.terms) - 1)]

    def _match_range(self, flat: _Flattened, start: int, end: int,
                     extents: List[Set[OID]],
                     resolutions: List[EdgeResolution]
                     ) -> List[Tuple[OID, ...]]:
        """All fully connected tuples over slots ``start..end``: plan a
        join order, then run it through the batched executor."""
        refs = [term.ref for term in flat.terms]
        sizes = [len(extent) for extent in extents]
        tracer = obs.TRACER
        span = tracer.start("match-range", start=start, end=end) \
            if tracer is not None else None
        try:
            plan = self.planner.plan(refs, flat.ops, resolutions, sizes,
                                     start, end, strategy=self.optimize)
            plan.access = self._access_modes(flat.terms)
            self._metrics.plans.append(plan)
            rows = self._execute_plan(plan, extents, resolutions)
            if span is not None:
                span.add("rows_out", len(rows))
            return rows
        finally:
            if span is not None:
                tracer.finish(span)

    def _execute_plan(self, plan: JoinPlan, extents: List[Set[OID]],
                      resolutions: List[EdgeResolution]
                      ) -> List[Tuple[OID, ...]]:
        """Run a join plan with whole-frontier batching.

        Each hop performs one bulk neighbor lookup over the *distinct*
        endpoints of the current row set, and computes each endpoint's
        candidate set (neighbors ∩ extent for ``*``, extent − neighbors
        for ``!``) exactly once — rows sharing an endpoint share the
        work, which is where the fan-in-heavy hops of selective chains
        spend their time under row-at-a-time execution.
        """
        budget = self._budget
        tracer = obs.TRACER
        rows: List[Tuple[OID, ...]] = [(oid,) for oid in
                                       extents[plan.anchor]]
        plan.actual_anchor_rows = len(rows)
        for step in plan.steps:
            sspan = tracer.start("join-step",
                                 slot=plan.slot_names[step.slot],
                                 op=step.op, direction=step.direction) \
                if tracer is not None else None
            try:
                rows = self._execute_plan_step(step, rows, extents,
                                               resolutions, budget)
                if sspan is not None:
                    sspan.add("frontier", step.actual_frontier or 0)
                    sspan.add("rows_out", len(rows))
            finally:
                if sspan is not None:
                    tracer.finish(sspan)
        return rows

    def _execute_plan_step(self, step, rows: List[Tuple[OID, ...]],
                           extents: List[Set[OID]],
                           resolutions: List[EdgeResolution],
                           budget: Optional[QueryBudget]
                           ) -> List[Tuple[OID, ...]]:
        """One hop of the set-based executor (split out so the per-step
        span around it closes on any exit path)."""
        if not rows:
            step.actual_frontier = 0
            step.actual_rows = 0
            return rows
        if budget is not None:
            budget.check_time()
        resolution = resolutions[step.edge]
        forward = step.direction == "right"
        target_extent = extents[step.slot]
        end_index = -1 if forward else 0
        frontier = {row[end_index] for row in rows}
        neighbor_map = self.universe.bulk_edge_neighbors(
            frontier, resolution, forward=forward)
        self._metrics.edge_traversals += len(frontier)
        if step.op == "*":
            candidates = {oid: neighbor_map[oid] & target_extent
                          for oid in frontier}
        else:  # "!": the non-association operator
            candidates = {oid: target_extent - neighbor_map[oid]
                          for oid in frontier}
        extended: List[Tuple[OID, ...]] = []
        append = extended.append
        next_check = budget.CHECK_EVERY if budget is not None else None
        charged = 0
        if forward:
            for row in rows:
                for oid in candidates[row[-1]]:
                    append(row + (oid,))
                if next_check is not None and \
                        len(extended) >= next_check:
                    budget.charge_rows(len(extended) - charged)
                    charged = len(extended)
                    budget.check_time()
                    next_check = charged + budget.CHECK_EVERY
        else:
            for row in rows:
                for oid in candidates[row[0]]:
                    append((oid,) + row)
                if next_check is not None and \
                        len(extended) >= next_check:
                    budget.charge_rows(len(extended) - charged)
                    charged = len(extended)
                    budget.check_time()
                    next_check = charged + budget.CHECK_EVERY
        if budget is not None:
            budget.charge_rows(len(extended) - charged)
        step.actual_frontier = len(frontier)
        step.actual_rows = len(extended)
        self._metrics.rows_generated += len(extended)
        return extended

    def _intension(self, flat: _Flattened,
                   resolutions: List[EdgeResolution]) -> IntensionalPattern:
        edges = []
        for i, resolution in enumerate(resolutions):
            edges.append(self._edge_for(i, i + 1, flat.ops[i], resolution))
        return IntensionalPattern([t.ref for t in flat.terms], edges)

    @staticmethod
    def _edge_for(i: int, j: int, op: str,
                  resolution: EdgeResolution) -> Edge:
        if resolution.kind == "identity":
            label = "identity"
            kind = "base"
        elif resolution.kind == "base":
            label = resolution.resolved.link.name
            kind = "base"
        else:
            label = f"derived@{resolution.subdb}"
            kind = "derived"
        if op == "!":
            label = f"!{label}"
        return Edge(i, j, kind, label)

    # ------------------------------------------------------------------
    # Plain chains (with brace groups)
    # ------------------------------------------------------------------

    def _evaluate_chain(self, flat: _Flattened, name: str) -> Subdatabase:
        width = len(flat.terms)
        extents = [self._extent(term) for term in flat.terms]
        resolutions = self._resolutions(flat)

        patterns: Set[ExtensionalPattern] = set()
        for start, end in flat.groups:
            for row in self._match_range(flat, start, end, extents,
                                         resolutions):
                values: List[Optional[OID]] = [None] * width
                values[start:end + 1] = row
                patterns.add(ExtensionalPattern(values))

        if len(flat.groups) == 1:
            # A single (whole-chain) group produces only full-width
            # patterns: nothing can subsume anything.
            kept = patterns
        else:
            kept = subsume(patterns)
        self._metrics.patterns_subsumed += len(patterns) - len(kept)
        intension = self._intension(flat, resolutions)
        return Subdatabase(name, intension, kept)

    # ------------------------------------------------------------------
    # Compact execution: interned ids over CSR adjacency indexes
    # ------------------------------------------------------------------

    def _filtered_ids(self, extents: List[Set[OID]],
                      tables: List[InternTable]
                      ) -> List[Optional[frozenset]]:
        """Per slot, the filtered extent as dense ids — or ``None`` when
        the filter kept the whole extent, so the executor can skip the
        membership test entirely (adjacency neighbors are already
        restricted to the table)."""
        out: List[Optional[frozenset]] = []
        for extent, table in zip(extents, tables):
            if len(extent) == len(table.oids):
                # A filtered extent is a subset of the unfiltered one at
                # the same data version, so equal size means unfiltered.
                out.append(None)
            else:
                out.append(table.encode_set(extent))
        return out

    def _match_range_ids(self, flat: _Flattened, start: int, end: int,
                         extents: List[Set[OID]],
                         resolutions: List[EdgeResolution],
                         refs: List[ClassRef],
                         tables: List[InternTable],
                         filt: List[Optional[frozenset]]
                         ) -> List[Tuple[int, ...]]:
        """Compact twin of :meth:`_match_range`: same planner, same
        metrics, rows of dense ids."""
        sizes = [len(extent) for extent in extents]
        tracer = obs.TRACER
        span = tracer.start("match-range", start=start, end=end) \
            if tracer is not None else None
        try:
            plan = self.planner.plan(refs, flat.ops, resolutions, sizes,
                                     start, end, strategy=self.optimize)
            plan.access = self._access_modes(flat.terms)
            self._metrics.plans.append(plan)
            rows = self._execute_plan_ids(plan, resolutions, refs, tables,
                                          filt, flat.terms)
            if span is not None:
                span.add("rows_out", len(rows))
            return rows
        finally:
            if span is not None:
                tracer.finish(span)

    def _execute_plan_ids(self, plan: JoinPlan,
                          resolutions: List[EdgeResolution],
                          refs: List[ClassRef],
                          tables: List[InternTable],
                          filt: List[Optional[frozenset]],
                          terms: Optional[List[ClassTerm]] = None
                          ) -> List[Tuple[int, ...]]:
        """Run a join plan over interned ids.

        Each hop runs as a vectorized columnar kernel
        (:mod:`repro.oql.kernels`): one CSR gather per step over the
        whole partition, an int-membership semi-join filter only when
        the slot carries an intra-class condition — never a Python-level
        append per output row.

        With :attr:`workers` > 1 and an anchor extent past
        :attr:`min_parallel_rows`, the anchor ids split into contiguous
        partitions evaluated on the shared thread pool
        (:attr:`worker_mode` ``"thread"``) or shipped to the persistent
        process pool over shared-memory planes (``"process"``); every
        partition runs the identical kernel sequence and the outputs
        concatenate in partition order, so the merged row list is equal
        — row for row — to the sequential one.
        """
        anchor_ids = filt[plan.anchor]
        anchor = (range(len(tables[plan.anchor].oids))
                  if anchor_ids is None else sorted(anchor_ids))
        plan.actual_anchor_rows = len(anchor)
        workers = self.workers
        if workers > 1 and plan.steps and \
                len(anchor) >= max(self.min_parallel_rows, 2 * workers):
            return self._execute_partitioned(plan, resolutions, refs,
                                             tables, filt, anchor, workers,
                                             terms)
        specs = self._build_step_specs(plan.steps, resolutions, refs,
                                       tables, filt)
        rows, stats = self._run_plan_steps(plan.steps, specs, refs,
                                           anchor, self._budget)
        self._merge_step_stats(plan, [stats])
        return rows

    def _build_step_specs(self, steps,
                          resolutions: List[EdgeResolution],
                          refs: List[ClassRef],
                          tables: List[InternTable],
                          filt: List[Optional[frozenset]]
                          ) -> List[kernels.StepSpec]:
        """Reduce a plan's hops to kernel step specs over the live CSR
        arrays.  Building them also forces every lazily-built shared
        structure (adjacency indexes, and the interner entries
        underneath) on the calling thread — including any
        provider-driven derivation (backward chaining) an adjacency
        build may trigger — so partition workers only ever read."""
        universe = self.universe
        specs = []
        for step in steps:
            forward = step.direction == "right"
            src = step.edge if forward else step.edge + 1
            tgt = step.slot
            adj = universe.adjacency(resolutions[step.edge], forward,
                                     refs[src], refs[tgt])
            ids = filt[tgt]
            tgt_filter = None if ids is None else array("q", sorted(ids))
            specs.append(kernels.StepSpec(step.op, forward, adj.offsets,
                                          adj.neighbors,
                                          len(tables[tgt]), tgt_filter))
        return specs

    def _probe_plane_entry(self, term: ClassTerm, ref: ClassRef,
                           table: InternTable,
                           filt_ids: Optional[frozenset]
                           ) -> Optional[tuple]:
        """The exportable value-index filter for one slot, if its
        filtered extent came entirely from index probes: ``(plane key,
        plane token, sorted ids, source index)``.  The entry is only
        valid while the class version and index epoch that produced it
        hold — the plane manager re-validates both at export, and the
        token folds them in, so a stale export can never be attached."""
        if filt_ids is None:
            return None
        entry = self._probe_cache.get(term)
        if entry is None:
            return None
        token, ids, index = entry
        if index.table is not table or len(ids) != len(filt_ids):
            return None
        if token != self.universe.ref_token(ref):
            return None
        key = ("attrfilter", table.key, index.attr, repr(term.condition))
        ptoken = planes.vector_token((key, token, index.epoch))
        return key, ptoken, ids, index

    def _step_meta(self, steps, resolutions: List[EdgeResolution],
                   refs: List[ClassRef], tables: List[InternTable],
                   filt: List[Optional[frozenset]],
                   terms: Optional[List[ClassTerm]] = None) -> List[dict]:
        """The process-dispatch twin of :meth:`_build_step_specs`:
        per hop, the adjacency index plus the stable cache key and
        version token the plane manager validates exports against.
        A slot whose filter was fully index-derived additionally
        carries a ``filter_plane`` entry, so the coordinator exports
        the candidate ids as a *cached* shared plane (reused across
        queries while the index holds) instead of a per-query
        ephemeral segment."""
        universe = self.universe
        meta = []
        for step in steps:
            forward = step.direction == "right"
            src = step.edge if forward else step.edge + 1
            tgt = step.slot
            resolution = resolutions[step.edge]
            adj = universe.adjacency(resolution, forward,
                                     refs[src], refs[tgt])
            key = universe.compact._adj_spec(resolution, forward,
                                             adj.src.key, adj.tgt.key)
            token = planes.vector_token(
                (key, universe.ref_token(refs[src]),
                 universe.ref_token(refs[tgt])))
            ids = filt[tgt]
            entry = {"op": step.op, "forward": forward,
                     "index": adj, "key": key, "token": token,
                     "tgt_size": len(tables[tgt]),
                     "tgt_filter": (None if ids is None
                                    else array("q", sorted(ids))),
                     "filter_plane": None}
            if terms is not None and ids is not None:
                entry["filter_plane"] = self._probe_plane_entry(
                    terms[tgt], refs[tgt], tables[tgt], ids)
            meta.append(entry)
        return meta

    def _run_plan_steps(self, steps, specs: List[kernels.StepSpec],
                        refs: List[ClassRef], anchor_ids,
                        budget: Optional[QueryBudget]
                        ) -> Tuple[List[Tuple[int, ...]],
                                   List[Tuple[int, int]]]:
        """The hop loop of a compact plan over one anchor partition.

        Rows stay columnar between hops and materialize as tuples once
        at the end.  Returns the rows plus per-step ``(distinct
        frontier, rows after)`` counts; metrics are *not* touched here —
        the caller merges the stats, so partitions can run this
        concurrently.
        """
        tracer = obs.TRACER
        stats: List[Tuple[int, int]] = []
        cols = [kernels.anchor_column(anchor_ids)]
        for step, spec in zip(steps, specs):
            sspan = tracer.start("join-step", slot=refs[step.slot].slot,
                                 op=step.op, direction=step.direction) \
                if tracer is not None else None
            try:
                if not len(cols[0]):
                    stats.append((0, 0))
                    if sspan is not None:
                        sspan.add("frontier", 0)
                        sspan.add("rows_out", 0)
                    continue
                cols, frontier_size = kernels.execute_step(cols, spec,
                                                           budget)
                stats.append((frontier_size, len(cols[0])))
                if sspan is not None:
                    sspan.add("frontier", frontier_size)
                    sspan.add("rows_out", len(cols[0]))
            finally:
                if sspan is not None:
                    tracer.finish(sspan)
        return kernels.columns_to_rows(cols), stats

    def _merge_step_stats(self, plan: JoinPlan,
                          stats_list: List[List[Tuple[int, int]]]) -> None:
        """Fold per-partition step stats into the plan's actuals and the
        evaluation metrics (partition frontiers sum: overlapping
        endpoints across partitions each did the lookup work)."""
        metrics = self._metrics
        for index, step in enumerate(plan.steps):
            frontier = sum(stats[index][0] for stats in stats_list)
            produced = sum(stats[index][1] for stats in stats_list)
            step.actual_frontier = frontier
            step.actual_rows = produced
            metrics.edge_traversals += frontier
            metrics.rows_generated += produced

    def _execute_partitioned(self, plan: JoinPlan,
                             resolutions: List[EdgeResolution],
                             refs: List[ClassRef],
                             tables: List[InternTable],
                             filt: List[Optional[frozenset]],
                             anchor, workers: int,
                             terms: Optional[List[ClassTerm]] = None
                             ) -> List[Tuple[int, ...]]:
        """Split the anchor ids into contiguous partitions and run the
        plan's kernel sequence over each — on the shared thread pool,
        or on the persistent process pool over shared-memory planes."""
        if self.worker_mode == "process":
            return self._execute_partitioned_process(
                plan, resolutions, refs, tables, filt, anchor, workers,
                terms)
        budget = self._budget
        specs = self._build_step_specs(plan.steps, resolutions, refs,
                                       tables, filt)
        # Probe structures are built once here rather than lazily on
        # the workers (the lazy build is a benign but wasteful race).
        for spec in specs:
            spec.probe()
            if kernels.numpy_active():
                spec.np_mask()
        bounds = parallel.partition_bounds(len(anchor), workers)
        results: List[Optional[List[Tuple[int, ...]]]] = \
            [None] * len(bounds)
        stats_list: List[Optional[List[Tuple[int, int]]]] = \
            [None] * len(bounds)
        timings: List[dict] = [{} for _ in bounds]

        tracer = obs.TRACER
        # Captured on the dispatching thread: workers open their span
        # with this explicit parent, stitching the partition subtrees
        # under the query span across threads.
        parent_span = tracer.current_span() if tracer is not None else None

        def run(index: int, lo: int, hi: int) -> None:
            pspan = tracer.start("partition", parent=parent_span,
                                 partition=index, mode="thread") \
                if tracer is not None else None
            started = time.perf_counter()
            try:
                out, stats = self._run_plan_steps(plan.steps, specs, refs,
                                                  anchor[lo:hi], budget)
                results[index] = out
                stats_list[index] = stats
                timings[index].update(
                    partition=index, anchor_rows=hi - lo,
                    rows_out=len(out), mode="thread",
                    ms=(time.perf_counter() - started) * 1000.0)
                if pspan is not None:
                    pspan.add("rows_out", len(out))
            finally:
                if pspan is not None:
                    pspan.add("anchor_rows", hi - lo)
                    tracer.finish(pspan)

        pool = parallel.thread_pool(workers)
        futures = [pool.submit(run, index, lo, hi)
                   for index, (lo, hi) in enumerate(bounds)]
        futures_wait(futures)
        # Every future is done.  Merge what finished, then surface the
        # first failure (a budget trip in one partition trips the
        # shared budget in all of them).
        finished = [stats for stats in stats_list if stats is not None]
        if finished:
            self._merge_step_stats(plan, finished)
        metrics = self._metrics
        metrics.workers_used = max(metrics.workers_used, len(bounds))
        metrics.worker_mode = "thread"
        metrics.partitions.extend(t for t in timings if t)
        for future in futures:
            error = future.exception()
            if error is not None:
                raise error
        return [row for part_rows in results for row in part_rows]

    def _execute_partitioned_process(self, plan: JoinPlan,
                                     resolutions: List[EdgeResolution],
                                     refs: List[ClassRef],
                                     tables: List[InternTable],
                                     filt: List[Optional[frozenset]],
                                     anchor, workers: int,
                                     terms: Optional[List[ClassTerm]] = None
                                     ) -> List[Tuple[int, ...]]:
        """Ship the plan's hops to the persistent process pool: only
        segment names, partition bounds and budget limits cross the
        pipe; workers attach the planes read-only and return packed
        int64 columns, merged here in partition order."""
        meta = self._step_meta(plan.steps, resolutions, refs, tables,
                               filt, terms)
        tracer = obs.TRACER
        parent_span = tracer.current_span() if tracer is not None else None
        rows, stats_list, infos = self._process_executor.run_chain(
            meta, anchor, workers, self._budget)
        self._merge_step_stats(plan, stats_list)
        metrics = self._metrics
        metrics.workers_used = max(metrics.workers_used, len(infos))
        metrics.worker_mode = "process"
        for info in infos:
            record = dict(info, mode="process")
            metrics.partitions.append(record)
            if tracer is not None:
                # Stitched post hoc (the worker ran in another process):
                # wall/CPU spend rides as span attributes.
                pspan = tracer.start("partition", parent=parent_span,
                                     partition=record["partition"],
                                     mode="process", pid=record["pid"])
                pspan.add("anchor_rows", record["anchor_rows"])
                pspan.add("rows_out", record["rows_out"])
                pspan.set("wall_ms", round(record["ms"], 3))
                pspan.set("cpu_ms", round(record["cpu_ms"], 3))
                tracer.finish(pspan)
        return rows

    def _evaluate_chain_compact(self, flat: _Flattened,
                                name: str) -> Subdatabase:
        width = len(flat.terms)
        extents = [self._extent(term) for term in flat.terms]
        resolutions = self._resolutions(flat)
        refs = [term.ref for term in flat.terms]
        tables = [self.universe.intern_table(ref) for ref in refs]
        filt = self._filtered_ids(extents, tables)

        int_rows: Set[Tuple[Optional[int], ...]] = set()
        for start, end in flat.groups:
            head = (None,) * start
            tail = (None,) * (width - 1 - end)
            for row in self._match_range_ids(flat, start, end, extents,
                                             resolutions, refs, tables,
                                             filt):
                int_rows.add(head + row + tail)

        if len(flat.groups) == 1:
            # A single (whole-chain) group produces only full-width
            # patterns: nothing can subsume anything.
            kept = int_rows
        else:
            kept = subsume_rows(int_rows)
        self._metrics.patterns_subsumed += len(int_rows) - len(kept)
        intension = self._intension(flat, resolutions)
        return Subdatabase.from_interned_rows(name, intension, kept, tables)

    # ------------------------------------------------------------------
    # Loops: transitive closure as iteration (Section 5.2)
    # ------------------------------------------------------------------

    def _loop_guard(self, flat: _Flattened) -> Tuple[List[ClassTerm],
                                                     int, int]:
        """Validate a loop expression; returns (terms, n, body width)."""
        if len(flat.groups) > 1:
            raise OQLSemanticError(
                "brace groups may not be combined with a loop superscript "
                "(the loop generates its own implicit braces)")
        terms = flat.terms
        n = len(terms)
        if n < 2:
            raise OQLSemanticError("a loop requires at least two classes")
        first, last = terms[0].ref, terms[-1].ref
        if first.cls != last.cls or first.subdb != last.subdb:
            raise OQLSemanticError(
                f"a loop expression must form a cycle: the last class "
                f"({last}) must be an alias of the first ({first})")
        if any(op != "*" for op in flat.ops):
            raise OQLSemanticError(
                "loop expressions may use the association operator only")
        return terms, n, n - 1

    def _loop_intension(self, terms: List[ClassTerm],
                        resolutions: List[EdgeResolution],
                        levels_reached: int, n: int,
                        body: int) -> IntensionalPattern:
        """Slot list and edges for a loop result: the base cycle, then
        per extra level a copy of the body slots with automatically
        generated aliases (Section 5.2: "appending an underscore and an
        integer to the class name")."""
        slots: List[ClassRef] = [t.ref for t in terms]
        edge_list: List[Edge] = []
        for i, resolution in enumerate(resolutions):
            edge_list.append(self._edge_for(i, i + 1, "*", resolution))
        for extra in range(2, levels_reached + 1):
            bump = extra - 1
            for j in range(1, n):
                ref = terms[j].ref
                slots.append(ref.with_alias((ref.alias or 0) + bump))
            base_index = len(slots) - body - 1
            for k in range(n - 1):
                i, j = base_index + k, base_index + k + 1
                edge_list.append(self._edge_for(i, j, "*", resolutions[k]))
        return IntensionalPattern(slots, edge_list)

    def _evaluate_loop(self, flat: _Flattened, count: Optional[int],
                       name: str) -> Subdatabase:
        terms, n, body = self._loop_guard(flat)
        extents = [self._extent(term) for term in terms]
        resolutions = self._resolutions(flat)
        max_level = count if count is not None else self.max_depth

        budget = self._budget
        tracer = obs.TRACER
        # Level 1: one full traversal of the cycle.
        frontier = self._match_range(flat, 0, n - 1, extents, resolutions)
        all_rows: List[Tuple[OID, ...]] = list(frontier)
        level = 1
        while frontier and level < max_level:
            level += 1
            lspan = tracer.start("loop-level", level=level) \
                if tracer is not None else None
            if lspan is not None:
                lspan.add("frontier", len(frontier))
            produced = 0
            try:
                if budget is not None:
                    budget.check_level(level)
                    budget.check_time()
                # Traverse the cycle body once more, batched: every
                # hierarchy ending at the same anchor instance shares one
                # expansion, and each hop is one bulk neighbor lookup
                # over the distinct partial endpoints.
                anchors = {row[-1] for row in frontier}
                partials: List[Tuple[OID, ...]] = [(a,) for a in anchors]
                for k in range(n - 1):
                    if not partials:
                        break
                    ends = {partial[-1] for partial in partials}
                    neighbor_map = self.universe.bulk_edge_neighbors(
                        ends, resolutions[k], forward=True)
                    self._metrics.edge_traversals += len(ends)
                    target_extent = extents[k + 1]
                    candidates = {oid: neighbor_map[oid] & target_extent
                                  for oid in ends}
                    partials = [partial + (oid,) for partial in partials
                                for oid in candidates[partial[-1]]]
                extensions: Dict[OID, List[Tuple[OID, ...]]] = {}
                for partial in partials:
                    # Drop the shared anchor; key extensions by it.
                    extensions.setdefault(partial[0],
                                          []).append(partial[1:])
                extended: List[Tuple[OID, ...]] = []
                charged = 0
                processed = 0
                for row in frontier:
                    for extension in extensions.get(row[-1], ()):
                        root_positions = range(0, len(row), body)
                        if any(row[p] == extension[-1]
                               for p in root_positions):
                            if self.on_cycle == "error":
                                raise CyclicDataError(
                                    f"instance {extension[-1]!r} repeats "
                                    f"in a loop hierarchy; the paper "
                                    f"assumes the traversed relationship "
                                    f"is acyclic (use on_cycle='stop' to "
                                    f"truncate)")
                            continue
                        extended.append(row + extension)
                    processed += 1
                    # A single level's extension can dwarf the whole
                    # budget on a dense graph — enforce mid-level, not
                    # just between levels.
                    if (budget is not None
                            and processed % budget.CHECK_EVERY == 0):
                        budget.charge_rows(len(extended) - charged)
                        charged = len(extended)
                        budget.check_time()
                all_rows.extend(extended)
                # rows_generated counts the *delta* this level
                # contributed, not the cumulative partials per hop.
                self._metrics.rows_generated += len(extended)
                if budget is not None:
                    budget.charge_rows(len(extended) - charged)
                produced = len(extended)
                frontier = extended
            finally:
                if lspan is not None:
                    lspan.add("rows_out", produced)
                    tracer.finish(lspan)
        if count is None and frontier and level >= self.max_depth:
            raise CyclicDataError(
                f"unbounded loop did not terminate within "
                f"{self.max_depth} levels")

        levels_reached = max(
            (1 + (len(row) - n) // body for row in all_rows), default=1)
        intension = self._loop_intension(terms, resolutions,
                                         levels_reached, n, body)
        width = len(intension.slots)
        patterns = set()
        for row in all_rows:
            padded = row + (None,) * (width - len(row))
            patterns.add(ExtensionalPattern(padded))
        kept = subsume(patterns)
        self._metrics.patterns_subsumed += len(patterns) - len(kept)
        self._metrics.loop_levels = levels_reached
        return Subdatabase(name, intension, kept)

    def _evaluate_loop_compact(self, flat: _Flattened,
                               count: Optional[int],
                               name: str) -> Subdatabase:
        """Semi-naive transitive closure over interned ids.

        Level N+1 extends only the rows *new at level N* (the delta
        frontier), and each anchor instance's one-cycle body expansion
        is computed at most once per evaluation and memoized — an
        anchor reached through many hierarchies, or reached again at a
        deeper level, reuses the cached expansion instead of
        re-traversing the body.
        """
        terms, n, body = self._loop_guard(flat)
        extents = [self._extent(term) for term in terms]
        resolutions = self._resolutions(flat)
        refs = [term.ref for term in terms]
        tables = [self.universe.intern_table(ref) for ref in refs]
        if tables[0] is not tables[-1]:
            # The cycle's first and last slot intern different extents
            # (a derived-reference loop whose aliases select distinct
            # subdatabase slots): ids are not comparable across the
            # cycle seam, so fall back to the OID executor.
            return self._evaluate_loop(flat, count, name)
        filt = self._filtered_ids(extents, tables)
        max_level = count if count is not None else self.max_depth
        budget = self._budget

        # Cross-query anchor-expansion memo: the one-cycle body
        # expansion of an anchor id depends only on the term extents and
        # links — exactly what the dependency classes' version vector
        # pins.  Dense ids are positional over the sorted extent, so an
        # unchanged vector means the same id bijection even if the
        # tables were rebuilt in between.
        memo_key = memo_vector = None
        cache = self.result_cache
        if cache.enabled:
            dep = dependency_classes(terms)
            if dep is not None:
                memo_key = ("loop-body",
                            repr((tuple(terms), tuple(flat.ops), count,
                                  self.on_cycle)))
                memo_vector = self.universe.class_vector(dep)

        # Level 1: one full traversal of the cycle.
        frontier = self._match_range_ids(flat, 0, n - 1, extents,
                                         resolutions, refs, tables, filt)
        total_rows = len(frontier)
        workers = self.workers
        if workers > 1 and \
                len(frontier) >= max(self.min_parallel_rows, 2 * workers):
            # Hierarchies rooted at distinct level-1 rows are
            # independent, so the closure partitions shared-nothing
            # over the frontier.  The cross-query loop-body memo is
            # skipped here: per-partition expansion tables only cover
            # the anchors their slice reached.
            kept_rows, extended = self._closure_partitioned(
                frontier, resolutions, refs, tables, filt, n, body,
                max_level, count is None, workers, terms)
            return self._loop_materialize(name, terms, resolutions,
                                          tables, kept_rows,
                                          total_rows + extended, n, body)
        # Loop rows grow from slot 0, so one covers another exactly when
        # the shorter is its prefix — and prefixes only arise by direct
        # ancestry.  A row is therefore subsumed iff it gets extended at
        # the next level; tracking kept rows inline replaces the generic
        # subsumption pass (the dominant cost of deep closures).
        kept_rows: List[Tuple[int, ...]] = []
        level = 1
        #: anchor id -> its one-cycle body expansions (anchor dropped).
        expansions: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        if memo_key is not None:
            seeded = cache.lookup(memo_key, memo_vector)
            if seeded is not None:
                expansions = dict(seeded)
                self._metrics.cache_memo_hits += 1
        tracer = obs.TRACER
        while frontier and level < max_level:
            level += 1
            lspan = tracer.start("loop-level", level=level) \
                if tracer is not None else None
            if lspan is not None:
                lspan.add("frontier", len(frontier))
            produced = 0
            try:
                if budget is not None:
                    budget.check_level(level)
                    budget.check_time()
                new_anchors = ({row[-1] for row in frontier}
                               - expansions.keys())
                if new_anchors:
                    self._expand_anchors(new_anchors, expansions,
                                         resolutions, refs, tables, filt,
                                         n)
                if lspan is not None:
                    lspan.add("new_anchors", len(new_anchors))
                extended: List[Tuple[int, ...]] = []
                next_check = (budget.CHECK_EVERY if budget is not None
                              else None)
                charged = 0
                for row in frontier:
                    grew = False
                    for extension in expansions[row[-1]]:
                        last = extension[-1]
                        # Root positions all intern through the
                        # cycle-seam table (tables[0] is tables[-1]), so
                        # id equality is instance equality.
                        if any(row[p] == last
                               for p in range(0, len(row), body)):
                            if self.on_cycle == "error":
                                raise CyclicDataError(
                                    f"instance {tables[-1].oids[last]!r} "
                                    f"repeats in a loop hierarchy; the "
                                    f"paper assumes the traversed "
                                    f"relationship is acyclic (use "
                                    f"on_cycle='stop' to truncate)")
                            continue
                        extended.append(row + extension)
                        grew = True
                    if not grew:
                        kept_rows.append(row)
                    if next_check is not None and \
                            len(extended) >= next_check:
                        # Chunked enforcement: overshoot past a deadline
                        # is bounded by one chunk of tuple appends, not
                        # one whole level of an exploding closure.
                        budget.charge_rows(len(extended) - charged)
                        charged = len(extended)
                        budget.check_time()
                        next_check = charged + budget.CHECK_EVERY
                if budget is not None:
                    budget.charge_rows(len(extended) - charged)
                total_rows += len(extended)
                self._metrics.rows_generated += len(extended)
                produced = len(extended)
                frontier = extended
            finally:
                if lspan is not None:
                    lspan.add("rows_out", produced)
                    tracer.finish(lspan)
        if count is None and frontier and level >= self.max_depth:
            raise CyclicDataError(
                f"unbounded loop did not terminate within "
                f"{self.max_depth} levels")
        if memo_key is not None and expansions:
            # Populated only on a completed closure (a budget trip or
            # cycle error unwinds past this line).
            tuples = sum(len(exts) for exts in expansions.values())
            nbytes = (256 + len(expansions) * 80
                      + tuples * (48 + 16 * body))
            cache.store(memo_key, memo_vector, dict(expansions), nbytes)
        # The final frontier was never expanded: all of it survives.
        kept_rows.extend(frontier)
        return self._loop_materialize(name, terms, resolutions, tables,
                                      kept_rows, total_rows, n, body)

    def _loop_materialize(self, name: str, terms: List[ClassTerm],
                          resolutions: List[EdgeResolution],
                          tables: List[InternTable],
                          kept_rows: List[Tuple[int, ...]],
                          total_rows: int, n: int,
                          body: int) -> Subdatabase:
        """Pad the surviving closure rows to the deepest level reached
        and decode them — shared by the serial and partitioned loops."""
        levels_reached = max(
            (1 + (len(row) - n) // body for row in kept_rows), default=1)
        intension = self._loop_intension(terms, resolutions,
                                         levels_reached, n, body)
        width = len(intension.slots)
        kept = {row + (None,) * (width - len(row)) for row in kept_rows}
        self._metrics.patterns_subsumed += total_rows - len(kept)
        self._metrics.loop_levels = levels_reached
        decode_tables = [tables[t] if t < n
                         else tables[1 + (t - n) % body]
                         for t in range(width)]
        return Subdatabase.from_interned_rows(name, intension, kept,
                                              decode_tables)

    def _body_specs(self, resolutions: List[EdgeResolution],
                    refs: List[ClassRef], tables: List[InternTable],
                    filt: List[Optional[frozenset]],
                    n: int) -> List[kernels.StepSpec]:
        """Kernel specs for one forward traversal of a loop's cycle
        body (hops ``k -> k+1``; loops admit only ``*`` hops)."""
        universe = self.universe
        specs = []
        for k in range(n - 1):
            adj = universe.adjacency(resolutions[k], True,
                                     refs[k], refs[k + 1])
            ids = filt[k + 1]
            tgt_filter = None if ids is None else array("q", sorted(ids))
            specs.append(kernels.StepSpec("*", True, adj.offsets,
                                          adj.neighbors,
                                          len(tables[k + 1]), tgt_filter))
        return specs

    def _body_meta(self, resolutions: List[EdgeResolution],
                   refs: List[ClassRef], tables: List[InternTable],
                   filt: List[Optional[frozenset]], n: int,
                   terms: Optional[List[ClassTerm]] = None) -> List[dict]:
        """Process-dispatch metadata for a loop's cycle-body hops."""
        universe = self.universe
        meta = []
        for k in range(n - 1):
            resolution = resolutions[k]
            adj = universe.adjacency(resolution, True,
                                     refs[k], refs[k + 1])
            key = universe.compact._adj_spec(resolution, True,
                                             adj.src.key, adj.tgt.key)
            token = planes.vector_token(
                (key, universe.ref_token(refs[k]),
                 universe.ref_token(refs[k + 1])))
            ids = filt[k + 1]
            entry = {"op": "*", "forward": True, "index": adj,
                     "key": key, "token": token,
                     "tgt_size": len(tables[k + 1]),
                     "tgt_filter": (None if ids is None
                                    else array("q", sorted(ids))),
                     "filter_plane": None}
            if terms is not None and ids is not None:
                entry["filter_plane"] = self._probe_plane_entry(
                    terms[k + 1], refs[k + 1], tables[k + 1], ids)
            meta.append(entry)
        return meta

    def _closure_partitioned(self, frontier: List[Tuple[int, ...]],
                             resolutions: List[EdgeResolution],
                             refs: List[ClassRef],
                             tables: List[InternTable],
                             filt: List[Optional[frozenset]],
                             n: int, body: int, max_level: int,
                             unbounded: bool, workers: int,
                             terms: Optional[List[ClassTerm]] = None
                             ) -> Tuple[List[Tuple[int, ...]], int]:
        """Run the semi-naive closure with the level-1 frontier split
        across workers (threads over the live arrays, or processes over
        shared-memory planes); returns ``(kept rows, extended-row
        total)``.  Worker-side cycle/non-termination markers translate
        here into the same :class:`CyclicDataError`\\ s the serial loop
        raises — the coordinator owns the intern tables that name the
        offending instance."""
        budget = self._budget
        metrics = self._metrics
        tracer = obs.TRACER
        parent_span = tracer.current_span() if tracer is not None else None
        try:
            if self.worker_mode == "process":
                meta = self._body_meta(resolutions, refs, tables, filt, n,
                                       terms)
                kept, stats_list, infos = \
                    self._process_executor.run_closure(
                        meta, frontier, body, max_level, self.on_cycle,
                        unbounded, workers, budget)
                for info, stats in zip(infos, stats_list):
                    record = dict(info, mode="process",
                                  level=stats["level"])
                    metrics.partitions.append(record)
                    if tracer is not None:
                        pspan = tracer.start("partition",
                                             parent=parent_span,
                                             partition=record["partition"],
                                             mode="process",
                                             pid=record["pid"])
                        pspan.add("anchor_rows", record["anchor_rows"])
                        pspan.add("rows_out", record["rows_out"])
                        pspan.add("level", stats["level"])
                        pspan.set("wall_ms", round(record["ms"], 3))
                        pspan.set("cpu_ms", round(record["cpu_ms"], 3))
                        tracer.finish(pspan)
            else:
                specs = self._body_specs(resolutions, refs, tables,
                                         filt, n)
                for spec in specs:
                    spec.probe()
                    if kernels.numpy_active():
                        spec.np_mask()
                bounds = parallel.partition_bounds(len(frontier), workers)
                results: List[Optional[List[Tuple[int, ...]]]] = \
                    [None] * len(bounds)
                stats_list = [None] * len(bounds)

                def run(index: int, lo: int, hi: int) -> None:
                    pspan = tracer.start("partition", parent=parent_span,
                                         partition=index, mode="thread") \
                        if tracer is not None else None
                    started = time.perf_counter()
                    try:
                        out, stats = kernels.closure_partition(
                            frontier[lo:hi], specs, body, max_level,
                            self.on_cycle, budget, unbounded)
                        results[index] = out
                        stats_list[index] = stats
                        metrics.partitions.append({
                            "partition": index, "anchor_rows": hi - lo,
                            "rows_out": len(out), "mode": "thread",
                            "level": stats["level"],
                            "ms": (time.perf_counter() - started)
                                  * 1000.0})
                        if pspan is not None:
                            pspan.add("rows_out", len(out))
                            pspan.add("level", stats["level"])
                    finally:
                        if pspan is not None:
                            pspan.add("anchor_rows", hi - lo)
                            tracer.finish(pspan)

                pool = parallel.thread_pool(workers)
                futures = [pool.submit(run, index, lo, hi)
                           for index, (lo, hi) in enumerate(bounds)]
                futures_wait(futures)
                stats_list = [s for s in stats_list if s is not None]
                for future in futures:
                    error = future.exception()
                    if error is not None:
                        raise error
                kept = [row for part in results for row in part]
        except kernels.CycleHit as hit:
            raise CyclicDataError(
                f"instance {tables[-1].oids[hit.dense_id]!r} repeats in "
                f"a loop hierarchy; the paper assumes the traversed "
                f"relationship is acyclic (use on_cycle='stop' to "
                f"truncate)")
        except kernels.NonTerminating:
            raise CyclicDataError(
                f"unbounded loop did not terminate within "
                f"{self.max_depth} levels")
        extended = sum(s["extended"] for s in stats_list)
        metrics.rows_generated += extended
        metrics.edge_traversals += sum(s["edge_traversals"]
                                       for s in stats_list)
        metrics.workers_used = max(metrics.workers_used, len(stats_list))
        metrics.worker_mode = self.worker_mode
        return kept, extended

    def _expand_anchors(self, anchors: Set[int],
                        expansions: Dict[int, Tuple[Tuple[int, ...], ...]],
                        resolutions: List[EdgeResolution],
                        refs: List[ClassRef],
                        tables: List[InternTable],
                        filt: List[Optional[frozenset]],
                        n: int) -> None:
        """Traverse the cycle body once from each anchor id, batched per
        hop over distinct endpoints, and memoize the expansions."""
        universe = self.universe
        metrics = self._metrics
        budget = self._budget
        partials: List[Tuple[int, ...]] = [(a,) for a in anchors]
        for k in range(n - 1):
            if not partials:
                break
            if budget is not None:
                budget.check_time()
            adj = universe.adjacency(resolutions[k], True,
                                     refs[k], refs[k + 1])
            ends = {partial[-1] for partial in partials}
            metrics.edge_traversals += len(ends)
            tgt_ids = filt[k + 1]
            candidates: Dict[int, Sequence[int]] = {}
            if tgt_ids is None:
                for f in ends:
                    candidates[f] = adj.row(f)
            else:
                for f in ends:
                    candidates[f] = [v for v in adj.row(f) if v in tgt_ids]
            partials = [partial + (v,) for partial in partials
                        for v in candidates[partial[-1]]]
            if budget is not None:
                budget.charge_rows(len(partials))
        for anchor in anchors:
            expansions[anchor] = ()
        grouped: Dict[int, List[Tuple[int, ...]]] = {}
        for partial in partials:
            grouped.setdefault(partial[0], []).append(partial[1:])
        for anchor, exts in grouped.items():
            expansions[anchor] = tuple(exts)

    # ------------------------------------------------------------------
    # The Where subclause
    # ------------------------------------------------------------------

    def _slot_for(self, subdb: Subdatabase, owner: ClassRef) -> int:
        """Resolve a Where-subclause qualifier to a slot index.

        Exact slot names win; otherwise an unqualified class name matches
        the unique slot of that class (any subdatabase qualifier / alias),
        mirroring the paper's rule that qualification is only needed when
        ambiguous.  The resolution logic lives in
        :func:`resolve_slot_index` so the incremental maintainer applies
        the same rules (and raises the same errors).
        """
        return resolve_slot_index(subdb.intension.slots, owner)

    def _apply_where(self, subdb: Subdatabase,
                     where: Sequence[WhereCond]) -> Subdatabase:
        patterns = set(subdb.patterns)
        for cond in where:
            if isinstance(cond, AggComparison):
                patterns = self._apply_agg(subdb, patterns, cond)
            else:
                patterns = self._apply_cmp(subdb, patterns, cond)
        return Subdatabase(subdb.name, subdb.intension, patterns,
                           subdb.derived_info)

    def _apply_cmp(self, subdb: Subdatabase,
                   patterns: Set[ExtensionalPattern],
                   cond) -> Set[ExtensionalPattern]:
        slots = subdb.intension.slots

        def keeps(pattern: ExtensionalPattern) -> bool:
            def getter(attr_ref: AttrRef):
                if attr_ref.owner is None:
                    raise OQLSemanticError(
                        "where-subclause attributes must be qualified "
                        "(Class.attr)")
                index = self._slot_for(subdb, attr_ref.owner)
                oid = pattern[index]
                if oid is None:
                    return None
                return self.universe.attr_value(slots[index], oid,
                                                attr_ref.attr)
            # A pattern lacking an involved object cannot satisfy the
            # comparison; evaluate() returns False on Null operands for
            # ordering ops, and Null equality only matches literal null.
            return conditions.evaluate(cond, getter)

        return {p for p in patterns if keeps(p)}

    def _apply_agg(self, subdb: Subdatabase,
                   patterns: Set[ExtensionalPattern],
                   cond: AggComparison) -> Set[ExtensionalPattern]:
        by_index = self._slot_for(subdb, cond.by)
        target_index = self._slot_for(subdb, cond.target)
        target_ref = subdb.intension.slots[target_index]

        groups: Dict[OID, Set[OID]] = {}
        for pattern in patterns:
            key = pattern[by_index]
            member = pattern[target_index]
            if key is None or member is None:
                continue
            groups.setdefault(key, set()).add(member)

        def aggregate(members: Set[OID]) -> Optional[float]:
            if cond.func == "count":
                return len(members)
            if cond.attr is None:
                raise OQLSemanticError(
                    f"{cond.func.upper()} requires an attribute "
                    f"({cond.target}.<attr> by {cond.by})")
            values = [self.universe.attr_value(target_ref, oid, cond.attr)
                      for oid in members]
            values = [v for v in values if v is not None]
            if not values:
                return None
            if cond.func == "sum":
                return sum(values)
            if cond.func == "avg":
                return sum(values) / len(values)
            if cond.func == "min":
                return min(values)
            return max(values)

        passing: Set[OID] = set()
        for key, members in groups.items():
            value = aggregate(members)
            if value is not None and \
                    conditions.compare(value, cond.op, cond.value.value):
                passing.add(key)

        return {p for p in patterns
                if p[by_index] is not None and p[by_index] in passing}
