"""The pattern-matching engine.

:class:`PatternEvaluator` turns an association pattern expression into a
:class:`~repro.subdb.subdatabase.Subdatabase`:

* a **linear chain** ``A * B * C`` is matched by a left-to-right join over
  the (own, inherited, or derived) association resolved between each pair
  of adjacent classes — keeping only fully connected patterns, exactly as
  the association operator is defined in Section 3.2;
* the **non-association operator** ``!`` extends a partial pattern with
  the extent objects *not* associated with the current end;
* **brace groups** identify additional pattern types (Section 5.1):
  ``A * {B * C} * D`` yields all patterns of types (A,B,C,D) and (B,C),
  with the subsumption rule dropping a brace pattern that is part of a
  retained larger pattern — Codd's outer-join semantics;
* a **loop superscript** ``^*`` / ``^N`` on a cyclic chain performs the
  transitive closure of Section 5.2 by iterating over the cycle,
  automatically generating aliases ``B_1, C_1, A_2, ...`` per level and
  keeping hierarchies that terminate early (implicit braces).

The Where subclause is applied afterwards: inter-class comparisons and
aggregation conditions (``COUNT ... by ...``) drop extensional patterns
from the context subdatabase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CyclicDataError, OQLSemanticError
from repro.model.oid import OID
from repro.oql import conditions
from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    ContextExpr,
    NotOp,
    WhereCond,
)
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern, subsume
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import EdgeResolution, Universe


@dataclass
class EvaluationMetrics:
    """Instrumentation collected during one evaluation (an EXPLAIN
    ANALYZE-style record, exposed as ``PatternEvaluator.last_metrics``
    and ``QueryResult.metrics``)."""

    #: Objects pulled from class extents (after intra-class filtering).
    extent_objects: int = 0
    #: Neighbor-set lookups performed while matching.
    edge_traversals: int = 0
    #: Partial rows materialized across all match ranges.
    rows_generated: int = 0
    #: Patterns dropped by the subsumption rule.
    patterns_subsumed: int = 0
    #: Patterns in the final result.
    patterns_out: int = 0
    #: Loop levels materialized (0 for non-loop evaluations).
    loop_levels: int = 0

    def snapshot(self) -> dict:
        return {
            "extent_objects": self.extent_objects,
            "edge_traversals": self.edge_traversals,
            "rows_generated": self.rows_generated,
            "patterns_subsumed": self.patterns_subsumed,
            "patterns_out": self.patterns_out,
            "loop_levels": self.loop_levels,
        }


@dataclass
class _Flattened:
    """A chain flattened to slot order, with brace-group ranges."""

    terms: List[ClassTerm]
    ops: List[str]                       # between consecutive slots
    groups: List[Tuple[int, int]]        # inclusive ranges, outermost first


def _flatten(chain: Chain) -> _Flattened:
    terms: List[ClassTerm] = []
    ops: List[str] = []
    groups: List[Tuple[int, int]] = []

    def walk(node: Chain) -> None:
        start = len(terms)
        for index, element in enumerate(node.elements):
            if index > 0:
                ops.append(node.ops[index - 1])
            if isinstance(element, Chain):
                walk(element)
            else:
                terms.append(element)
        if node.braced:
            groups.append((start, len(terms) - 1))

    walk(chain)
    whole = (0, len(terms) - 1)
    ordered = [whole] + [g for g in groups if g != whole]
    # Outer groups before inner ones (wider ranges first) so subsumption
    # processes larger pattern types first.
    ordered.sort(key=lambda g: (g[0] - g[1], g[0]))
    _Flattened_groups = []
    seen = set()
    for group in ordered:
        if group not in seen:
            seen.add(group)
            _Flattened_groups.append(group)
    return _Flattened(terms, ops, _Flattened_groups)


class PatternEvaluator:
    """Evaluates context expressions against a :class:`Universe`."""

    def __init__(self, universe: Universe, on_cycle: str = "error",
                 max_depth: int = 1000, optimize: bool = True):
        if on_cycle not in ("error", "stop"):
            raise ValueError("on_cycle must be 'error' or 'stop'")
        self.universe = universe
        #: Behaviour when a loop revisits an instance: ``"error"`` raises
        #: :class:`CyclicDataError` (the paper assumes acyclic data),
        #: ``"stop"`` terminates that hierarchy (computes the closure of a
        #: cyclic graph).
        self.on_cycle = on_cycle
        #: Safety bound on unbounded-loop depth.
        self.max_depth = max_depth
        #: When True, chain matching anchors at the smallest filtered
        #: extent and expands greedily in both directions (the paper's
        #: "search engine of the underlying OO DBMS"); when False, the
        #: naive left-to-right join is used.  Results are identical.
        self.optimize = optimize
        #: Instrumentation of the most recent evaluate() call.
        self.last_metrics = EvaluationMetrics()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(self, expr: ContextExpr,
                 where: Sequence[WhereCond] = (),
                 name: str = "result") -> Subdatabase:
        """Evaluate a context expression (+ optional Where subclause)."""
        self.last_metrics = EvaluationMetrics()
        flat = _flatten(expr.chain)
        self._check_unique_slots(flat)
        if expr.loop is not None:
            subdb = self._evaluate_loop(flat, expr.loop.count, name)
        else:
            subdb = self._evaluate_chain(flat, name)
        if where:
            subdb = self._apply_where(subdb, where)
        self.last_metrics.patterns_out = len(subdb.patterns)
        return subdb

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _check_unique_slots(self, flat: _Flattened) -> None:
        seen: Set[str] = set()
        for term in flat.terms:
            slot = term.ref.slot
            if slot in seen:
                raise OQLSemanticError(
                    f"class {slot!r} appears twice in the expression; use "
                    f"an alias ({slot}_1) for the second occurrence")
            seen.add(slot)

    def _extent(self, term: ClassTerm) -> Set[OID]:
        """The term's extent, filtered by its intra-class condition."""
        extent = self.universe.extent(term.ref)
        if term.condition is None:
            self.last_metrics.extent_objects += len(extent)
            return extent

        def getter_for(oid: OID):
            def getter(attr_ref: AttrRef):
                if attr_ref.owner is not None:
                    raise OQLSemanticError(
                        "intra-class conditions may only reference the "
                        "class's own attributes")
                return self.universe.attr_value(term.ref, oid, attr_ref.attr)
            return getter

        filtered = {oid for oid in extent
                    if conditions.evaluate(term.condition,
                                           getter_for(oid))}
        self.last_metrics.extent_objects += len(filtered)
        return filtered

    def _resolutions(self, flat: _Flattened) -> List[EdgeResolution]:
        return [self.universe.resolve_edge(flat.terms[i].ref,
                                           flat.terms[i + 1].ref)
                for i in range(len(flat.terms) - 1)]

    def _match_range(self, start: int, end: int,
                     extents: List[Set[OID]],
                     ops: List[str],
                     resolutions: List[EdgeResolution]
                     ) -> List[Tuple[OID, ...]]:
        """All fully connected tuples over slots ``start..end``."""
        if self.optimize and end > start:
            return self._match_range_greedy(start, end, extents, ops,
                                            resolutions)
        return self._match_range_ltr(start, end, extents, ops,
                                     resolutions)

    def _match_range_ltr(self, start: int, end: int,
                         extents: List[Set[OID]],
                         ops: List[str],
                         resolutions: List[EdgeResolution]
                         ) -> List[Tuple[OID, ...]]:
        """Naive left-to-right chain join (the ablation baseline)."""
        rows: List[Tuple[OID, ...]] = [(oid,) for oid in extents[start]]
        for k in range(start, end):
            if not rows:
                break
            resolution = resolutions[k]
            op = ops[k]
            next_extent = extents[k + 1]
            extended: List[Tuple[OID, ...]] = []
            for row in rows:
                self.last_metrics.edge_traversals += 1
                neighbors = self.universe.edge_neighbors(
                    row[-1], resolution, forward=True)
                if op == "*":
                    candidates = neighbors & next_extent
                else:  # "!": the non-association operator
                    candidates = next_extent - neighbors
                for oid in candidates:
                    extended.append(row + (oid,))
            rows = extended
            self.last_metrics.rows_generated += len(rows)
        return rows

    def _match_range_greedy(self, start: int, end: int,
                            extents: List[Set[OID]],
                            ops: List[str],
                            resolutions: List[EdgeResolution]
                            ) -> List[Tuple[OID, ...]]:
        """Anchor at the smallest filtered extent, then expand the
        contiguous block towards whichever side has the smaller adjacent
        extent — a greedy chain-join order.

        A selective intra-class condition anywhere in the chain (e.g.
        ``Department[name = 'CIS']`` at the left of rule R2, or a filter
        at the far right of a long chain) then prunes the search from the
        first hop instead of after a full scan.
        """
        anchor = min(range(start, end + 1), key=lambda i: len(extents[i]))
        # rows hold the contiguous slot block [lo, hi].
        lo = hi = anchor
        rows: List[Tuple[OID, ...]] = [(oid,) for oid in extents[anchor]]
        while rows and (lo > start or hi < end):
            grow_left = lo > start and (
                hi == end or len(extents[lo - 1]) <= len(extents[hi + 1]))
            extended: List[Tuple[OID, ...]] = []
            if grow_left:
                op = ops[lo - 1]
                resolution = resolutions[lo - 1]
                prev_extent = extents[lo - 1]
                for row in rows:
                    self.last_metrics.edge_traversals += 1
                    neighbors = self.universe.edge_neighbors(
                        row[0], resolution, forward=False)
                    if op == "*":
                        candidates = neighbors & prev_extent
                    else:
                        candidates = prev_extent - neighbors
                    for oid in candidates:
                        extended.append((oid,) + row)
                lo -= 1
            else:
                op = ops[hi]
                resolution = resolutions[hi]
                next_extent = extents[hi + 1]
                for row in rows:
                    self.last_metrics.edge_traversals += 1
                    neighbors = self.universe.edge_neighbors(
                        row[-1], resolution, forward=True)
                    if op == "*":
                        candidates = neighbors & next_extent
                    else:
                        candidates = next_extent - neighbors
                    for oid in candidates:
                        extended.append(row + (oid,))
                hi += 1
            rows = extended
            self.last_metrics.rows_generated += len(rows)
        if lo > start or hi < end:
            return []  # rows emptied before covering the range
        return rows

    def _intension(self, flat: _Flattened,
                   resolutions: List[EdgeResolution]) -> IntensionalPattern:
        edges = []
        for i, resolution in enumerate(resolutions):
            edges.append(self._edge_for(i, i + 1, flat.ops[i], resolution))
        return IntensionalPattern([t.ref for t in flat.terms], edges)

    @staticmethod
    def _edge_for(i: int, j: int, op: str,
                  resolution: EdgeResolution) -> Edge:
        if resolution.kind == "identity":
            label = "identity"
            kind = "base"
        elif resolution.kind == "base":
            label = resolution.resolved.link.name
            kind = "base"
        else:
            label = f"derived@{resolution.subdb}"
            kind = "derived"
        if op == "!":
            label = f"!{label}"
        return Edge(i, j, kind, label)

    # ------------------------------------------------------------------
    # Plain chains (with brace groups)
    # ------------------------------------------------------------------

    def _evaluate_chain(self, flat: _Flattened, name: str) -> Subdatabase:
        width = len(flat.terms)
        extents = [self._extent(term) for term in flat.terms]
        resolutions = self._resolutions(flat)

        patterns: Set[ExtensionalPattern] = set()
        for start, end in flat.groups:
            for row in self._match_range(start, end, extents, flat.ops,
                                         resolutions):
                values: List[Optional[OID]] = [None] * width
                values[start:end + 1] = row
                patterns.add(ExtensionalPattern(values))

        kept = subsume(patterns)
        self.last_metrics.patterns_subsumed += len(patterns) - len(kept)
        intension = self._intension(flat, resolutions)
        return Subdatabase(name, intension, kept)

    # ------------------------------------------------------------------
    # Loops: transitive closure as iteration (Section 5.2)
    # ------------------------------------------------------------------

    def _evaluate_loop(self, flat: _Flattened, count: Optional[int],
                       name: str) -> Subdatabase:
        if len(flat.groups) > 1:
            raise OQLSemanticError(
                "brace groups may not be combined with a loop superscript "
                "(the loop generates its own implicit braces)")
        terms = flat.terms
        n = len(terms)
        if n < 2:
            raise OQLSemanticError("a loop requires at least two classes")
        first, last = terms[0].ref, terms[-1].ref
        if first.cls != last.cls or first.subdb != last.subdb:
            raise OQLSemanticError(
                f"a loop expression must form a cycle: the last class "
                f"({last}) must be an alias of the first ({first})")
        if any(op != "*" for op in flat.ops):
            raise OQLSemanticError(
                "loop expressions may use the association operator only")

        extents = [self._extent(term) for term in terms]
        resolutions = self._resolutions(flat)
        body = n - 1  # slots appended per additional traversal
        max_level = count if count is not None else self.max_depth

        # Level 1: one full traversal of the cycle.
        frontier = self._match_range(0, n - 1, extents, flat.ops,
                                     resolutions)
        all_rows: List[Tuple[OID, ...]] = list(frontier)
        level = 1
        while frontier and level < max_level:
            level += 1
            extended: List[Tuple[OID, ...]] = []
            for row in frontier:
                anchor = row[-1]
                # Traverse the cycle body once more, starting at the
                # anchor (the deepest hierarchy-root instance so far).
                partials: List[Tuple[OID, ...]] = [(anchor,)]
                for k in range(n - 1):
                    if not partials:
                        break
                    next_partials: List[Tuple[OID, ...]] = []
                    for partial in partials:
                        neighbors = self.universe.edge_neighbors(
                            partial[-1], resolutions[k], forward=True)
                        for oid in neighbors & extents[k + 1]:
                            next_partials.append(partial + (oid,))
                    partials = next_partials
                for partial in partials:
                    extension = partial[1:]  # drop the shared anchor
                    root_positions = range(0, len(row), body)
                    if any(row[p] == extension[-1] for p in root_positions):
                        if self.on_cycle == "error":
                            raise CyclicDataError(
                                f"instance {extension[-1]!r} repeats in a "
                                f"loop hierarchy; the paper assumes the "
                                f"traversed relationship is acyclic "
                                f"(use on_cycle='stop' to truncate)")
                        continue
                    extended.append(row + extension)
            all_rows.extend(extended)
            frontier = extended
        if count is None and frontier and level >= self.max_depth:
            raise CyclicDataError(
                f"unbounded loop did not terminate within "
                f"{self.max_depth} levels")

        levels_reached = max(
            (1 + (len(row) - n) // body for row in all_rows), default=1)

        # Slot list: the base cycle, then per extra level a copy of the
        # body slots with automatically generated aliases (Section 5.2:
        # "appending an underscore and an integer to the class name").
        slots: List[ClassRef] = [t.ref for t in terms]
        edge_list: List[Edge] = []
        for i, resolution in enumerate(resolutions):
            edge_list.append(self._edge_for(i, i + 1, "*", resolution))
        for extra in range(2, levels_reached + 1):
            bump = extra - 1
            for j in range(1, n):
                ref = terms[j].ref
                slots.append(ref.with_alias((ref.alias or 0) + bump))
            base_index = len(slots) - body - 1
            for k in range(n - 1):
                i, j = base_index + k, base_index + k + 1
                edge_list.append(self._edge_for(i, j, "*", resolutions[k]))

        width = len(slots)
        patterns = set()
        for row in all_rows:
            padded = row + (None,) * (width - len(row))
            patterns.add(ExtensionalPattern(padded))
        kept = subsume(patterns)
        self.last_metrics.patterns_subsumed += len(patterns) - len(kept)
        self.last_metrics.loop_levels = levels_reached
        intension = IntensionalPattern(slots, edge_list)
        return Subdatabase(name, intension, kept)

    # ------------------------------------------------------------------
    # The Where subclause
    # ------------------------------------------------------------------

    def _slot_for(self, subdb: Subdatabase, owner: ClassRef) -> int:
        """Resolve a Where-subclause qualifier to a slot index.

        Exact slot names win; otherwise an unqualified class name matches
        the unique slot of that class (any subdatabase qualifier / alias),
        mirroring the paper's rule that qualification is only needed when
        ambiguous.
        """
        intension = subdb.intension
        if intension.has_slot(owner.slot):
            return intension.index_of(owner.slot)
        matches = [i for i, ref in enumerate(intension.slots)
                   if ref.cls == owner.cls
                   and (owner.subdb is None or ref.subdb == owner.subdb)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise OQLSemanticError(
                f"where subclause references {owner}, which is not a "
                f"context class (context: {list(subdb.slot_names)})")
        raise OQLSemanticError(
            f"where subclause reference {owner} is ambiguous among "
            f"context classes {list(subdb.slot_names)}")

    def _apply_where(self, subdb: Subdatabase,
                     where: Sequence[WhereCond]) -> Subdatabase:
        patterns = set(subdb.patterns)
        for cond in where:
            if isinstance(cond, AggComparison):
                patterns = self._apply_agg(subdb, patterns, cond)
            else:
                patterns = self._apply_cmp(subdb, patterns, cond)
        return Subdatabase(subdb.name, subdb.intension, patterns,
                           subdb.derived_info)

    def _apply_cmp(self, subdb: Subdatabase,
                   patterns: Set[ExtensionalPattern],
                   cond) -> Set[ExtensionalPattern]:
        slots = subdb.intension.slots

        def keeps(pattern: ExtensionalPattern) -> bool:
            def getter(attr_ref: AttrRef):
                if attr_ref.owner is None:
                    raise OQLSemanticError(
                        "where-subclause attributes must be qualified "
                        "(Class.attr)")
                index = self._slot_for(subdb, attr_ref.owner)
                oid = pattern[index]
                if oid is None:
                    return None
                return self.universe.attr_value(slots[index], oid,
                                                attr_ref.attr)
            # A pattern lacking an involved object cannot satisfy the
            # comparison; evaluate() returns False on Null operands for
            # ordering ops, and Null equality only matches literal null.
            return conditions.evaluate(cond, getter)

        return {p for p in patterns if keeps(p)}

    def _apply_agg(self, subdb: Subdatabase,
                   patterns: Set[ExtensionalPattern],
                   cond: AggComparison) -> Set[ExtensionalPattern]:
        by_index = self._slot_for(subdb, cond.by)
        target_index = self._slot_for(subdb, cond.target)
        target_ref = subdb.intension.slots[target_index]

        groups: Dict[OID, Set[OID]] = {}
        for pattern in patterns:
            key = pattern[by_index]
            member = pattern[target_index]
            if key is None or member is None:
                continue
            groups.setdefault(key, set()).add(member)

        def aggregate(members: Set[OID]) -> Optional[float]:
            if cond.func == "count":
                return len(members)
            if cond.attr is None:
                raise OQLSemanticError(
                    f"{cond.func.upper()} requires an attribute "
                    f"({cond.target}.<attr> by {cond.by})")
            values = [self.universe.attr_value(target_ref, oid, cond.attr)
                      for oid in members]
            values = [v for v in values if v is not None]
            if not values:
                return None
            if cond.func == "sum":
                return sum(values)
            if cond.func == "avg":
                return sum(values) / len(values)
            if cond.func == "min":
                return min(values)
            return max(values)

        passing: Set[OID] = set()
        for key, members in groups.items():
            value = aggregate(members)
            if value is not None and \
                    conditions.compare(value, cond.op, cond.value.value):
                passing.add(key)

        return {p for p in patterns
                if p[by_index] is not None and p[by_index] in passing}
