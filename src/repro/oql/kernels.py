"""Vectorized columnar join kernels over flat int64 buffers.

The compact executor's inner loops used to materialize every joined row
as a Python tuple — one interpreter-level append *per output row*.
These kernels keep a partition's rows **columnar** (one int64 vector
per slot) while the plan runs, so a join hop becomes a handful of bulk
operations: per input row, one C-level slice copy of its CSR neighbor
run plus one replication of the existing columns by the neighbor
counts.  Rows only become tuples once, after the last hop.

Two interchangeable implementations sit behind a feature probe:

* a **numpy** path (when importable and not disabled via
  ``REPRO_NO_NUMPY=1``): the whole hop is fancy-indexed — offsets
  gather, prefix-sum index expansion, boolean-mask semi-join filter,
  ``np.repeat`` column replication — with zero per-row Python;
* a **pure-``array``/``memoryview``** fallback with one Python-level
  iteration per *input* row (not per output row) and C-level
  ``frombytes`` neighbor copies.

Both read the same :class:`StepSpec` buffers, which may be live
``array("q")`` objects (in-process execution) or ``memoryview``\\ s
over attached shared-memory planes (worker processes,
:mod:`repro.subdb.planes`) — the kernels are the single join
implementation shared by the serial path, the thread partitions, and
the process workers, which is what keeps all three byte-identical.

Budget enforcement is duck-typed: anything with ``CHECK_EVERY``,
``check_time()``, ``charge_rows(n)`` and ``check_level(level)`` works —
a :class:`~repro.oql.budget.QueryBudget` in-process, a
:class:`~repro.oql.parallel.WorkerBudget` (shared cancellation flag +
local deadline) inside a worker.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled by REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None


def numpy_active() -> bool:
    """Whether the numpy fast path is in use (tests monkeypatch
    ``kernels._np = None`` to pin the fallback)."""
    return _np is not None


class CycleHit(Exception):
    """A loop hierarchy revisited an instance under ``on_cycle="error"``
    — carries the dense id so the coordinator (which owns the intern
    tables) can name the instance in the user-facing error."""

    def __init__(self, dense_id: int):
        super().__init__(dense_id)
        self.dense_id = dense_id


class NonTerminating(Exception):
    """An unbounded loop still had a live frontier at the depth bound."""


class StepSpec:
    """One join hop reduced to flat buffers.

    ``offsets``/``neighbors`` are the CSR arrays (any int64 buffer);
    ``tgt_filter`` is the slot's filtered extent as a *sorted*
    ``array("q")`` — ``None`` when the filter kept the whole extent.
    Derived probe structures (masks, numpy views) are built lazily and
    cached; specs are built once per query on the dispatching thread,
    then read concurrently.
    """

    __slots__ = ("op", "forward", "offsets", "neighbors", "tgt_size",
                 "tgt_filter", "_probe", "_np_mask", "_nbr_bytes")

    def __init__(self, op: str, forward: bool, offsets, neighbors,
                 tgt_size: int, tgt_filter: Optional[array] = None):
        self.op = op
        self.forward = forward
        self.offsets = offsets
        self.neighbors = neighbors
        self.tgt_size = tgt_size
        self.tgt_filter = tgt_filter
        self._probe = None
        self._np_mask = None
        self._nbr_bytes = None

    # -- lazy probe structures -----------------------------------------

    def nbr_bytes(self) -> memoryview:
        view = self._nbr_bytes
        if view is None:
            view = self._nbr_bytes = memoryview(self.neighbors).cast("B")
        return view

    def probe(self):
        """Fallback membership probe for the semi-join filter: a
        bytearray mask when the filter is a dense fraction of the
        target table (one C-level index per neighbor), else a
        frozenset."""
        probe = self._probe
        if probe is None:
            ids = self.tgt_filter
            if ids is None:
                return None
            if self.tgt_size >= 64 and 4 * len(ids) >= self.tgt_size:
                mask = bytearray(self.tgt_size)
                for v in ids:
                    mask[v] = 1
                probe = ("mask", mask)
            else:
                probe = ("set", frozenset(ids))
            self._probe = probe
        return probe

    def np_mask(self):
        mask = self._np_mask
        if mask is None and self.tgt_filter is not None:
            mask = _np.zeros(self.tgt_size, dtype=bool)
            if len(self.tgt_filter):
                mask[_np.frombuffer(self.tgt_filter, dtype=_np.int64)] = \
                    True
            self._np_mask = mask
        return mask


# ----------------------------------------------------------------------
# Column representation
# ----------------------------------------------------------------------

def anchor_column(ids):
    """The partition's anchor ids as one column (a range, a sorted
    list, or an ``array("q")`` slice)."""
    if _np is not None:
        if isinstance(ids, range):
            return _np.arange(ids.start, ids.stop, dtype=_np.int64)
        return _np.fromiter(ids, dtype=_np.int64, count=len(ids))
    return ids if isinstance(ids, array) else array("q", ids)


def columns_to_rows(cols) -> List[Tuple[int, ...]]:
    """Materialize columns as the row tuples the rest of the engine
    consumes (plain Python ints, identical across representations)."""
    if not cols or not len(cols[0]):
        return []
    return list(zip(*[col.tolist() for col in cols]))


def columns_to_bytes(cols) -> List[bytes]:
    """Pack columns for a cross-process return (one int64 blob each)."""
    return [col.tobytes() for col in cols]


def rows_from_column_bytes(blobs: Sequence[bytes]) -> List[Tuple[int, ...]]:
    """Rebuild row tuples from a worker's packed columns."""
    cols = []
    for blob in blobs:
        col = array("q")
        col.frombytes(blob)
        cols.append(col)
    return columns_to_rows(cols)


# ----------------------------------------------------------------------
# One join hop
# ----------------------------------------------------------------------

def execute_step(cols, spec: StepSpec, budget=None):
    """Extend a columnar partition across one hop.

    Returns ``(new_cols, distinct_frontier)``; the new target column is
    appended (``forward``) or prepended.  Neighbor order within a row
    follows the CSR arrays (ascending), so output order is identical
    across the numpy path, the fallback path, and the historical
    tuple-at-a-time executor.
    """
    if budget is not None:
        budget.check_time()
    if spec.op == "*":
        if _np is not None:
            return _step_star_numpy(cols, spec, budget)
        return _step_star_arrays(cols, spec, budget)
    return _step_bang(cols, spec, budget)


def _step_star_numpy(cols, spec, budget):
    off = _np.frombuffer(spec.offsets, dtype=_np.int64)
    nbr = _np.frombuffer(spec.neighbors, dtype=_np.int64)
    ends = cols[-1] if spec.forward else cols[0]
    starts = off[ends]
    cnt = off[ends + 1] - starts
    frontier = int(_np.unique(ends).size)
    total = int(cnt.sum())
    if total == 0:
        empty = _np.empty(0, dtype=_np.int64)
        out = [empty for _ in range(len(cols) + 1)]
        return out, frontier
    # Expand the per-row CSR runs into one flat gather index:
    # idx[k] = starts[row of k] + (k - exclusive_prefix_sum[row of k]).
    csum = _np.cumsum(cnt)
    row_ids = _np.repeat(_np.arange(len(ends), dtype=_np.int64), cnt)
    idx = (_np.arange(total, dtype=_np.int64)
           - _np.repeat(csum - cnt, cnt)
           + _np.repeat(starts, cnt))
    tgt = nbr[idx]
    mask = spec.np_mask()
    if mask is not None:
        keep = mask[tgt]
        tgt = tgt[keep]
        row_ids = row_ids[keep]
    if budget is not None:
        budget.charge_rows(int(tgt.size))
    new_cols = [col[row_ids] for col in cols]
    if spec.forward:
        new_cols.append(tgt)
    else:
        new_cols.insert(0, tgt)
    return new_cols, frontier


def _step_star_arrays(cols, spec, budget):
    off = spec.offsets
    nbr_b = spec.nbr_bytes()
    nbr_q = memoryview(spec.neighbors).cast("B").cast("q") \
        if not isinstance(spec.neighbors, memoryview) else spec.neighbors
    ends = cols[-1] if spec.forward else cols[0]
    probe = spec.probe()
    out = array("q")
    counts: List[int] = []
    add_count = counts.append
    if probe is None:
        frombytes = out.frombytes
        for e in ends:
            s = off[e]
            t = off[e + 1]
            frombytes(nbr_b[8 * s:8 * t])
            add_count(t - s)
    else:
        kind, member = probe
        extend = out.extend
        if kind == "mask":
            for e in ends:
                vals = [v for v in nbr_q[off[e]:off[e + 1]] if member[v]]
                extend(vals)
                add_count(len(vals))
        else:
            for e in ends:
                vals = [v for v in nbr_q[off[e]:off[e + 1]]
                        if v in member]
                extend(vals)
                add_count(len(vals))
    frontier = len(set(ends))
    if budget is not None:
        budget.charge_rows(len(out))
        budget.check_time()
    new_cols = [_replicate(col, counts, len(out)) for col in cols]
    if spec.forward:
        new_cols.append(out)
    else:
        new_cols.insert(0, out)
    return new_cols, frontier


def _step_bang(cols, spec, budget):
    """The non-association operator: per distinct endpoint, the sorted
    complement of its neighbor set within the (filtered) target extent
    — computed once per endpoint, shared by every row ending there."""
    off = spec.offsets
    nbr_q = spec.neighbors
    ends = cols[-1] if spec.forward else cols[0]
    domain = (spec.tgt_filter if spec.tgt_filter is not None
              else range(spec.tgt_size))
    cand: Dict[int, bytes] = {}
    sizes: Dict[int, int] = {}
    for e in set(int(v) for v in ends):
        nbrs = set(nbr_q[off[e]:off[e + 1]])
        comp = array("q", [v for v in domain if v not in nbrs]) \
            if nbrs else array("q", domain)
        cand[e] = comp.tobytes()
        sizes[e] = len(comp)
    frontier = len(cand)
    counts = [sizes[int(e)] for e in ends]
    total = sum(counts)
    if budget is not None:
        budget.charge_rows(total)
        budget.check_time()
    out = array("q")
    frombytes = out.frombytes
    for e in ends:
        frombytes(cand[int(e)])
    if _np is not None:
        cnt = _np.fromiter(counts, dtype=_np.int64, count=len(counts))
        row_ids = _np.repeat(_np.arange(len(ends), dtype=_np.int64), cnt)
        new_cols = [col[row_ids] for col in cols]
        tgt = _np.frombuffer(out.tobytes(), dtype=_np.int64) \
            if len(out) else _np.empty(0, dtype=_np.int64)
        if spec.forward:
            new_cols.append(tgt)
        else:
            new_cols.insert(0, tgt)
        return new_cols, frontier
    new_cols = [_replicate(col, counts, total) for col in cols]
    if spec.forward:
        new_cols.append(out)
    else:
        new_cols.insert(0, out)
    return new_cols, frontier


def _replicate(col, counts: Sequence[int], total: int) -> array:
    """Repeat ``col[i]`` ``counts[i]`` times (fallback-path column
    replication; one Python iteration per *input* row)."""
    out = array("q")
    extend = out.extend
    append = out.append
    for v, c in zip(col, counts):
        if c == 1:
            append(v)
        elif c:
            extend([v] * c)
    return out


def run_steps(specs: Sequence[StepSpec], anchor_ids, budget=None):
    """Run a whole plan's hop sequence over one anchor partition.

    Returns ``(columns, stats)`` with per-step ``(distinct frontier,
    rows after)`` counts — the same stats contract as the evaluator's
    traced step loop, so partition results merge uniformly whether they
    ran in-process or in a worker."""
    cols = [anchor_column(anchor_ids)]
    stats: List[Tuple[int, int]] = []
    for spec in specs:
        if not len(cols[0]):
            stats.append((0, 0))
            continue
        cols, frontier = execute_step(cols, spec, budget)
        stats.append((frontier, len(cols[0]) if cols else 0))
    return cols, stats


# ----------------------------------------------------------------------
# Sorted-id set algebra (value-index probe composition)
# ----------------------------------------------------------------------
#
# Value-index probes (:mod:`repro.subdb.attrindex`) answer one predicate
# as an ascending, duplicate-free dense-id array; conjunctions and
# complements compose probes with these kernels before the result feeds
# the same ``tgt_filter``/anchor machinery the CSR join steps read.
# Results are byte-identical between the numpy path and the fallback.

def _as_np(ids):
    if isinstance(ids, array) or isinstance(ids, memoryview):
        return _np.frombuffer(ids, dtype=_np.int64)
    return _np.asarray(ids, dtype=_np.int64)


def _np_to_array(out) -> array:
    result = array("q")
    result.frombytes(_np.ascontiguousarray(out, dtype=_np.int64).tobytes())
    return result


def sorted_intersect(a, b) -> array:
    """Intersection of two ascending duplicate-free int64 id arrays."""
    if not len(a) or not len(b):
        return array("q")
    if _np is not None:
        return _np_to_array(_np.intersect1d(_as_np(a), _as_np(b),
                                            assume_unique=True))
    out = array("q")
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        va, vb = a[i], b[j]
        if va == vb:
            out.append(va)
            i += 1
            j += 1
        elif va < vb:
            i += 1
        else:
            j += 1
    return out


def sorted_union(a, b) -> array:
    """Union of two ascending duplicate-free int64 id arrays."""
    if not len(a):
        return array("q", b)
    if not len(b):
        return array("q", a)
    if _np is not None:
        return _np_to_array(_np.union1d(_as_np(a), _as_np(b)))
    out = array("q")
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        va, vb = a[i], b[j]
        if va == vb:
            out.append(va)
            i += 1
            j += 1
        elif va < vb:
            out.append(va)
            i += 1
        else:
            out.append(vb)
            j += 1
    if i < na:
        out.extend(a[i:])
    if j < nb:
        out.extend(b[j:])
    return out


def sorted_complement(size: int, a) -> array:
    """Ascending complement of ``a`` within ``range(size)``."""
    if not len(a):
        return array("q", range(size))
    if _np is not None:
        mask = _np.ones(size, dtype=bool)
        mask[_as_np(a)] = False
        return _np_to_array(_np.flatnonzero(mask))
    out = array("q")
    prev = 0
    for v in a:
        out.extend(range(prev, v))
        prev = v + 1
    out.extend(range(prev, size))
    return out


# ----------------------------------------------------------------------
# Loop closure over one frontier partition
# ----------------------------------------------------------------------

def closure_partition(frontier: List[Tuple[int, ...]],
                      body_specs: Sequence[StepSpec],
                      body: int, max_level: int, on_cycle: str,
                      budget=None, unbounded: bool = False):
    """Run the semi-naive closure to completion over one slice of the
    level-1 frontier.

    Hierarchies growing from distinct level-1 rows are independent, so
    partitions share nothing but the (read-only) adjacency buffers —
    each partition memoizes its own anchor expansions.  Matches the
    serial loop's semantics: a row is kept exactly when it stops
    growing, ``on_cycle="error"`` raises :class:`CycleHit`, an
    unbounded loop with a live frontier at ``max_level`` raises
    :class:`NonTerminating`.

    Returns ``(kept_rows, stats)`` where stats counts the extended-row
    deltas, the distinct-endpoint traversals, and the last level
    reached.
    """
    kept: List[Tuple[int, ...]] = []
    expansions: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
    level = 1
    total_extended = 0
    edge_traversals = 0
    while frontier and level < max_level:
        level += 1
        if budget is not None:
            budget.check_level(level)
            budget.check_time()
        new_anchors = {row[-1] for row in frontier} - expansions.keys()
        if new_anchors:
            edge_traversals += _expand_anchor_ids(
                new_anchors, expansions, body_specs, budget)
        extended: List[Tuple[int, ...]] = []
        append = extended.append
        next_check = budget.CHECK_EVERY if budget is not None else None
        charged = 0
        for row in frontier:
            grew = False
            for extension in expansions[row[-1]]:
                last = extension[-1]
                if any(row[p] == last for p in range(0, len(row), body)):
                    if on_cycle == "error":
                        raise CycleHit(last)
                    continue
                append(row + extension)
                grew = True
            if not grew:
                kept.append(row)
            if next_check is not None and len(extended) >= next_check:
                budget.charge_rows(len(extended) - charged)
                charged = len(extended)
                budget.check_time()
                next_check = charged + budget.CHECK_EVERY
        if budget is not None:
            budget.charge_rows(len(extended) - charged)
        total_extended += len(extended)
        frontier = extended
    if unbounded and frontier and level >= max_level:
        raise NonTerminating()
    kept.extend(frontier)
    return kept, {"extended": total_extended,
                  "edge_traversals": edge_traversals,
                  "level": level}


def _expand_anchor_ids(anchors: Set[int],
                       expansions: Dict[int, Tuple[Tuple[int, ...], ...]],
                       body_specs: Sequence[StepSpec], budget) -> int:
    """One-cycle body expansion of each anchor id, via the columnar
    step kernels; memoized into ``expansions``."""
    cols = [anchor_column(sorted(anchors))]
    traversals = 0
    for spec in body_specs:
        if not len(cols[0]):
            break
        cols, frontier = execute_step(cols, spec, budget)
        traversals += frontier
    for anchor in anchors:
        expansions[anchor] = ()
    grouped: Dict[int, List[Tuple[int, ...]]] = {}
    for row in columns_to_rows(cols):
        grouped.setdefault(row[0], []).append(row[1:])
    for anchor, exts in grouped.items():
        expansions[anchor] = tuple(exts)
    return traversals
