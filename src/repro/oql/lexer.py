"""Tokenizer for OQL queries and deductive rules.

The surface syntax follows the paper as closely as plain text allows:

* keywords (case-insensitive): ``context where select display print if
  then and or not by null`` and the aggregation functions ``count sum avg
  min max``;
* identifiers may contain ``#`` after the first character, so the paper's
  attribute names ``c#``, ``SS#`` and ``section#`` are legal;
* the association operator is ``*``, the non-association operator ``!``;
* comparison operators: ``= != <> < <= > >=``;
* the loop superscript of Section 5.2 is written ``^*`` (unbounded) or
  ``^N``;
* string literals use single or double quotes; numbers are integers or
  decimals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import OQLSyntaxError

KEYWORDS = {
    "context", "where", "select", "display", "print", "if", "then",
    "and", "or", "not", "by", "null",
    "count", "sum", "avg", "min", "max",
}

AGG_FUNCS = {"count", "sum", "avg", "min", "max"}

#: Multi-character operators must precede their prefixes.
_OPERATORS = ["<=", ">=", "!=", "<>", "*", "!", "=", "<", ">", "^",
              "(", ")", "[", "]", "{", "}", ",", ":", "."]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: str  # "ident" | "keyword" | "number" | "string" | "op" | "eof"
    value: Union[str, int, float]
    line: int
    column: int

    @property
    def text(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


def _is_digit(ch: str) -> bool:
    # str.isdigit() accepts Unicode digits (e.g. superscripts) that
    # int() rejects; numbers are ASCII only.
    return "0" <= ch <= "9"


def _ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_#"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        col = i - line_start + 1
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 1
            if j >= n:
                raise OQLSyntaxError("unterminated string literal",
                                     position=i, line=line, column=col)
            tokens.append(Token("string", text[i + 1:j], line, col))
            i = j + 1
            continue
        if _is_digit(ch):
            j = i
            while j < n and _is_digit(text[j]):
                j += 1
            if j < n and text[j] == "." and j + 1 < n and \
                    _is_digit(text[j + 1]):
                j += 1
                while j < n and _is_digit(text[j]):
                    j += 1
                tokens.append(Token("number", float(text[i:j]), line, col))
            else:
                tokens.append(Token("number", int(text[i:j]), line, col))
            i = j
            continue
        if _ident_start(ch):
            j = i
            while j < n and _ident_char(text[j]):
                j += 1
            word = text[i:j]
            if word.lower() in KEYWORDS:
                tokens.append(Token("keyword", word.lower(), line, col))
            else:
                tokens.append(Token("ident", word, line, col))
            i = j
            continue
        matched: Optional[str] = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise OQLSyntaxError(f"unexpected character {ch!r}",
                                 position=i, line=line, column=col)
        # Normalize the alternative inequality spelling.
        tokens.append(Token("op", "!=" if matched == "<>" else matched,
                            line, col))
        i += len(matched)
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens
