"""Operation clause: Display/Print and user-defined operations.

The Display (Print) operation causes the values of the descriptive
attributes identified by the Select subclause to be displayed (printed) in
tabular form (paper, Section 3.2): Query 3.1's result is "a binary table
in which each tuple contains a name value and a section# value".

:func:`build_table` binds the Select subclause against the context
subdatabase — bare attribute names must be unique among the context
classes, otherwise they must be qualified (``TA[name]``, Section 4.3) —
and produces a :class:`Table` of de-duplicated, deterministically ordered
rows (the language is set-oriented).

User-defined operations (the paper's ``Rotate``, ``Order-part``, ...) are
held in an :class:`OperationRegistry` and invoked with the universe, the
context subdatabase and the bound table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import OQLSemanticError, UnknownAttributeError
from repro.oql.ast import SelectItem
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import Universe


@dataclass
class Table:
    """A rendered query result: column headers plus value rows."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def render(self) -> str:
        """An ASCII rendering with column-width alignment."""
        def fmt(value: Any) -> str:
            return "Null" if value is None else str(value)

        headers = list(self.columns)
        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(widths[i])
                              for i, c in enumerate(cells))

        rule = "-+-".join("-" * w for w in widths)
        out = [line(headers), rule]
        out.extend(line(row) for row in body)
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise OQLSemanticError(
                f"no column {name!r} (columns: {self.columns})") from None
        return [row[index] for row in self.rows]


def _sort_key(row: Tuple[Any, ...]):
    return tuple((v is None, str(type(v)), str(v)) for v in row)


def _bind_bare_name(universe: Universe, subdb: Subdatabase,
                    name: str) -> List[Tuple[int, str]]:
    """Bind a bare Select identifier: a context class name takes priority;
    otherwise it must be an attribute visible from exactly one context
    class."""
    intension = subdb.intension
    # Class interpretation: exact slot, else unique class-name match.
    if intension.has_slot(name):
        index = intension.index_of(name)
        return [(index, attr) for attr in
                universe.visible_attributes(intension.slots[index])]
    class_matches = intension.indices_of_class(name)
    if len(class_matches) == 1:
        index = class_matches[0]
        return [(index, attr) for attr in
                universe.visible_attributes(intension.slots[index])]
    if len(class_matches) > 1:
        raise OQLSemanticError(
            f"select item {name!r} is ambiguous among slots "
            f"{list(subdb.slot_names)}")
    # Attribute interpretation.
    owners = []
    for index, ref in enumerate(intension.slots):
        if name in universe.visible_attributes(ref):
            owners.append(index)
    if not owners:
        raise OQLSemanticError(
            f"select item {name!r} is neither a context class nor an "
            f"attribute of one (context: {list(subdb.slot_names)})")
    if len(owners) > 1:
        ambiguous = [subdb.slot_names[i] for i in owners]
        raise OQLSemanticError(
            f"attribute {name!r} is not unique among the context classes "
            f"{ambiguous}; qualify it (Class[{name}])")
    return [(owners[0], name)]


def _bind_class_item(universe: Universe, subdb: Subdatabase,
                     ref: ClassRef,
                     attrs: Optional[Tuple[str, ...]]
                     ) -> List[Tuple[int, str]]:
    intension = subdb.intension
    if intension.has_slot(ref.slot):
        index = intension.index_of(ref.slot)
    else:
        matches = [i for i, slot in enumerate(intension.slots)
                   if slot.cls == ref.cls
                   and (ref.subdb is None or slot.subdb == ref.subdb)]
        if len(matches) != 1:
            raise OQLSemanticError(
                f"select item {ref} does not identify a unique context "
                f"class (context: {list(subdb.slot_names)})")
        index = matches[0]
    slot_ref = intension.slots[index]
    if attrs is None:
        attrs = universe.visible_attributes(slot_ref)
    else:
        for attr in attrs:
            universe.check_attribute(slot_ref, attr)
    return [(index, attr) for attr in attrs]


def build_table(universe: Universe, subdb: Subdatabase,
                select: Optional[Sequence[SelectItem]] = None) -> Table:
    """Bind the Select subclause and materialize the Display/Print table.

    Without a Select subclause every context class contributes all of its
    visible descriptive attributes (the paper's default: the descriptive
    attributes of a class appear with it in a subdatabase).
    """
    bound: List[Tuple[int, str]] = []
    if select is None:
        for index, ref in enumerate(subdb.intension.slots):
            for attr in universe.visible_attributes(ref):
                bound.append((index, attr))
    else:
        for item in select:
            if item.ref is None:
                bound.extend(_bind_bare_name(universe, subdb,
                                             item.attrs[0]))
            else:
                bound.extend(_bind_class_item(universe, subdb, item.ref,
                                              item.attrs))

    columns = [f"{subdb.slot_names[index]}.{attr}" for index, attr in bound]
    slots = subdb.intension.slots
    rows = set()
    for pattern in subdb.patterns:
        row = []
        for index, attr in bound:
            oid = pattern[index]
            row.append(None if oid is None
                       else universe.attr_value(slots[index], oid, attr))
        rows.add(tuple(row))
    return Table(columns, sorted(rows, key=_sort_key))


OperationFn = Callable[[Universe, Subdatabase, Table], Any]


class OperationRegistry:
    """Named user-defined operations invocable from the operation clause."""

    def __init__(self):
        self._operations: Dict[str, OperationFn] = {}

    def register(self, name: str, fn: OperationFn) -> None:
        self._operations[name.lower()] = fn

    def get(self, name: str) -> OperationFn:
        try:
            return self._operations[name.lower()]
        except KeyError:
            raise OQLSemanticError(
                f"unknown operation {name!r} (registered: "
                f"{sorted(self._operations)})") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._operations
