"""Persistent worker pools and the process partition executor.

PR 3's partition executor split anchors across *threads*, so compact
CPU work still serialized on the GIL.  This module adds the true
multicore path: a :class:`ProcessPartitionExecutor` ships only segment
names, plan payloads, partition bounds and budget limits to a
persistent ``ProcessPoolExecutor``; workers attach the shared-memory
planes (:mod:`repro.subdb.planes`) read-only, run the same columnar
kernels (:mod:`repro.oql.kernels`) as the in-process paths, and return
packed int64 columns.  Merge order is partition order, so results are
byte-identical to the serial and thread executors.

Pools are process-global and persistent: spawning an interpreter per
query would dwarf the join work, so pools are keyed by worker count,
created on first use, reused across queries and evaluators, and torn
down once at interpreter exit.  The thread pools here also back the
thread partition path (replacing its per-query ``ThreadPoolExecutor``).

Budget propagation uses a tiny shared *control block* segment: byte
one is the cancellation flag (either side sets it — the coordinator on
its own deadline, a worker on a local trip), followed by one
single-writer row-counter slot per worker, so ``max_rows`` is enforced
against the *global* row total while each worker only ever writes its
own slot.

A worker that dies mid-query (OOM killer, hard crash) breaks the pool:
the coordinator discards the broken pool, raises
:class:`WorkerCrashError`, and unlinks every per-query segment in its
``finally`` — the query fails cleanly with zero orphaned planes.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import threading
import time
from array import array
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.oql import kernels
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.subdb import planes
from repro.subdb.planes import SharedPlane


class WorkerCrashError(ReproError):
    """A partition worker process died mid-query.  The query fails
    cleanly: the broken pool is discarded (the next query gets a fresh
    one) and every segment the query exported is unlinked."""


# ----------------------------------------------------------------------
# Persistent pools
# ----------------------------------------------------------------------

def start_method() -> str:
    """The multiprocessing start method for worker pools.

    ``forkserver`` where available: ``fork`` is unsafe in a process
    that runs threads (the thread partition path, user code), ``spawn``
    pays a full interpreter + import per worker.  ``REPRO_MP_START``
    overrides for platforms/tests that need ``spawn`` or ``fork``.
    """
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


_POOL_LOCK = threading.Lock()
_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}


def thread_pool(workers: int) -> ThreadPoolExecutor:
    """The shared thread pool for ``workers``-way partition execution
    (created once, reused by every query at that width)."""
    with _POOL_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"repro-part{workers}")
            _THREAD_POOLS[workers] = pool
        return pool


def _sanitize_main_module() -> None:
    """Drop a phantom ``__main__.__file__`` before spawning workers.

    forkserver/spawn children re-import the parent's main script via its
    ``__file__``.  A coordinator driven from stdin (``python - <<EOF``)
    or an embedded interpreter reports a path like ``<stdin>`` that no
    child can open, so every worker would die during interpreter
    bootstrap.  The workers only need :mod:`repro.oql.parallel`, never
    the caller's main module, so a ``__file__`` that does not exist on
    disk is safe to remove.
    """
    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if main_file and not os.path.exists(main_file):
        try:
            del main.__file__
        except AttributeError:
            pass


def process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool for ``workers``-way partition execution."""
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.get(workers)
        if pool is None:
            _sanitize_main_module()
            ctx = multiprocessing.get_context(start_method())
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
            _PROCESS_POOLS[workers] = pool
        return pool


def discard_process_pool(workers: int) -> None:
    """Drop a (broken) process pool so the next query builds a fresh
    one — called after a worker crash."""
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Tear down every persistent pool (interpreter exit, or tests
    asserting a clean slate)."""
    with _POOL_LOCK:
        thread_pools = list(_THREAD_POOLS.values())
        process_pools = list(_PROCESS_POOLS.values())
        _THREAD_POOLS.clear()
        _PROCESS_POOLS.clear()
    for pool in thread_pools:
        pool.shutdown(wait=False)
    for pool in process_pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_pools)


def partition_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` bounds splitting ``total`` items into at
    most ``parts`` near-equal chunks (same arithmetic as the thread
    path, so thread and process partitions are identical)."""
    parts = max(1, min(parts, total))
    chunk = (total + parts - 1) // parts
    bounds = []
    lo = 0
    while lo < total:
        hi = min(total, lo + chunk)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Shared control block + worker-side budget
# ----------------------------------------------------------------------

class ControlBlock:
    """A tiny writable shared segment coordinating one dispatch:
    ``[cancel flag][rows slot 0]..[rows slot n-1]`` as int64 cells.
    Each worker writes only its own rows slot; any party may set the
    cancel flag.  Views are never cached — :attr:`SharedPlane.data`
    builds a throwaway memoryview per access, so ``close``/``unlink``
    never trip over exported buffers."""

    def __init__(self, plane: SharedPlane, nworkers: int):
        self._plane = plane
        self.nworkers = nworkers

    @classmethod
    def create(cls, nworkers: int) -> "ControlBlock":
        plane = SharedPlane.create(array("q", [0] * (1 + nworkers)),
                                   token=0)
        return cls(plane, nworkers)

    @classmethod
    def attach(cls, name: str, nworkers: int) -> "ControlBlock":
        return cls(SharedPlane.attach(name), nworkers)

    @property
    def name(self) -> str:
        return self._plane.name

    def cancel(self) -> None:
        self._plane.data[0] = 1

    def cancelled(self) -> bool:
        return self._plane.data[0] != 0

    def set_rows(self, slot: int, rows: int) -> None:
        self._plane.data[1 + slot] = rows

    def total_rows(self) -> int:
        data = self._plane.data
        return sum(data[1 + i] for i in range(self.nworkers))

    def close(self) -> None:
        self._plane.close()

    def unlink(self) -> None:
        self._plane.unlink()


class _WorkerTrip(Exception):
    """Internal: a worker-side budget limit tripped (``verdict`` names
    it); converted to a result marker, never crosses the pipe as an
    exception."""

    def __init__(self, verdict: str):
        super().__init__(verdict)
        self.verdict = verdict


class WorkerBudget:
    """The worker half of budget enforcement — same duck type as
    :class:`~repro.oql.budget.QueryBudget` (``CHECK_EVERY``,
    ``check_time``, ``charge_rows``, ``check_level``) so the kernels
    cannot tell them apart.

    Wall-clock runs against the *remaining* deadline the coordinator
    shipped; rows are published to this worker's control-block slot and
    checked against the shipped ``max_rows`` as a **global** sum over
    all slots.  Every check also polls the shared cancel flag, and
    every local trip sets it, so one worker tripping (or the
    coordinator timing out) drains the whole dispatch within one check
    interval."""

    CHECK_EVERY = QueryBudget.CHECK_EVERY

    def __init__(self, control: ControlBlock, slot: int,
                 deadline_ms: Optional[float], max_rows: Optional[int],
                 max_loop_levels: Optional[int]):
        self._control = control
        self._slot = slot
        self._deadline_ms = deadline_ms
        self._max_rows = max_rows
        self._max_loop_levels = max_loop_levels
        self._start = time.perf_counter()
        self.rows = 0

    def _trip(self, verdict: str) -> "_WorkerTrip":
        self._control.cancel()
        return _WorkerTrip(verdict)

    def check_time(self) -> None:
        if self._control.cancelled():
            raise _WorkerTrip("cancelled")
        if self._deadline_ms is not None and \
                (time.perf_counter() - self._start) * 1000.0 > \
                self._deadline_ms:
            raise self._trip("deadline")

    def charge_rows(self, n: int) -> None:
        if not n:
            return
        self.rows += n
        self._control.set_rows(self._slot, self.rows)
        if self._max_rows is not None and \
                self._control.total_rows() > self._max_rows:
            raise self._trip("max_rows")

    def check_level(self, level: int) -> None:
        if self._max_loop_levels is not None and \
                level > self._max_loop_levels:
            raise self._trip("max_loop_levels")


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------

def _attach_plane(ref: Tuple[str, int, int],
                  attached: List[SharedPlane]) -> SharedPlane:
    name, token, _length = ref
    plane = SharedPlane.attach(name, expected_token=token)
    attached.append(plane)
    return plane


def _attach_spec(payload: Dict[str, Any],
                 attached: List[SharedPlane]) -> kernels.StepSpec:
    offsets = _attach_plane(payload["offsets"], attached).data
    neighbors = _attach_plane(payload["neighbors"], attached).data
    tgt_filter = None
    if payload["tgt_filter"] is not None:
        tgt_filter = _attach_plane(payload["tgt_filter"],
                                   attached).as_array()
    return kernels.StepSpec(payload["op"], payload["forward"], offsets,
                            neighbors, payload["tgt_size"], tgt_filter)


def _run_task(task: Dict[str, Any], attached: List[SharedPlane],
              budget: Optional[WorkerBudget]) -> Dict[str, Any]:
    """The actual partition work; isolated in its own frame so every
    memoryview over an attached plane is released before the caller's
    ``finally`` closes the mappings."""
    specs = [_attach_spec(p, attached) for p in task["steps"]]
    if task["kind"] == "chain":
        anchor = task["anchor"]
        if anchor[0] == "range":
            ids: Any = range(anchor[1], anchor[2])
        else:
            plane = _attach_plane(anchor[1], attached)
            ids = plane.data[anchor[2]:anchor[3]]
        cols, stats = kernels.run_steps(specs, ids, budget)
        return {"ok": True, "cols": kernels.columns_to_bytes(cols),
                "rows": len(cols[0]) if cols else 0, "stats": stats}
    ref, lo, hi, width = task["frontier"]
    data = _attach_plane(ref, attached).data
    rows = [tuple(data[i * width:(i + 1) * width].tolist())
            for i in range(lo, hi)]
    kept, stats = kernels.closure_partition(
        rows, specs, task["body"], task["max_level"], task["on_cycle"],
        budget, task["unbounded"])
    lens = array("q", [len(r) for r in kept])
    vals = array("q")
    for row in kept:
        vals.extend(row)
    return {"ok": True, "lens": lens.tobytes(), "vals": vals.tobytes(),
            "rows": len(kept), "stats": stats}


def worker_main(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one partition task inside a pool worker.

    Budget trips, cycle hits and non-termination come back as result
    markers (picklable, and expected); only genuine bugs and stale
    planes propagate as exceptions.  Every attached segment is closed
    before returning — workers never own an unlink."""
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    if task.get("crash"):  # test hook: simulate a hard worker death
        os._exit(3)
    attached: List[SharedPlane] = []
    control: Optional[ControlBlock] = None
    budget: Optional[WorkerBudget] = None
    try:
        if task["control"] is not None:
            name, nworkers, slot = task["control"]
            control = ControlBlock.attach(name, nworkers)
            limits = task["budget"]
            budget = WorkerBudget(control, slot,
                                  limits.get("deadline_ms"),
                                  limits.get("max_rows"),
                                  limits.get("max_loop_levels"))
        try:
            result = _run_task(task, attached, budget)
        except _WorkerTrip as trip:
            result = {"ok": False, "tripped": trip.verdict}
        except kernels.CycleHit as hit:
            result = {"ok": False, "cycle": hit.dense_id}
        except kernels.NonTerminating:
            result = {"ok": False, "nonterminating": True}
        result["rows_charged"] = budget.rows if budget is not None else 0
        result["wall_ms"] = (time.perf_counter() - wall0) * 1000.0
        result["cpu_ms"] = (time.process_time() - cpu0) * 1000.0
        result["pid"] = os.getpid()
        return result
    finally:
        for plane in attached:
            try:
                plane.close()
            except Exception:  # pragma: no cover - exported-view races
                pass
        if control is not None:
            try:
                control.close()
            except Exception:  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------

def _limit_for(budget: QueryBudget, verdict: str):
    if verdict == "deadline":
        return f"{budget.deadline_ms} ms"
    if verdict == "max_rows":
        return budget.max_rows
    return budget.max_loop_levels


class ProcessPartitionExecutor:
    """Coordinator for process-parallel partition execution.

    Owns a :class:`~repro.subdb.planes.PlaneManager` caching the
    adjacency/intern plane exports across queries (re-exported only
    when identity, epoch or version token changes), plus the per-query
    ephemeral planes (anchors, filters, frontiers) and the control
    block, all unlinked in ``finally`` — including after budget trips
    and worker crashes."""

    def __init__(self) -> None:
        self.manager = planes.PlaneManager()
        #: One-shot test hook: the next dispatch sends partition 0 a
        #: ``crash`` task, simulating a worker death mid-query.
        self.inject_crash = False

    def close(self) -> None:
        self.manager.close()

    # -- payload assembly ----------------------------------------------

    def _export_steps(self, steps: Sequence[Dict[str, Any]], handles,
                      ephemerals) -> List[Dict[str, Any]]:
        payloads = []
        for step in steps:
            index = step["index"]
            manifest, entry = self.manager.export(
                step["key"], index, index.plane_arrays(), step["token"])
            handles.append(entry)
            payload = {"op": step["op"], "forward": step["forward"],
                       "offsets": manifest["offsets"],
                       "neighbors": manifest["neighbors"],
                       "tgt_size": step["tgt_size"], "tgt_filter": None}
            filter_plane = step.get("filter_plane")
            if filter_plane is not None:
                # A fully index-derived slot filter: export the probe's
                # candidate ids through the plane cache keyed by the
                # value index (identity + epoch + token), so repeated
                # queries against an unchanged index reattach the same
                # segment instead of shipping a fresh ephemeral per
                # query.  The ids are byte-identical to the ephemeral
                # ``tgt_filter`` they replace.
                fkey, ftoken, ids, findex = filter_plane
                fmani, fentry = self.manager.export(
                    fkey, findex, {"ids": array("q", ids)}, ftoken)
                handles.append(fentry)
                payload["tgt_filter"] = fmani["ids"]
            elif step["tgt_filter"] is not None:
                fmani, fplanes = planes.create_ephemeral(
                    {"filter": step["tgt_filter"]}, token=0)
                ephemerals.extend(fplanes)
                payload["tgt_filter"] = fmani["filter"]
            payloads.append(payload)
        return payloads

    @staticmethod
    def _budget_payload(budget: Optional[QueryBudget], nparts: int):
        if budget is None:
            return None, None
        budget.ensure_started()
        deadline = budget.remaining_ms()
        max_rows = None
        if budget.max_rows is not None:
            max_rows = max(budget.max_rows - budget.rows_charged, 0)
        if deadline is None and max_rows is None and \
                budget.max_loop_levels is None:
            return None, None
        control = ControlBlock.create(nparts)
        return {"deadline_ms": deadline, "max_rows": max_rows,
                "max_loop_levels": budget.max_loop_levels}, control

    # -- dispatch -------------------------------------------------------

    def _dispatch(self, tasks, workers: int,
                  budget: Optional[QueryBudget],
                  control: Optional[ControlBlock]) -> List[Dict[str, Any]]:
        """Submit every task and collect every result, converting a
        dead worker into :class:`WorkerCrashError` (pool discarded so
        the next query gets a fresh one).  The submit loop itself is
        inside the guard: a crashing worker can break the pool while
        later partitions are still being submitted."""
        try:
            pool = process_pool(workers)
            futures = [pool.submit(worker_main, task) for task in tasks]
            return self._collect(futures, budget, control)
        except BrokenExecutor as exc:
            discard_process_pool(workers)
            raise WorkerCrashError(
                "a partition worker process died mid-query; the pool "
                "was discarded and every shared segment unlinked — "
                "re-run the query") from exc

    def _collect(self, futures,
                 budget: Optional[QueryBudget],
                 control: Optional[ControlBlock]) -> List[Dict[str, Any]]:
        results = []
        for fut in futures:
            timeout = None
            if budget is not None and budget.deadline_ms is not None:
                remaining = budget.remaining_ms() or 0.0
                timeout = max(remaining, 0.0) / 1000.0 + 0.1
            try:
                results.append(fut.result(timeout=timeout))
            except FuturesTimeoutError:
                # Parent-side deadline: flip the shared flag so the
                # workers drain at their next check, then wait out
                # their (bounded) wind-down.
                if control is not None:
                    control.cancel()
                results.append(fut.result())
        return results

    def _settle(self, results: Sequence[Dict[str, Any]],
                budget: Optional[QueryBudget]) -> None:
        """Charge the coordinator budget with the workers' row totals,
        then convert any worker-side markers into the coordinator-side
        exceptions the evaluator expects."""
        if budget is not None:
            charged = sum(r.get("rows_charged", 0) for r in results)
            if charged:
                budget.charge_rows(charged)
            budget.check_time()
        verdicts = [r["tripped"] for r in results
                    if not r.get("ok") and "tripped" in r]
        if verdicts:
            real = [v for v in verdicts if v != "cancelled"]
            verdict = real[0] if real else "deadline"
            raise budget._trip(verdict, _limit_for(budget, verdict))
        for r in results:
            if r.get("ok"):
                continue
            if "cycle" in r:
                raise kernels.CycleHit(r["cycle"])
            if r.get("nonterminating"):
                raise kernels.NonTerminating()

    def run_chain(self, steps: Sequence[Dict[str, Any]], anchor,
                  workers: int, budget: Optional[QueryBudget] = None):
        """Execute a plan's hop sequence over ``anchor`` split across
        process workers.

        ``steps`` entries carry ``op``/``forward``/``index`` (the
        :class:`~repro.subdb.adjindex.AdjacencyIndex`), a stable cache
        ``key``, the version ``token``, ``tgt_size`` and an optional
        sorted ``tgt_filter`` array.  ``anchor`` is a ``range`` or a
        sorted id list.  Returns ``(rows, stats_per_partition,
        info_per_partition)`` with rows merged in partition order.
        """
        handles: List[Any] = []
        ephemerals: List[SharedPlane] = []
        control = None
        try:
            payloads = self._export_steps(steps, handles, ephemerals)
            if isinstance(anchor, range):
                total = len(anchor)

                def anchor_ref(lo, hi):
                    return ("range", anchor.start + lo, anchor.start + hi)
            else:
                arr = anchor if isinstance(anchor, array) \
                    else array("q", anchor)
                total = len(arr)
                amani, aplanes = planes.create_ephemeral(
                    {"anchor": arr}, token=0)
                ephemerals.extend(aplanes)

                def anchor_ref(lo, hi):
                    return ("plane", amani["anchor"], lo, hi)

            bounds = partition_bounds(total, workers)
            limits, control = self._budget_payload(budget, len(bounds))
            tasks = []
            for slot, (lo, hi) in enumerate(bounds):
                tasks.append({
                    "kind": "chain", "steps": payloads,
                    "anchor": anchor_ref(lo, hi),
                    "control": (None if control is None else
                                (control.name, len(bounds), slot)),
                    "budget": limits,
                    "crash": self.inject_crash and slot == 0,
                })
            self.inject_crash = False
            results = self._dispatch(tasks, workers, budget, control)
            self._settle(results, budget)
            rows: List[Tuple[int, ...]] = []
            stats = []
            infos = []
            for part, ((lo, hi), res) in enumerate(zip(bounds, results)):
                rows.extend(kernels.rows_from_column_bytes(res["cols"]))
                stats.append(res["stats"])
                infos.append({"partition": part, "anchor_rows": hi - lo,
                              "rows_out": res["rows"],
                              "ms": res["wall_ms"],
                              "cpu_ms": res["cpu_ms"],
                              "pid": res["pid"]})
            return rows, stats, infos
        finally:
            for entry in handles:
                self.manager.release(entry)
            planes.unlink_all(ephemerals)
            if control is not None:
                control.unlink()

    def run_closure(self, body_steps: Sequence[Dict[str, Any]],
                    frontier: Sequence[Tuple[int, ...]], body: int,
                    max_level: int, on_cycle: str, unbounded: bool,
                    workers: int,
                    budget: Optional[QueryBudget] = None):
        """Run the semi-naive closure with the level-1 frontier split
        across process workers (hierarchies rooted at distinct level-1
        rows are independent).  Returns ``(kept_rows,
        stats_per_partition, info_per_partition)``; raises
        :class:`~repro.oql.kernels.CycleHit` /
        :class:`~repro.oql.kernels.NonTerminating` markers for the
        evaluator to translate (it owns the intern tables)."""
        handles: List[Any] = []
        ephemerals: List[SharedPlane] = []
        control = None
        width = len(frontier[0])
        try:
            payloads = self._export_steps(body_steps, handles, ephemerals)
            flat = array("q")
            for row in frontier:
                flat.extend(row)
            fmani, fplanes = planes.create_ephemeral(
                {"frontier": flat}, token=0)
            ephemerals.extend(fplanes)
            bounds = partition_bounds(len(frontier), workers)
            limits, control = self._budget_payload(budget, len(bounds))
            tasks = []
            for slot, (lo, hi) in enumerate(bounds):
                tasks.append({
                    "kind": "closure", "steps": payloads,
                    "frontier": (fmani["frontier"], lo, hi, width),
                    "body": body, "max_level": max_level,
                    "on_cycle": on_cycle, "unbounded": unbounded,
                    "control": (None if control is None else
                                (control.name, len(bounds), slot)),
                    "budget": limits,
                    "crash": self.inject_crash and slot == 0,
                })
            self.inject_crash = False
            results = self._dispatch(tasks, workers, budget, control)
            self._settle(results, budget)
            kept: List[Tuple[int, ...]] = []
            stats = []
            infos = []
            for part, ((lo, hi), res) in enumerate(zip(bounds, results)):
                kept.extend(_unpack_rows(res["lens"], res["vals"]))
                stats.append(res["stats"])
                infos.append({"partition": part, "anchor_rows": hi - lo,
                              "rows_out": res["rows"],
                              "ms": res["wall_ms"],
                              "cpu_ms": res["cpu_ms"],
                              "pid": res["pid"]})
            return kept, stats, infos
        finally:
            for entry in handles:
                self.manager.release(entry)
            planes.unlink_all(ephemerals)
            if control is not None:
                control.unlink()


def _unpack_rows(lens_blob: bytes, vals_blob: bytes) \
        -> List[Tuple[int, ...]]:
    lens = array("q")
    lens.frombytes(lens_blob)
    vals = array("q")
    vals.frombytes(vals_blob)
    rows = []
    pos = 0
    for n in lens:
        rows.append(tuple(vals[pos:pos + n]))
        pos += n
    return rows
