"""Recursive-descent parser for OQL queries and (via the rules package)
deductive rule bodies.

The concrete grammar, in the order the paper presents the clauses::

    query        := 'context' context_expr
                    { 'where' where_list | 'select' select_list }
                    [ operation ]
    context_expr := chain [ '^' ( '*' | NUMBER ) ]
    chain        := element ( ('*' | '!') element )*
    element      := '{' chain '}' | class_term
    class_term   := qualname [ '[' condition ']' ]
    qualname     := IDENT [ ':' IDENT ]
    condition    := or_cond
    or_cond      := and_cond ( 'or' and_cond )*
    and_cond     := not_cond ( 'and' not_cond )*
    not_cond     := 'not' not_cond | primary_cond
    primary_cond := '(' condition ')' | operand cmp operand
    operand      := NUMBER | STRING | 'null' | IDENT
    where_list   := where_cond ( 'and' where_cond )*
    where_cond   := agg_cond | interclass_cmp
    agg_cond     := AGGFUNC [ '(' ] qualname [ '.' IDENT ]
                    'by' qualname [ ')' ] cmp literal
    interclass   := qualified cmp ( qualified | literal )
    qualified    := qualname ( '.' IDENT | '[' IDENT ']' )
    select_list  := select_item ( [','] select_item )*
    select_item  := qualname ( '[' IDENT (',' IDENT)* ']' | '.' IDENT )?
    operation    := 'display' | 'print' | IDENT '(' ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import OQLSyntaxError
from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    Condition,
    ContextExpr,
    Literal,
    LoopSpec,
    NotOp,
    Query,
    SelectItem,
    WhereCond,
)
from repro.oql.lexer import AGG_FUNCS, Token, tokenize
from repro.subdb.refs import ClassRef

_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}


class Parser:
    """A cursor over a token list with the grammar's productions."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Cursor primitives
    # ------------------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, value: Optional[object] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[object] = None
               ) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            want = f"{kind} {value!r}" if value is not None else kind
            raise OQLSyntaxError(
                f"expected {want}, found {token.kind} {token.value!r}",
                line=token.line, column=token.column)
        return self.advance()

    def error(self, message: str) -> OQLSyntaxError:
        token = self.peek()
        return OQLSyntaxError(message, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------

    def qualname(self) -> ClassRef:
        first = self.expect("ident")
        if self.accept("op", ":"):
            second = self.expect("ident")
            return ClassRef.parse(f"{first.value}:{second.value}")
        return ClassRef.parse(str(first.value))

    # ------------------------------------------------------------------
    # Context clause
    # ------------------------------------------------------------------

    def context_expr(self) -> ContextExpr:
        chain = self.chain()
        loop: Optional[LoopSpec] = None
        if self.accept("op", "^"):
            if self.accept("op", "*"):
                loop = LoopSpec(None)
            else:
                count = self.expect("number")
                if not isinstance(count.value, int) or count.value < 1:
                    raise OQLSyntaxError(
                        "loop count must be a positive integer",
                        line=count.line, column=count.column)
                loop = LoopSpec(count.value)
        return ContextExpr(chain, loop)

    def chain(self, braced: bool = False) -> Chain:
        elements: List[Union[ClassTerm, Chain]] = [self.element()]
        ops: List[str] = []
        while self.at("op", "*") or self.at("op", "!"):
            ops.append(str(self.advance().value))
            elements.append(self.element())
        return Chain(tuple(elements), tuple(ops), braced)

    def element(self) -> Union[ClassTerm, Chain]:
        if self.accept("op", "{"):
            inner = self.chain(braced=True)
            self.expect("op", "}")
            return inner
        return self.class_term()

    def class_term(self) -> ClassTerm:
        ref = self.qualname()
        condition: Optional[Condition] = None
        if self.accept("op", "["):
            condition = self.condition()
            self.expect("op", "]")
        return ClassTerm(ref, condition)

    # ------------------------------------------------------------------
    # Conditions (intra-class)
    # ------------------------------------------------------------------

    def condition(self) -> Condition:
        return self._or_cond()

    def _or_cond(self) -> Condition:
        items = [self._and_cond()]
        while self.accept("keyword", "or"):
            items.append(self._and_cond())
        if len(items) == 1:
            return items[0]
        return BoolOp("or", tuple(items))

    def _and_cond(self) -> Condition:
        items = [self._not_cond()]
        while self.accept("keyword", "and"):
            items.append(self._not_cond())
        if len(items) == 1:
            return items[0]
        return BoolOp("and", tuple(items))

    def _not_cond(self) -> Condition:
        if self.accept("keyword", "not"):
            return NotOp(self._not_cond())
        if self.accept("op", "("):
            inner = self.condition()
            self.expect("op", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        left = self._operand()
        op = self._cmp_op()
        right = self._operand()
        return Comparison(left, op, right)

    def _cmp_op(self) -> str:
        token = self.peek()
        if token.kind == "op" and token.value in _CMP_OPS:
            self.advance()
            return str(token.value)
        raise self.error(
            f"expected comparison operator, found {token.value!r}")

    def _operand(self):
        if self.at("number"):
            return Literal(self.advance().value)
        if self.at("string"):
            return Literal(self.advance().value)
        if self.accept("keyword", "null"):
            return Literal(None)
        if self.at("ident"):
            return AttrRef(str(self.advance().value))
        raise self.error(f"expected attribute or literal, "
                         f"found {self.peek().value!r}")

    # ------------------------------------------------------------------
    # Where subclause
    # ------------------------------------------------------------------

    def where_list(self) -> Tuple[WhereCond, ...]:
        conds: List[WhereCond] = [self.where_cond()]
        while self.accept("keyword", "and"):
            conds.append(self.where_cond())
        return tuple(conds)

    def where_cond(self) -> WhereCond:
        token = self.peek()
        if token.kind == "keyword" and token.value in AGG_FUNCS:
            # Lookahead: an aggregation condition is FUNC '(' name 'by'
            # ... — a parenthesized boolean group also starts after a
            # keyword only when the keyword is 'not'.
            return self._agg_cond()
        if self.at("op", "(") or self.at("keyword", "not"):
            return self._where_bool()
        return self._interclass_cmp()

    def _where_bool(self) -> WhereCond:
        """A parenthesized boolean combination of inter-class
        comparisons: ``(A.x = 1 or B.y = 2)``.  Aggregation conditions
        stay at the top level (they group over the whole pattern set)."""
        items = [self._where_bool_and()]
        while self.accept("keyword", "or"):
            items.append(self._where_bool_and())
        if len(items) == 1:
            return items[0]
        return BoolOp("or", tuple(items))

    def _where_bool_and(self) -> WhereCond:
        items = [self._where_bool_not()]
        while self.at("keyword", "and") and not self._next_is_top_level():
            self.advance()
            items.append(self._where_bool_not())
        if len(items) == 1:
            return items[0]
        return BoolOp("and", tuple(items))

    def _next_is_top_level(self) -> bool:
        """Inside a group, 'and' binds locally; at the top level of the
        where list 'and' separates conditions.  Disambiguate by whether
        an aggregation condition follows."""
        nxt = self.peek(1)
        return nxt.kind == "keyword" and nxt.value in AGG_FUNCS

    def _where_bool_not(self) -> WhereCond:
        if self.accept("keyword", "not"):
            return NotOp(self._where_bool_not())
        if self.accept("op", "("):
            inner = self._where_bool()
            self.expect("op", ")")
            return inner
        return self._interclass_cmp()

    def _agg_cond(self) -> AggComparison:
        func = str(self.advance().value)
        parenthesized = bool(self.accept("op", "("))
        target = self.qualname()
        attr: Optional[str] = None
        if self.accept("op", "."):
            attr = str(self.expect("ident").value)
        self.expect("keyword", "by")
        by = self.qualname()
        if parenthesized:
            self.expect("op", ")")
        op = self._cmp_op()
        value = self._literal()
        return AggComparison(func, target, attr, by, op, value)

    def _literal(self) -> Literal:
        if self.at("number") or self.at("string"):
            return Literal(self.advance().value)
        if self.accept("keyword", "null"):
            return Literal(None)
        raise self.error(f"expected literal, found {self.peek().value!r}")

    def _interclass_cmp(self) -> Comparison:
        left = self._qualified_attr()
        op = self._cmp_op()
        if self.at("ident"):
            right = self._qualified_attr()
        else:
            right = self._literal()
        return Comparison(left, op, right)

    def _qualified_attr(self) -> AttrRef:
        ref = self.qualname()
        if self.accept("op", "."):
            attr = str(self.expect("ident").value)
        elif self.accept("op", "["):
            attr = str(self.expect("ident").value)
            self.expect("op", "]")
        else:
            raise self.error(
                "where-subclause attributes must be qualified: "
                "Class.attr or Class[attr]")
        return AttrRef(attr, ref)

    # ------------------------------------------------------------------
    # Select subclause
    # ------------------------------------------------------------------

    _SELECT_STOP = {"display", "print", "where", "select"}

    def select_list(self) -> Tuple[SelectItem, ...]:
        items: List[SelectItem] = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                break
            if token.kind == "keyword" and token.value in self._SELECT_STOP:
                break
            if token.kind != "ident":
                break
            if self.peek(1).kind == "op" and self.peek(1).value == "(":
                break  # a user-operation invocation, not a select item
            items.append(self._select_item())
            self.accept("op", ",")
        if not items:
            raise self.error("empty select subclause")
        return tuple(items)

    def _select_item(self) -> SelectItem:
        first = self.expect("ident")
        qualified = False
        if self.accept("op", ":"):
            second = self.expect("ident")
            ref = ClassRef.parse(f"{first.value}:{second.value}")
            qualified = True
        else:
            ref = ClassRef.parse(str(first.value))
        if self.accept("op", "["):
            attrs = [str(self.expect("ident").value)]
            while self.accept("op", ","):
                attrs.append(str(self.expect("ident").value))
            self.expect("op", "]")
            return SelectItem(ref, tuple(attrs))
        if self.accept("op", "."):
            attr = str(self.expect("ident").value)
            return SelectItem(ref, (attr,))
        if qualified:
            return SelectItem(ref, None)
        # A bare identifier: class or unique attribute — the binder decides
        # (paper, Section 4.3: qualification is only needed when the
        # attribute is not unique among the context classes).
        return SelectItem(None, (str(first.value),))

    # ------------------------------------------------------------------
    # Operation clause & query block
    # ------------------------------------------------------------------

    def operation(self) -> Optional[str]:
        if self.at("keyword", "display") or self.at("keyword", "print"):
            return str(self.advance().value)
        # A user/built-in operation: NAME '(' ')'.  Aggregation-function
        # names are keywords lexically, but `count()` as an operation is
        # unambiguous (an aggregation condition only occurs after
        # 'where').
        if self.peek().kind in ("ident", "keyword") and \
                self.peek(1).kind == "op" and self.peek(1).value == "(":
            name = str(self.advance().value)
            self.expect("op", "(")
            self.expect("op", ")")
            return name
        return None

    def query(self) -> Query:
        self.expect("keyword", "context")
        context = self.context_expr()
        where: Tuple[WhereCond, ...] = ()
        select: Optional[Tuple[SelectItem, ...]] = None
        # The paper writes where before select, but both orders occur in
        # derived literature; accept either, at most once each.
        while True:
            if where == () and self.accept("keyword", "where"):
                where = self.where_list()
                continue
            if select is None and self.accept("keyword", "select"):
                select = self.select_list()
                continue
            break
        operation = self.operation()
        token = self.peek()
        if token.kind != "eof":
            raise OQLSyntaxError(
                f"unexpected trailing input: {token.value!r}",
                line=token.line, column=token.column)
        return Query(context, where, select, operation)


def parse_query(text: str) -> Query:
    """Parse a full OQL query block."""
    return Parser(tokenize(text)).query()


def parse_expression(text: str) -> ContextExpr:
    """Parse a bare association pattern expression."""
    parser = Parser(tokenize(text))
    expr = parser.context_expr()
    token = parser.peek()
    if token.kind != "eof":
        raise OQLSyntaxError(
            f"unexpected trailing input: {token.value!r}",
            line=token.line, column=token.column)
    return expr
