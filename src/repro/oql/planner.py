"""Cost-based join planning for association-chain matching.

The paper delegates pattern matching to "the search engine of the
underlying OO DBMS" (Section 3.2); this module is that search engine's
planner.  A chain ``A * B * C`` admits many *contiguous* join orders
(pick an anchor slot, then repeatedly extend the matched block one slot
to the left or right); which one is cheapest depends on extent sizes,
intra-class-condition selectivities, and per-link fan-out.

:class:`Statistics` collects per-class extent sizes and per-link average
fan-outs from the :class:`~repro.subdb.universe.Universe`.  Each entry
is validated against the class-granular version vector of the classes
it actually reads (the ref's class for an extent size; the source class
plus the link's endpoint classes for a fan-out), so a write to one
class leaves every other class's statistics warm.  Derived-subdatabase
entries fall back to the coarse ``data_version`` token — their contents
carry no per-class versions.

:class:`Planner` turns a flattened chain plus the *actual* filtered
extent sizes into a :class:`JoinPlan` under one of three strategies:

* ``"naive"``  — anchor at the leftmost slot, always extend right (the
  textbook left-to-right join; the ablation floor);
* ``"greedy"`` — anchor at the smallest filtered extent, grow towards
  the smaller adjacent extent (the previous heuristic, kept as an
  ablation mode);
* ``"cost"``   — dynamic programming over all contiguous intervals,
  minimizing the estimated total number of intermediate rows.

The plan records per-step *estimated* rows; the batched executor fills
in *actuals*, giving an EXPLAIN ANALYZE-style artifact through
:class:`~repro.oql.evaluator.EvaluationMetrics` and
:mod:`repro.rules.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.oql import conditions
from repro.subdb.refs import ClassRef
from repro.subdb.universe import EdgeResolution, Universe

#: The recognized planning strategies, in ablation order.
OPTIMIZE_MODES = ("naive", "greedy", "cost")


#: Entry cap for per-entry-validated memo dicts: stale entries are only
#: reaped on probe, so a hard cap bounds the worst-case footprint.
_MEMO_CAP = 4096


def _evict_one(memo: Dict) -> None:
    """Make room in a capped memo by dropping its single oldest entry
    (dicts iterate in insertion order).  Stale entries reap themselves
    on their own next probe; wholesale clearing — the previous policy —
    cooled every warm entry whenever one more distinct key arrived at
    the cap."""
    memo.pop(next(iter(memo)), None)


class Statistics:
    """Extent sizes and link fan-outs, validated entry by entry.

    Each cached number carries the version-vector token of the classes
    it was computed from; an accessor recomputes only when *those*
    classes changed.  Writes to unrelated classes leave the entry warm
    — the previous design cleared everything on any ``data_version``
    bump, so one insert anywhere cooled the whole planner.
    """

    def __init__(self, universe: Universe):
        self.universe = universe
        self._extent_sizes: Dict[ClassRef, Tuple[Any, int]] = {}
        self._fanouts: Dict[Tuple[ClassRef, EdgeResolution],
                            Tuple[Any, float]] = {}

    def _fanout_token(self, source: ClassRef,
                      resolution: EdgeResolution) -> Any:
        """The validity token of one fan-out figure: the version vector
        of every class whose mutation can move it — the source class
        (extent size, the denominator) and the link's endpoint classes
        (every ASSOCIATE/DISSOCIATE on the link stamps both endpoints'
        superclass closures, which contain them)."""
        if resolution.kind == "identity":
            return ()
        if resolution.kind == "base" and source.subdb is None:
            link = resolution.resolved.link
            return self.universe.db.version_vector(
                sorted({source.cls, link.owner, link.target}))
        return (-1, self.universe.data_version)

    def extent_size(self, ref: ClassRef) -> int:
        """The unfiltered extent size of a class reference."""
        token = self.universe.ref_token(ref)
        cached = self._extent_sizes.get(ref)
        if cached is not None and cached[0] == token:
            return cached[1]
        if ref.subdb is None:
            size = self.universe.db.extent_size(ref.cls)
        else:
            size = len(self.universe.extent(ref))
        if len(self._extent_sizes) >= _MEMO_CAP:
            _evict_one(self._extent_sizes)
        self._extent_sizes[ref] = (token, size)
        return size

    def fanout(self, source: ClassRef, resolution: EdgeResolution) -> float:
        """Average number of neighbors per object of ``source``'s extent
        across the resolved edge (the direction is implied by which end
        ``source`` stands at: total link pairs over source extent)."""
        token = self._fanout_token(source, resolution)
        key = (source, resolution)
        cached = self._fanouts.get(key)
        if cached is not None and cached[0] == token:
            return cached[1]
        if resolution.kind == "identity":
            value = 1.0
        else:
            if resolution.kind == "base":
                pairs = self.universe.db.link_count(
                    resolution.resolved.link)
            else:
                subdb = self.universe.get_subdb(resolution.subdb)
                pairs = len(subdb.pairs(resolution.i, resolution.j))
            value = pairs / max(1, self.extent_size(source))
        if len(self._fanouts) >= _MEMO_CAP:
            _evict_one(self._fanouts)
        self._fanouts[key] = (token, value)
        return value

    def condition_selectivity(self, ref: ClassRef,
                              condition) -> Optional[float]:
        """Estimated fraction of ``ref``'s extent an intra-class
        condition keeps, from declared value-index cardinalities.

        Each ``and`` conjunct comparing an own attribute against a
        literal that a declared :class:`~repro.subdb.attrindex.AttrIndex`
        can count contributes its *exact* selectivity (matching rows
        over extent size — the index counts without materializing);
        conjuncts nothing indexed answers contribute no reduction.
        Returns ``None`` when no conjunct was answerable, so callers
        can tell "no information" apart from "keeps everything"."""
        if condition is None or ref.subdb is not None:
            return None
        selectivity: Optional[float] = None
        for conj in conditions.and_conjuncts(condition):
            normalized = conditions.literal_comparison(conj)
            if normalized is None:
                continue
            attr, op, literal = normalized
            index = self.universe.attr_index(ref, attr)
            if index is None:
                continue
            count = index.cardinality(op, literal)
            if count is None:
                continue
            total = len(index.table)
            fraction = (count / total) if total else 0.0
            selectivity = fraction if selectivity is None \
                else selectivity * fraction
        return selectivity

    def filtered_size(self, ref: ClassRef, condition) -> int:
        """The estimated *filtered* extent size of a class reference:
        the unfiltered size scaled by :meth:`condition_selectivity`
        when value indexes answer, else the unfiltered size — this is
        how pre-evaluation planning (``explain``) learns true
        per-condition selectivity without scanning a single entity."""
        size = self.extent_size(ref)
        selectivity = self.condition_selectivity(ref, condition)
        if selectivity is None:
            return size
        return int(round(size * selectivity))


@dataclass
class PlanStep:
    """One join step: extend the matched block by one slot."""

    #: Index of the slot this step adds.
    slot: int
    #: Index into the chain's ops/resolutions arrays.
    edge: int
    #: ``"left"`` or ``"right"`` — which side of the block grows.
    direction: str
    #: The operator crossed (``*`` or ``!``).
    op: str
    #: Estimated rows after this step.
    est_rows: float
    #: Rows actually materialized (filled in by the executor).
    actual_rows: Optional[int] = None
    #: Distinct frontier endpoints looked up (filled in by the executor).
    actual_frontier: Optional[int] = None

    def snapshot(self) -> dict:
        return {
            "slot": self.slot,
            "direction": self.direction,
            "op": self.op,
            "est_rows": round(self.est_rows, 2),
            "actual_rows": self.actual_rows,
            "actual_frontier": self.actual_frontier,
        }


@dataclass
class JoinPlan:
    """A full join order over slots ``start..end`` of one chain."""

    strategy: str
    start: int
    end: int
    anchor: int
    #: Slot names of the *whole* chain (indexable by any slot index).
    slot_names: Tuple[str, ...]
    #: The anchor's filtered extent size (exact — the extent is known).
    est_anchor_rows: int
    steps: List[PlanStep]
    #: Estimated total intermediate rows (the DP objective).
    est_cost: float
    actual_anchor_rows: Optional[int] = None
    #: Per-slot access-path annotation over the whole chain: ``None``
    #: for an unconditioned slot, else ``"index"`` (filter served
    #: entirely by value-index probes), ``"index+scan"`` (probed
    #: prefix + residual per-candidate evaluation), or ``"scan"``.
    #: Filled in by the evaluator; pre-evaluation plans (explain on a
    #: cold query) leave it ``None``.
    access: Optional[Tuple[Optional[str], ...]] = None

    def order(self) -> List[int]:
        """Slot indices in the order they are joined."""
        return [self.anchor] + [step.slot for step in self.steps]

    def _access_tag(self, slot: int) -> str:
        if self.access is None or self.access[slot] is None:
            return ""
        return f" [{self.access[slot]}]"

    def describe(self) -> str:
        lines = [f"join plan [{self.strategy}]: anchor "
                 f"{self.slot_names[self.anchor]}"
                 f"{self._access_tag(self.anchor)} "
                 f"({self.est_anchor_rows} rows), "
                 f"est cost {self.est_cost:.1f}"]
        for step in self.steps:
            arrow = "<-" if step.direction == "left" else "->"
            actual = ("" if step.actual_rows is None
                      else f", actual {step.actual_rows}")
            lines.append(f"  {arrow} {step.op} "
                         f"{self.slot_names[step.slot]}"
                         f"{self._access_tag(step.slot)}: "
                         f"est {step.est_rows:.1f} rows{actual}")
        return "\n".join(lines)

    def snapshot(self) -> dict:
        snap = {
            "strategy": self.strategy,
            "anchor": self.slot_names[self.anchor],
            "order": [self.slot_names[i] for i in self.order()],
            "est_cost": round(self.est_cost, 2),
            "anchor_rows": self.est_anchor_rows,
            "steps": [step.snapshot() for step in self.steps],
        }
        if self.access is not None:
            snap["access"] = {self.slot_names[i]: mode
                              for i, mode in enumerate(self.access)
                              if mode is not None}
        return snap


class Planner:
    """Chooses a contiguous join order for a (sub)range of a chain."""

    def __init__(self, universe: Universe):
        self.universe = universe
        self.statistics = Statistics(universe)
        # Chosen orders memoized per (strategy, range, refs, ops,
        # filtered sizes), each entry validated against the version
        # vector of the classes its fan-out estimates read — repeated
        # evaluations of the same query skip the DP, and writes to
        # unrelated classes leave the memo warm.
        self._cache: Dict[tuple,
                          Tuple[Any, int, List[PlanStep], float]] = {}

    def _plan_token(self, refs: Sequence[ClassRef],
                    resolutions: Sequence[EdgeResolution],
                    start: int, end: int) -> Any:
        """Validity token of a memoized order: the filtered sizes are
        part of the key, so what remains version-sensitive is the
        fan-out estimates — the slot classes plus every crossed link's
        endpoint classes.  Any derived slot or edge falls back to the
        coarse ``data_version`` token."""
        classes = set()
        for i in range(start, end + 1):
            ref = refs[i]
            if ref.subdb is not None:
                return (-1, self.universe.data_version)
            classes.add(ref.cls)
        for edge in range(start, end):
            resolution = resolutions[edge]
            if resolution.kind == "base":
                link = resolution.resolved.link
                classes.add(link.owner)
                classes.add(link.target)
            elif resolution.kind == "subdb":
                return (-1, self.universe.data_version)
        return self.universe.db.version_vector(sorted(classes))

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def _step_selectivity(self, refs: Sequence[ClassRef],
                          ops: Sequence[str],
                          resolutions: Sequence[EdgeResolution],
                          sizes: Sequence[int],
                          edge: int, direction: str) -> float:
        """Estimated candidate rows per input row when crossing ``edge``
        towards ``direction``: link fan-out from the source slot, scaled
        by the target's filter selectivity (filtered / full extent)."""
        if direction == "right":
            source, target = edge, edge + 1
        else:
            source, target = edge + 1, edge
        fan = self.statistics.fanout(refs[source], resolutions[edge])
        full = self.statistics.extent_size(refs[target])
        ratio = (sizes[target] / full) if full else 0.0
        if ops[edge] == "*":
            return fan * ratio
        # "!" keeps the complement of the neighbor set within the
        # (filtered) target extent.
        return max(float(sizes[target]) - fan * ratio, 0.0)

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def plan(self, refs: Sequence[ClassRef], ops: Sequence[str],
             resolutions: Sequence[EdgeResolution],
             sizes: Sequence[int], start: int, end: int,
             strategy: str = "cost") -> JoinPlan:
        """Plan the join over slots ``start..end``.

        ``sizes`` are the *filtered* extent sizes per slot of the whole
        chain (the evaluator has already applied intra-class conditions,
        so the anchor estimate is exact and filter selectivities are
        folded into every step estimate).
        """
        if strategy not in OPTIMIZE_MODES:
            raise ValueError(f"unknown planning strategy {strategy!r} "
                             f"(expected one of {OPTIMIZE_MODES})")
        tracer = obs.TRACER
        span = tracer.start("plan", strategy=strategy, start=start,
                            end=end) if tracer is not None else None
        try:
            slot_names = tuple(ref.slot for ref in refs)
            token = self._plan_token(refs, resolutions, start, end)
            key = (strategy, start, end, tuple(refs), tuple(ops),
                   tuple(sizes))
            cached = self._cache.get(key)
            if cached is not None and cached[0] != token:
                cached = None
            if cached is not None:
                _, anchor, steps, cost = cached
            elif strategy == "cost" and end > start:
                anchor, steps, cost = self._order_cost(
                    refs, ops, resolutions, sizes, start, end)
            elif strategy == "greedy" and end > start:
                anchor, steps, cost = self._order_greedy(
                    refs, ops, resolutions, sizes, start, end)
            else:
                anchor, steps, cost = self._order_naive(
                    refs, ops, resolutions, sizes, start, end)
            if len(self._cache) >= _MEMO_CAP:
                _evict_one(self._cache)
            self._cache[key] = (token, anchor, steps, cost)
            if span is not None:
                span.set("cached", cached is not None)
                span.set("anchor", slot_names[anchor])
                span.set("est_cost", round(cost, 2))
                if strategy == "cost" and end > start:
                    # Size of the contiguous-range DP the cost strategy
                    # explores (each state costs one candidate plan).
                    width = end - start + 1
                    span.add("candidates", width * (width + 1) // 2)
                else:
                    span.add("candidates", 1)
        finally:
            if span is not None:
                tracer.finish(span)
        # The executor mutates steps with actuals: hand out copies.
        fresh = [PlanStep(slot=s.slot, edge=s.edge, direction=s.direction,
                          op=s.op, est_rows=s.est_rows) for s in steps]
        return JoinPlan(strategy=strategy, start=start, end=end,
                        anchor=anchor, slot_names=slot_names,
                        est_anchor_rows=sizes[anchor], steps=fresh,
                        est_cost=cost)

    def _order_naive(self, refs, ops, resolutions, sizes, start, end):
        """Left-to-right: anchor at ``start``, extend right each hop."""
        est = float(sizes[start])
        cost = est
        steps: List[PlanStep] = []
        for edge in range(start, end):
            est *= self._step_selectivity(refs, ops, resolutions, sizes,
                                          edge, "right")
            cost += est
            steps.append(PlanStep(slot=edge + 1, edge=edge,
                                  direction="right", op=ops[edge],
                                  est_rows=est))
        return start, steps, cost

    def _order_greedy(self, refs, ops, resolutions, sizes, start, end):
        """The previous heuristic: anchor at the smallest filtered
        extent, grow towards the smaller adjacent extent."""
        anchor = min(range(start, end + 1), key=lambda i: sizes[i])
        lo = hi = anchor
        est = float(sizes[anchor])
        cost = est
        steps: List[PlanStep] = []
        while lo > start or hi < end:
            grow_left = lo > start and (
                hi == end or sizes[lo - 1] <= sizes[hi + 1])
            if grow_left:
                est *= self._step_selectivity(refs, ops, resolutions,
                                              sizes, lo - 1, "left")
                steps.append(PlanStep(slot=lo - 1, edge=lo - 1,
                                      direction="left", op=ops[lo - 1],
                                      est_rows=est))
                lo -= 1
            else:
                est *= self._step_selectivity(refs, ops, resolutions,
                                              sizes, hi, "right")
                steps.append(PlanStep(slot=hi + 1, edge=hi,
                                      direction="right", op=ops[hi],
                                      est_rows=est))
                hi += 1
            cost += est
        return anchor, steps, cost

    def _order_cost(self, refs, ops, resolutions, sizes, start, end):
        """Interval dynamic programming over contiguous blocks.

        ``best[(lo, hi)]`` holds the cheapest way to have matched the
        block ``lo..hi``: (estimated total intermediate rows, estimated
        rows of the block, anchor, steps).  A block extends from its
        left or right sub-block, so the optimum over all contiguous
        join orders is found in O(n²) states.
        """
        best: Dict[Tuple[int, int],
                   Tuple[float, float, int, List[PlanStep]]] = {}
        for i in range(start, end + 1):
            size = float(sizes[i])
            best[(i, i)] = (size, size, i, [])
        for length in range(1, end - start + 1):
            for lo in range(start, end - length + 1):
                hi = lo + length
                cost_r, rows_r, anchor_r, steps_r = best[(lo + 1, hi)]
                sel_l = self._step_selectivity(refs, ops, resolutions,
                                               sizes, lo, "left")
                grown_l = rows_r * sel_l
                left = (cost_r + grown_l, grown_l, anchor_r,
                        steps_r + [PlanStep(slot=lo, edge=lo,
                                            direction="left", op=ops[lo],
                                            est_rows=grown_l)])
                cost_l, rows_l, anchor_l, steps_l = best[(lo, hi - 1)]
                sel_r = self._step_selectivity(refs, ops, resolutions,
                                               sizes, hi - 1, "right")
                grown_r = rows_l * sel_r
                right = (cost_l + grown_r, grown_r, anchor_l,
                         steps_l + [PlanStep(slot=hi, edge=hi - 1,
                                             direction="right",
                                             op=ops[hi - 1],
                                             est_rows=grown_r)])
                best[(lo, hi)] = left if left[0] <= right[0] else right
        cost, _, anchor, steps = best[(start, end)]
        return anchor, steps, cost
