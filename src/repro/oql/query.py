"""The query-processing façade.

:class:`QueryProcessor` ties the pieces together: parse a query block,
evaluate its Context clause (and Where subclause) into a subdatabase, bind
the Select subclause, and perform the operation.  It is the object most
applications use directly; the deductive rule engine wraps one and routes
queries through its control strategy first (backward chaining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.oql.ast import Query
from repro.oql.budget import QueryBudget
from repro.oql.evaluator import EvaluationMetrics, PatternEvaluator
from repro.oql.operations import OperationRegistry, Table, build_table
from repro.oql.parser import parse_query
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import Universe


@dataclass
class QueryResult:
    """Everything a query produced.

    ``subdatabase`` is always present — the Context subdatabase after the
    Where subclause.  ``table`` is present when the query carried a
    Display/Print operation or a Select subclause.  ``output`` is the
    rendered table for Display/Print, and ``op_result`` the return value
    of a user-defined operation.
    """

    query: Query
    subdatabase: Subdatabase
    table: Optional[Table] = None
    output: Optional[str] = None
    op_result: Any = None
    #: Instrumentation of the context-clause evaluation (EXPLAIN
    #: ANALYZE-style counters).
    metrics: Optional[EvaluationMetrics] = None

    def render(self) -> str:
        """The displayable form (table if any, else the subdatabase)."""
        if self.output is not None:
            return self.output
        if self.table is not None:
            return self.table.render()
        return self.subdatabase.describe()


class QueryProcessor:
    """Parses and executes OQL query blocks against a universe."""

    def __init__(self, universe: Universe, on_cycle: str = "error",
                 operations: Optional[OperationRegistry] = None,
                 compact: bool = True, workers: int = 1,
                 worker_mode: str = "thread",
                 min_parallel_rows: int = 256,
                 cache_bytes: int = 0,
                 auto_index_min_rows: int = 0):
        self.universe = universe
        self.evaluator = PatternEvaluator(
            universe, on_cycle=on_cycle, compact=compact, workers=workers,
            worker_mode=worker_mode, min_parallel_rows=min_parallel_rows,
            cache_bytes=cache_bytes,
            auto_index_min_rows=auto_index_min_rows)
        if operations is None:
            from repro.oql.builtins import register_builtin_operations
            operations = register_builtin_operations(OperationRegistry())
        self.operations = operations
        self._result_counter = 0

    def close(self) -> None:
        """Release the evaluator's shared-memory planes (idempotent)."""
        self.evaluator.close()

    def _next_name(self) -> str:
        self._result_counter += 1
        return f"query_result_{self._result_counter}"

    def execute(self, query: Union[str, Query],
                name: Optional[str] = None,
                budget: Optional[QueryBudget] = None) -> QueryResult:
        """Run one query block and return its :class:`QueryResult`.

        ``budget`` bounds the context-clause evaluation; a trip raises
        :class:`~repro.oql.budget.BudgetExceeded` with partial metrics
        attached.
        """
        if isinstance(query, str):
            query = parse_query(query)
        subdb = self.evaluator.evaluate(query.context, query.where,
                                        name or self._next_name(),
                                        budget=budget)
        result = QueryResult(query=query, subdatabase=subdb,
                             metrics=self.evaluator.last_metrics)
        needs_table = query.select is not None or \
            query.operation in ("display", "print")
        if needs_table:
            result.table = build_table(self.universe, subdb, query.select)
        if query.operation in ("display", "print"):
            result.output = result.table.render()
        elif query.operation is not None:
            fn = self.operations.get(query.operation)
            if result.table is None:
                result.table = build_table(self.universe, subdb,
                                           query.select)
            result.op_result = fn(self.universe, subdb, result.table)
        return result
