"""Live query subscriptions over the update-event stream.

A :class:`SubscriptionManager` registers parsed read-only queries
against the :class:`~repro.model.database.Database` listener path (the
same write-lock-held hook the rule engine's forward pass uses) and
turns each relevant mutation into ordered ``+/-`` row deltas:

* **Snapshot-consistent initial result.**  ``subscribe()`` evaluates
  the query and registers the listener under one ``write_locked()``
  section, so no event can fall between the initial rows and the first
  delta.  The initial result is ``seq 0`` and is stamped with the PR 5
  class-granular version vector over the query's dependency classes.
* **Delta computation.**  Queries inside the incrementally
  maintainable fragment reuse the rule engine's
  :class:`~repro.rules.incremental.IncrementalRule` (time proportional
  to the change); everything else — loops, braces, aggregation
  conditions, derived references — falls back to re-evaluate + diff on
  the writer thread, which still yields exact row deltas.
* **Spurious-wakeup suppression.**  Each subscription keeps the
  version vector over its dependency classes (derived references are
  resolved to their transitive base classes through the rule graph, as
  in :mod:`repro.oql.cache`); an event that leaves that vector
  untouched is skipped without evaluating anything.
* **Sequencing.**  Deltas carry a strictly increasing per-subscription
  ``seq`` plus the vector/version they bring the subscriber up to;
  folding ``initial ⊕ deltas`` in sequence order reproduces a scratch
  re-evaluation after every event (the differential tier asserts
  byte-identical canonical rows).
* **Backpressure.**  Each delivered delta is computed under a fresh
  :class:`~repro.oql.budget.QueryBudget` built from the subscription's
  limits; a trip marks the subscription stale and the next relevant
  event (or an explicit :meth:`SubscriptionManager.resync`) recovers
  with a full budgeted RESYNC.  The per-subscription outbox is
  bounded: on overflow the backlog is dropped and replaced by a single
  RESYNC frame carrying the complete current row set, so a slow
  consumer degrades to eventual consistency instead of unbounded
  memory.

Rows on the wire are canonical: tuples of OID integer values (``None``
for unbound loop slots), sorted with ``None`` first.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro import obs
from repro.errors import OQLSemanticError, ReproError
from repro.model.database import UpdateEvent
from repro.oql.ast import Query
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.oql.cache import fingerprint
from repro.oql.parser import parse_query
from repro.rules.incremental import IncrementalRule, NotIncremental
from repro.rules.rule import DeductiveRule

#: A canonical result row: the OID integer value per context slot
#: (``None`` for slots a loop query leaves unbound).
Row = Tuple[Optional[int], ...]


def _row_key(row: Row) -> Tuple[int, ...]:
    return tuple(-1 if v is None else v for v in row)


def canonical_rows(rows: Iterable[Row]) -> Tuple[Row, ...]:
    """Deterministic wire order: sorted, ``None`` before any OID."""
    return tuple(sorted(rows, key=_row_key))


@dataclass(frozen=True)
class SubscriptionDelta:
    """One ordered update frame of a subscription's result stream.

    ``kind`` is ``"snapshot"`` (the initial result, always ``seq 0``),
    ``"delta"`` (apply ``added``/``removed`` to the folded state),
    ``"resync"`` (discard the folded state and replace it with
    ``added`` — emitted after outbox overflow or budget-trip
    recovery), or ``"closed"`` (terminal: the query became
    unanswerable, e.g. a rule it read was removed; ``error`` carries
    the reason and no further frames follow).  ``seq`` is strictly
    increasing per subscription; ``vector``/``version`` stamp the
    database state the frame brings the subscriber up to.
    """

    seq: int
    kind: str
    version: int
    vector: Tuple[int, ...]
    added: Tuple[Row, ...]
    removed: Tuple[Row, ...]
    error: Optional[str] = None


class Subscription:
    """One live query: maintained row set, bounded outbox, counters.

    The row set and vector are written only on the mutator's thread
    (under the database write lock); the outbox is shared with
    consumer threads and guarded by its own lock — :meth:`poll` is
    safe from anywhere.
    """

    def __init__(self, sub_id: int, text: str, query: Query,
                 rule: DeductiveRule,
                 classes: Optional[Tuple[str, ...]],
                 has_derived: bool, max_pending: int,
                 budget_limits: Optional[Dict[str, Any]]):
        self.id = sub_id
        self.text = text
        self.query = query
        self.rule = rule
        #: Dependency classes the version vector ranges over; ``None``
        #: means unresolvable (wake on every event).
        self.classes = classes
        self.has_derived = has_derived
        self.fingerprint = fingerprint(query.context, query.where)
        self.max_pending = max_pending
        self.budget_limits = budget_limits
        self.rows: Set[Row] = set()
        self.vector: Tuple[int, ...] = ()
        self.version = 0
        self.seq = 0
        self.active = True
        self.incremental = False
        #: Set after a budget trip: the row set is unknown and the next
        #: wakeup recovers with a full RESYNC.
        self.stale = False
        self.initial: Optional[SubscriptionDelta] = None
        self.counters: Dict[str, int] = {
            "events_seen": 0, "skipped_unrelated": 0, "wakeups": 0,
            "deltas": 0, "resyncs": 0, "overflows": 0,
            "budget_trips": 0, "empty_deltas": 0,
        }
        self.on_ready: Optional[Callable[["Subscription"], None]] = None
        self._maintainer: Optional[IncrementalRule] = None
        self._outbox: Deque[SubscriptionDelta] = deque()
        self._lock = threading.Lock()

    def poll(self) -> List[SubscriptionDelta]:
        """Drain every pending delta, oldest first (thread-safe)."""
        with self._lock:
            out = list(self._outbox)
            self._outbox.clear()
        return out

    def pending(self) -> int:
        with self._lock:
            return len(self._outbox)


class SubscriptionManager:
    """Registers live queries against a database's update-event stream.

    The manager attaches a single database listener while at least one
    subscription is active and detaches it when the last one goes —
    an idle manager leaves no trace on the database (asserted by the
    service soak's leak check).  It also listens for rule-base changes:
    a subscription reading derived subdatabases is re-analyzed and
    resynced when rules are added or removed, since a definition change
    moves no version vector.

    Lock order is always database write lock → manager lock; the
    ``on_ready`` callback fires outside both the manager lock and the
    subscription's outbox lock (but on the mutator's thread, under the
    database write lock — it must schedule work, never block).
    """

    def __init__(self, engine, *, max_pending: int = 256):
        self.engine = engine
        self.db = engine.db
        self.universe = engine.universe
        self.default_max_pending = max_pending
        self.counters: Dict[str, int] = {
            "subscribed": 0, "unsubscribed": 0, "events": 0,
            "deltas": 0, "resyncs": 0,
        }
        self._subs: Dict[int, Subscription] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def subscribe(self, text: Union[str, Query], *,
                  max_pending: Optional[int] = None,
                  budget_limits: Optional[Dict[str, Any]] = None,
                  on_ready: Optional[Callable[[Subscription], None]]
                  = None) -> Subscription:
        """Register a live query and return its subscription with the
        snapshot-consistent initial result in ``.initial``.

        The initial evaluation and the listener registration happen
        under one write-locked section: every event after the snapshot
        is delivered as a delta, every event before it is folded in.
        """
        query = parse_query(text) if isinstance(text, str) else text
        if query.operation is not None:
            raise OQLSemanticError(
                "subscriptions take read-only queries "
                "(no operation subclause)")
        sub_id = next(self._ids)
        rule = DeductiveRule(target=f"_subscription_{sub_id}",
                             context=query.context, where=query.where,
                             targets=(), text=str(query))
        classes, has_derived = self._analyze(rule)
        sub = Subscription(
            sub_id, text if isinstance(text, str) else str(query),
            query, rule, classes, has_derived,
            max_pending if max_pending is not None
            else self.default_max_pending, budget_limits)
        sub.on_ready = on_ready
        try:
            maintainer: Optional[IncrementalRule] = IncrementalRule(
                rule, self.universe, evaluator=self.engine.evaluator)
        except NotIncremental:
            maintainer = None
        budget = self._fresh_budget(sub)
        with self.db.write_locked():
            if maintainer is not None:
                maintainer._budget = budget
                try:
                    maintainer.initialize()
                finally:
                    maintainer._budget = None
                sub.rows = {self._canon(row) for row in maintainer.rows}
                sub.incremental = True
                sub._maintainer = maintainer
            else:
                sub.rows = self._scratch_rows(sub, budget)
            sub.vector = self._vector(sub)
            sub.version = self.db.version
            sub.initial = SubscriptionDelta(
                seq=0, kind="snapshot", version=sub.version,
                vector=sub.vector, added=canonical_rows(sub.rows),
                removed=())
            with self._lock:
                self._subs[sub.id] = sub
                self._attach_locked()
        self.counters["subscribed"] += 1
        return sub

    def unsubscribe(self, sub_id: int) -> bool:
        """Deactivate and forget a subscription; detaches the database
        listener when it was the last one.  Idempotent."""
        with self.db.write_locked():
            with self._lock:
                sub = self._subs.pop(sub_id, None)
                if sub is None:
                    return False
                sub.active = False
                if not self._subs:
                    self._detach_locked()
        self.counters["unsubscribed"] += 1
        return True

    def close(self) -> None:
        """Unsubscribe everything (service shutdown)."""
        with self._lock:
            ids = list(self._subs)
        for sub_id in ids:
            self.unsubscribe(sub_id)

    def resync(self, sub_id: int) -> bool:
        """Force a full budgeted re-evaluation and emit a RESYNC frame
        — the recovery path after a budget trip when no further write
        arrives to trigger it."""
        with self.db.write_locked():
            with self._lock:
                sub = self._subs.get(sub_id)
            if sub is None or not sub.active:
                return False
            try:
                self._resync_locked(sub)
            except BudgetExceeded:
                sub.counters["budget_trips"] += 1
                sub.stale = True
            except ReproError as exc:
                self._close_with_error(sub, exc)
        return True

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def subscriptions(self) -> List[Subscription]:
        with self._lock:
            return list(self._subs.values())

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _analyze(self, rule: DeductiveRule
                 ) -> Tuple[Optional[Tuple[str, ...]], bool]:
        """The classes whose version vector covers the query's inputs
        (derived references resolved transitively through the rule
        graph), or ``None`` when unresolvable — then every event wakes
        the subscription."""
        classes: Set[str] = set()
        has_derived = False
        for ref in rule.context_refs():
            if ref.subdb is None:
                classes.add(ref.cls)
                continue
            has_derived = True
            base = self.engine._target_base_classes(ref.subdb)
            if base is None:
                return None, True
            classes.update(base)
        return tuple(sorted(classes)), has_derived

    def _vector(self, sub: Subscription) -> Tuple[int, ...]:
        if sub.classes is None:
            return (self.db.schema_version, self.db.version)
        return self.db.version_vector(sub.classes)

    def _fresh_budget(self, sub: Subscription) -> Optional[QueryBudget]:
        if not sub.budget_limits:
            return None
        return QueryBudget.from_limits(sub.budget_limits)

    @staticmethod
    def _canon(row) -> Row:
        return tuple(None if v is None else v.value for v in row)

    def _scratch_rows(self, sub: Subscription,
                      budget: Optional[QueryBudget]) -> Set[Row]:
        source = self.engine.evaluator.evaluate(
            sub.query.context, sub.query.where,
            name=f"_subscribe_{sub.id}", budget=budget)
        return {self._canon(p.values) for p in source.patterns}

    # ------------------------------------------------------------------
    # Event path (mutator thread, write lock held)
    # ------------------------------------------------------------------

    def _on_event(self, event: UpdateEvent) -> None:
        self.counters["events"] += 1
        with self._lock:
            subs = list(self._subs.values())
        for sub in subs:
            if not sub.active:
                continue
            sub.counters["events_seen"] += 1
            vector = self._vector(sub)
            if vector == sub.vector:
                sub.counters["skipped_unrelated"] += 1
                continue
            self._refresh(sub, event, vector)

    def _refresh(self, sub: Subscription, event: UpdateEvent,
                 vector: Tuple[int, ...]) -> None:
        tracer = obs.TRACER
        span = tracer.start("subscription-delta", sub=sub.id,
                            kind=event.kind.name) \
            if tracer is not None else None
        budget = self._fresh_budget(sub)
        try:
            sub.counters["wakeups"] += 1
            if sub.stale:
                self._resync_locked(sub, budget=budget)
                if span is not None:
                    span.set("resync", True)
                return
            maintainer = sub._maintainer
            if maintainer is not None:
                maintainer.on_event(event, budget=budget)
                new_rows = {self._canon(row) for row in maintainer.rows}
            else:
                new_rows = self._scratch_rows(sub, budget)
            added, removed = self._emit_delta(sub, new_rows, vector)
            if span is not None:
                span.set("added", added)
                span.set("removed", removed)
        except BudgetExceeded:
            # The row set may be mid-delta: discard it and recover
            # with a full RESYNC at the next relevant event (the
            # vector is left stale so that event is not skipped).
            sub.counters["budget_trips"] += 1
            sub.stale = True
            if sub._maintainer is not None:
                sub._maintainer.invalidate()
            if span is not None:
                span.set("budget_trip", True)
        except ReproError as exc:
            # The query became unanswerable (e.g. a schema change):
            # close the subscription with a terminal frame.
            self._close_with_error(sub, exc)
            if span is not None:
                span.set("closed", True)
        finally:
            if span is not None:
                tracer.finish(span)

    def _emit_delta(self, sub: Subscription, new_rows: Set[Row],
                    vector: Tuple[int, ...]) -> Tuple[int, int]:
        added = canonical_rows(new_rows - sub.rows)
        removed = canonical_rows(sub.rows - new_rows)
        sub.rows = new_rows
        sub.vector = vector
        sub.version = self.db.version
        if not added and not removed:
            # A relevant write that left the result unchanged (e.g. a
            # re-link of an existing pair): advance silently.
            sub.counters["empty_deltas"] += 1
            return 0, 0
        self._enqueue(sub, "delta", added, removed)
        return len(added), len(removed)

    def _resync_locked(self, sub: Subscription,
                       budget: Optional[QueryBudget] = None) -> None:
        """Full re-evaluation + RESYNC frame.  Caller holds the write
        lock.  Re-analyzes dependency classes first (the rule base may
        have changed for derived references)."""
        if budget is None:
            budget = self._fresh_budget(sub)
        if sub.has_derived:
            sub.classes, _ = self._analyze(sub.rule)
        if sub._maintainer is not None:
            sub._maintainer.invalidate()
        sub.rows = self._scratch_rows(sub, budget)
        sub.vector = self._vector(sub)
        sub.version = self.db.version
        sub.stale = False
        self._enqueue(sub, "resync", canonical_rows(sub.rows), ())

    def _enqueue(self, sub: Subscription, kind: str,
                 added: Tuple[Row, ...], removed: Tuple[Row, ...],
                 error: Optional[str] = None) -> None:
        with sub._lock:
            if len(sub._outbox) >= sub.max_pending:
                # Slow consumer: drop the backlog and degrade to one
                # RESYNC frame carrying the complete current row set
                # (a terminal "closed" frame replaces the backlog
                # as-is).
                sub._outbox.clear()
                sub.counters["overflows"] += 1
                if kind != "closed":
                    kind, added, removed = \
                        "resync", canonical_rows(sub.rows), ()
            sub.seq += 1
            sub._outbox.append(SubscriptionDelta(
                seq=sub.seq, kind=kind, version=sub.version,
                vector=sub.vector, added=tuple(added),
                removed=tuple(removed), error=error))
        if kind != "closed":
            key = "resyncs" if kind == "resync" else "deltas"
            sub.counters[key] += 1
            self.counters[key] += 1
        ready = sub.on_ready
        if ready is not None:
            ready(sub)

    def _close_with_error(self, sub: Subscription,
                          exc: Exception) -> None:
        """Terminal close (caller holds the write lock): deactivate,
        emit one ``closed`` frame, and forget the subscription."""
        sub.active = False
        self._enqueue(sub, "closed", (), (),
                      error=f"{type(exc).__name__}: {exc}")
        with self._lock:
            self._subs.pop(sub.id, None)
            if not self._subs:
                self._detach_locked()
        self.counters["unsubscribed"] += 1

    # ------------------------------------------------------------------
    # Rule-base changes (definitions move no version vector)
    # ------------------------------------------------------------------

    def _on_rule_event(self, action, rule, mode) -> None:
        with self._lock:
            affected = [s for s in self._subs.values()
                        if s.has_derived and s.active]
        for sub in affected:
            self.resync(sub.id)

    # ------------------------------------------------------------------
    # Listener attachment (caller holds manager lock)
    # ------------------------------------------------------------------

    def _attach_locked(self) -> None:
        if not self._attached:
            self.db.add_listener(self._on_event)
            self.engine.add_rule_listener(self._on_rule_event)
            self._attached = True

    def _detach_locked(self) -> None:
        if self._attached:
            self.db.remove_listener(self._on_event)
            self.engine.remove_rule_listener(self._on_rule_event)
            self._attached = False
