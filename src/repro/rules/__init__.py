"""The deductive rule-based language (the paper's primary contribution).

A rule has an If-Then structure (Section 4.2)::

    if context <association pattern expression>
       [where <conditions>]
    then <subdatabase-id> (Class1 [attr, ...], Class2, ...)

The If clause identifies the extensional patterns satisfying the
association pattern expression and the Where subclause; the Then clause
derives new patterns of object associations among the listed target
classes into the named subdatabase.  Each target class is linked to its
source class by an *induced generalization association*, and target
classes that were only indirectly connected get a *new direct derived
association* (Figure 4.3).  Because the derived subdatabase is expressed
in the same OO constructs as the base data, it can be read by further
rules — the closure property.

:class:`RuleEngine` manages a rule base, its dependency graph, backward
and forward chaining, and the result-oriented control strategy of
Section 6.
"""

from repro.rules.rule import DeductiveRule, TargetSpec, parse_rule
from repro.rules.derivation import apply_rule, derive_target
from repro.rules.chaining import topological_order
from repro.rules.control import (
    EvaluationMode,
    IncrementalResultController,
    ResultOrientedController,
    RuleChainingMode,
    RuleOrientedController,
)
from repro.rules.engine import EngineStats, RuleEngine
from repro.rules.explain import Explanation, explain
from repro.rules.incremental import IncrementalRule, NotIncremental
from repro.rules.provenance import Support, Why, explain_pattern

__all__ = [
    "DeductiveRule",
    "TargetSpec",
    "parse_rule",
    "apply_rule",
    "derive_target",
    "topological_order",
    "EvaluationMode",
    "RuleChainingMode",
    "ResultOrientedController",
    "RuleOrientedController",
    "RuleEngine",
    "EngineStats",
    "Explanation",
    "explain",
    "IncrementalRule",
    "NotIncremental",
    "IncrementalResultController",
    "Why",
    "Support",
    "explain_pattern",
]
