"""Rule dependency graphs and chaining order.

The two control strategies of Section 6 both need the same structural
facts about the rule base:

* the **dependency graph** — which derived subdatabases each target reads
  (rule R4 reading ``Suggest_offer`` makes May_teach depend on
  Suggest_offer);
* a **topological order** of that graph, for forward passes (sources
  before dependents);
* the **downstream closure** of a set of targets, for invalidation.

The language expresses transitive closure by looping *inside* one rule
(Section 5), not by recursion between rules, so a cyclic dependency graph
is rejected with :class:`~repro.errors.CyclicRuleError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.errors import CyclicRuleError


def topological_order(graph: Dict[str, Set[str]]) -> List[str]:
    """Order targets so every target follows all of its sources.

    ``graph`` maps each target name to the set of target names it reads
    (source names that are not targets themselves — i.e. base classes —
    must not appear).  Ties break alphabetically so the order is
    deterministic.
    """
    pending = {name: {s for s in sources if s in graph}
               for name, sources in graph.items()}
    order: List[str] = []
    satisfied: Set[str] = set()
    while pending:
        ready = sorted(name for name, sources in pending.items()
                       if sources <= satisfied)
        if not ready:
            cycle = sorted(pending)
            raise CyclicRuleError(
                f"the rule dependency graph contains a cycle among "
                f"{cycle}; the language expresses transitive closure by "
                f"looping within a rule, not by recursion between rules")
        for name in ready:
            order.append(name)
            satisfied.add(name)
            del pending[name]
    return order


def downstream_closure(graph: Dict[str, Set[str]],
                       seeds: Iterable[str]) -> Set[str]:
    """Every target that (transitively) reads one of ``seeds`` —
    including the seeds themselves when they are targets."""
    dependents: Dict[str, Set[str]] = {name: set() for name in graph}
    for name, sources in graph.items():
        for source in sources:
            if source in dependents:
                dependents[source].add(name)
    out: Set[str] = set()
    frontier = [s for s in seeds if s in graph]
    while frontier:
        name = frontier.pop()
        if name in out:
            continue
        out.add(name)
        frontier.extend(dependents.get(name, ()))
    return out


def upstream_closure(graph: Dict[str, Set[str]],
                     seeds: Iterable[str]) -> Set[str]:
    """Every target one of ``seeds`` (transitively) reads — including the
    seeds themselves when they are targets.  This is the set backward
    chaining must derive before a query on the seeds can run."""
    out: Set[str] = set()
    frontier = [s for s in seeds if s in graph]
    while frontier:
        name = frontier.pop()
        if name in out:
            continue
        out.add(name)
        frontier.extend(s for s in graph.get(name, ()) if s in graph)
    return out
