"""Control strategies (paper, Section 6).

**Result-oriented control** (the paper's proposal): pre-/post-evaluation
is a property of each *derived subdatabase*.  A PRE_EVALUATED result is
kept up to date by running the relevant rules forward whenever the data
they read is updated (an up-to-date copy is always stored); a
POST_EVALUATED result is computed when a retrieval needs it.  The *same
rule* may thus run forward while maintaining one result and backward while
deriving another — which removes POSTGRES's restriction that a forward
chaining rule cannot read data written by backward chaining rules.

**Rule-oriented control** (the POSTGRES baseline, STO87): each *rule* is
forward or backward.  A forward rule runs when the data it reads is
updated and its output is stored; a backward rule runs when its output is
requested and the output is not preserved afterwards.  The paper's
Ra→Rb→Rc→Rd scenario shows the flaw this implementation reproduces
faithfully: with Ra, Rb backward and Rc, Rd forward, a base update leaves
REd *stale but still stored* until somebody happens to query REb —
:meth:`RuleOrientedController.is_stale` lets tests and benchmarks observe
the inconsistency window.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro import obs
from repro.errors import UnknownSubdatabaseError
from repro.model.database import UpdateEvent
from repro.rules.chaining import topological_order
from repro.rules.rule import DeductiveRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.rules.engine import RuleEngine


class EvaluationMode(enum.Enum):
    """Result-oriented modes, attached to derived subdatabases."""

    PRE_EVALUATED = "pre"
    POST_EVALUATED = "post"


class RuleChainingMode(enum.Enum):
    """Rule-oriented modes, attached to rules (the POSTGRES baseline)."""

    FORWARD = "forward"
    BACKWARD = "backward"


class ResultOrientedController:
    """The paper's result-oriented control strategy."""

    def __init__(self, engine: "RuleEngine",
                 default_mode: EvaluationMode =
                 EvaluationMode.POST_EVALUATED):
        self.engine = engine
        self.default_mode = default_mode
        self._modes: Dict[str, EvaluationMode] = {}
        self._stale: Set[str] = set()

    # -- configuration --------------------------------------------------

    def on_rule_added(self, rule: DeductiveRule,
                      mode: Optional[EvaluationMode]) -> None:
        if mode is not None:
            self._modes[rule.target] = mode
        else:
            self._modes.setdefault(rule.target, self.default_mode)

    def set_mode(self, name: str, mode: EvaluationMode) -> None:
        self._modes[name] = mode

    def mode_of(self, name: str) -> EvaluationMode:
        return self._modes.get(name, self.default_mode)

    # -- event handling --------------------------------------------------

    def on_update(self, event: UpdateEvent) -> None:
        """Invalidate every affected result, then run a forward pass that
        re-materializes the PRE_EVALUATED ones (sources first)."""
        engine = self.engine
        affected = engine.affected_by_event(event)
        if not affected:
            return
        tracer = obs.TRACER
        span = tracer.start("forward-pass", kind=event.kind.name,
                            affected=len(affected)) \
            if tracer is not None else None
        try:
            for name in affected:
                engine.universe.unregister(name)
                self._stale.add(name)
                engine.stats.stale_markings += 1
            for name in engine.topological_targets():
                if name in affected and \
                        self.mode_of(name) is EvaluationMode.PRE_EVALUATED:
                    engine.derive(name, force=True)
        finally:
            if span is not None:
                tracer.finish(span)

    def on_derived(self, name: str) -> None:
        self._stale.discard(name)

    def after_query(self, derived: Sequence[str]) -> None:
        """Result-oriented post-evaluation keeps the computed result as a
        valid memo (it is invalidated by the next relevant update), so
        nothing needs to happen here."""

    def is_stale(self, name: str) -> bool:
        """True when the stored/known value of ``name`` no longer matches
        the base data and has not been recomputed yet.  Under this
        strategy a stale result is never *served*: it was unregistered,
        so the next query recomputes it."""
        return name in self._stale


class IncrementalResultController(ResultOrientedController):
    """Result-oriented control with delta maintenance of pre-evaluated
    results.

    For an affected PRE_EVALUATED target whose rules are all within the
    incrementally-maintainable fragment (see
    :mod:`repro.rules.incremental`), the update is applied to the
    maintained match sets instead of re-running the rules from scratch —
    the forward pass costs time proportional to the *change*.  Targets
    outside the fragment (loops, braces, aggregations, derived sources)
    transparently fall back to full re-derivation.
    """

    def __init__(self, engine: "RuleEngine",
                 default_mode: EvaluationMode =
                 EvaluationMode.PRE_EVALUATED):
        super().__init__(engine, default_mode)
        # target -> list of IncrementalRule (or None if ineligible)
        self._maintainers: Dict[str, Optional[list]] = {}

    def _maintainers_for(self, name: str):
        from repro.rules.incremental import IncrementalRule, NotIncremental
        if name not in self._maintainers:
            try:
                self._maintainers[name] = [
                    IncrementalRule(rule, self.engine.universe)
                    for rule in self.engine.rules_for(name)]
            except NotIncremental:
                self._maintainers[name] = None
        return self._maintainers[name]

    def on_rule_added(self, rule: DeductiveRule,
                      mode: Optional[EvaluationMode]) -> None:
        super().on_rule_added(rule, mode)
        # The rule set changed; maintainers must be rebuilt.
        self._maintainers.pop(rule.target, None)

    def on_update(self, event: UpdateEvent) -> None:
        from repro.model.database import UpdateKind
        engine = self.engine
        if event.kind is UpdateKind.SCHEMA:
            # Rule meanings may have changed: rebuild maintainers and
            # fall back to the plain result-oriented pass.
            self._maintainers.clear()
            super().on_update(event)
            return
        affected = engine.affected_by_event(event)
        if not affected:
            return
        tracer = obs.TRACER
        fspan = tracer.start("forward-pass", incremental=True,
                             kind=event.kind.name,
                             affected=len(affected)) \
            if tracer is not None else None
        try:
            classes = set(event.classes)
            graph = engine.rule_graph()
            # Targets whose value actually (or possibly) moved this
            # pass; downstream targets whose only relevance is via an
            # upstream source NOT in this set kept their inputs, so
            # their stored value stays valid and is not touched.
            changed_targets: Set[str] = set()
            for name in engine.topological_targets():
                if name not in affected:
                    continue
                rspan = tracer.start("refresh", target=name) \
                    if tracer is not None else None
                try:
                    outcome = self._refresh_target(name, event, classes,
                                                   graph, changed_targets)
                    if rspan is not None:
                        rspan.set("outcome", outcome)
                finally:
                    if rspan is not None:
                        tracer.finish(rspan)
        finally:
            if fspan is not None:
                tracer.finish(fspan)

    def _refresh_target(self, name: str, event: UpdateEvent,
                        classes: Set[str], graph: Dict[str, Set[str]],
                        changed_targets: Set[str]) -> str:
        """Refresh one affected target; returns the outcome for the
        refresh span: ``skip-unchanged``, ``stale``, ``full``,
        ``budget-tripped``, ``skip-noop`` or ``incremental``."""
        engine = self.engine
        direct_hit = any(rule.base_classes() & classes
                         for rule in engine.rules_for(name))
        source_hit = any(source in changed_targets
                         for source in graph.get(name, ()))
        if not direct_hit and not source_hit:
            # Affected only through upstream sources that turned out
            # unchanged: the stored value (if any) is still exact.
            engine.stats.refreshes_skipped += 1
            return "skip-unchanged"
        if self.mode_of(name) is not EvaluationMode.PRE_EVALUATED:
            engine.universe.unregister(name)
            self._stale.add(name)
            engine.stats.stale_markings += 1
            # Unknown until re-derived; treat as changed downstream.
            changed_targets.add(name)
            return "stale"
        maintainers = self._maintainers_for(name)
        if maintainers is None or any(
                rule.source_subdatabases()
                for rule in engine.rules_for(name)):
            # Ineligible, or reads derived data whose value may have
            # just changed: full re-derivation.
            engine.derive(name, force=True)
            changed_targets.add(name)
            return "full"
        # Apply the delta to every maintainer (no short-circuiting —
        # each tracks its own match set) and collect real change
        # flags (satellite: on_event no longer reports True
        # unconditionally).  A maintenance budget bounds the whole
        # per-target refresh; a trip abandons it — match sets may be
        # mid-delta, so they are invalidated and the target goes
        # stale rather than serving a half-applied value.
        from repro.oql.budget import BudgetExceeded
        budget = engine.maintenance_budget
        if budget is not None:
            budget.start()
        try:
            # A maintainer whose source-class version vector has not
            # moved since its last apply provably absorbs the event as
            # a no-op: skip the dispatch outright (finer than the
            # per-target direct_hit test — a multi-rule target
            # dispatches only the rules that read the touched classes).
            changed_flags = []
            for maintainer in maintainers:
                if maintainer.is_current():
                    engine.stats.refreshes_skipped_versioned += 1
                    changed_flags.append(False)
                else:
                    changed_flags.append(
                        maintainer.on_event(event, budget=budget))
        except BudgetExceeded:
            for maintainer in maintainers:
                maintainer.invalidate()
            engine.universe.unregister(name)
            self._stale.add(name)
            engine.stats.stale_markings += 1
            engine.stats.refreshes_skipped += 1
            changed_targets.add(name)
            return "budget-tripped"
        if not any(changed_flags) and engine.universe.has_subdb(name):
            # The match sets absorbed the event without moving
            # (no-op ASSOCIATE, equal re-derivation, ...): keep the
            # stored result and spare every downstream target.
            engine.stats.refreshes_skipped += 1
            self._stale.discard(name)
            return "skip-noop"
        merged = None
        for maintainer in maintainers:
            contribution = maintainer.target_contribution()
            merged = contribution if merged is None else \
                merged.merge(contribution)
        engine.universe.register(merged)
        engine.stats.incremental_refreshes += 1
        self._stale.discard(name)
        changed_targets.add(name)
        return "incremental"


class RuleOrientedController:
    """The POSTGRES-style rule-oriented baseline."""

    def __init__(self, engine: "RuleEngine",
                 default_mode: RuleChainingMode = RuleChainingMode.FORWARD):
        self.engine = engine
        self.default_mode = default_mode
        self._rule_modes: Dict[DeductiveRule, RuleChainingMode] = {}
        self._stale: Set[str] = set()

    # -- configuration --------------------------------------------------

    def on_rule_added(self, rule: DeductiveRule,
                      mode: Optional[RuleChainingMode]) -> None:
        self._rule_modes[rule] = mode or self.default_mode

    def set_mode(self, name: str, mode: RuleChainingMode) -> None:
        """Assign a chaining mode to every rule deriving ``name`` (the
        rule-oriented strategy restricts a rule to one mode at all
        times)."""
        for rule in self.engine.rules_for(name):
            self._rule_modes[rule] = mode

    def mode_of(self, name: str) -> RuleChainingMode:
        """A target is forward-maintained only if *all* its rules are
        forward; a backward rule's output is not preserved."""
        rules = self.engine.rules_for(name)
        if rules and all(self._rule_modes.get(r, self.default_mode)
                         is RuleChainingMode.FORWARD for r in rules):
            return RuleChainingMode.FORWARD
        return RuleChainingMode.BACKWARD

    # -- event handling --------------------------------------------------

    def on_update(self, event: UpdateEvent) -> None:
        """Trigger forward rules whose *read data* changed.

        A forward target recomputes when the update touches the base
        classes its rules read, or when one of its stored sources was
        just recomputed.  A forward target whose trigger data lives in a
        backward (unstored) result is **not** triggered — its stored copy
        silently goes stale: the paper's criticism of POSTGRES.
        """
        engine = self.engine
        classes = set(event.classes)
        affected = engine.affected_by_event(event)
        if not affected:
            return
        tracer = obs.TRACER
        span = tracer.start("forward-pass", strategy="rule",
                            kind=event.kind.name,
                            affected=len(affected)) \
            if tracer is not None else None
        try:
            graph = engine.rule_graph()
            engine._derived_log = []
            recomputed: Set[str] = set()
            for name in engine.topological_targets():
                if name not in affected:
                    continue
                direct_hit = any(rule.base_classes() & classes
                                 for rule in engine.rules_for(name))
                source_hit = any(source in recomputed
                                 for source in graph.get(name, ()))
                if self.mode_of(name) is RuleChainingMode.FORWARD and \
                        (direct_hit or source_hit):
                    engine.derive(name, force=True)
                    recomputed.add(name)
                else:
                    self._stale.add(name)
                    engine.stats.stale_markings += 1
                    if self.mode_of(name) is RuleChainingMode.BACKWARD:
                        # Backward results are not preserved anyway.
                        engine.universe.unregister(name)
                    # Forward results KEEP their stored — now
                    # inconsistent — copy: that is the observable flaw.
            # Backward results freshly derived as intermediates of the
            # forward pass are not preserved (POSTGRES: a backward
            # rule's output lives only for the duration of a query
            # session).
            for name in engine._derived_log:
                if name in graph and \
                        self.mode_of(name) is RuleChainingMode.BACKWARD:
                    engine.universe.unregister(name)
        finally:
            if span is not None:
                tracer.finish(span)

    def on_derived(self, name: str) -> None:
        self._stale.discard(name)

    def after_query(self, derived: Sequence[str]) -> None:
        """Once a query has forced backward rules to produce fresh
        values, forward rules that read those values finally trigger;
        afterwards the backward results are dropped (not preserved after
        the query session)."""
        engine = self.engine
        graph = engine.rule_graph()
        recomputed: Set[str] = set(derived)
        for name in engine.topological_targets():
            if self.mode_of(name) is not RuleChainingMode.FORWARD:
                continue
            source_hit = any(source in recomputed
                             for source in graph.get(name, ()))
            if source_hit and name in self._stale:
                engine.derive(name, force=True)
                recomputed.add(name)
        for name in derived:
            if name in engine.rule_graph() and \
                    self.mode_of(name) is RuleChainingMode.BACKWARD:
                engine.universe.unregister(name)

    def is_stale(self, name: str) -> bool:
        return name in self._stale
