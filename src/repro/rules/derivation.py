"""Applying deductive rules: projection, induced generalization, derived
direct associations, attribute subsetting, and multi-rule union.

:func:`apply_rule` evaluates one rule's If clause into a source
subdatabase and builds the rule's contribution to its target subdatabase
(Section 4.2):

* the target intension contains exactly the classes listed in the Then
  clause — unreferenced classes (Section in Figure 4.3) are dropped;
* each target class carries a :class:`DerivedClassInfo` recording the
  *induced generalization association* to its source class (Section 4.1)
  and any attribute subsetting;
* consecutive target classes that were directly associated in the source
  keep that association; classes that were only *indirectly* connected get
  a **new direct derived association** (Figure 4.3: Teacher—Course);
* extensional patterns are projected, de-duplicated, and re-subsumed.

:func:`derive_target` unions the contributions of every rule deriving the
same subdatabase-id (rules R4 and R5 both deriving May_teach).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import RuleSemanticError
from repro.oql.evaluator import PatternEvaluator
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern, subsume
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.rules.rule import DeductiveRule, TargetSpec


def _resolve_target_indices(rule: DeductiveRule, source: Subdatabase,
                            target: TargetSpec) -> List[int]:
    """Map one Then-clause argument to source slot indices.

    Exact slot names win (``Grad_2``); an all-levels argument (``Grad_``)
    expands to every hierarchy level from 1 upward; otherwise the argument
    must match a unique slot of its class — which is how the paper writes
    ``Course`` for the context class ``Suggest_offer:Course`` (rule R4).
    """
    intension = source.intension
    if target.all_levels:
        levels = intension.levels_of_class(target.ref.cls)
        expanded = [i for i in levels if intension.slots[i].level >= 1]
        if not expanded:
            raise RuleSemanticError(
                f"rule {rule.label or rule.target!r}: target "
                f"{target.ref.cls}_ matched no hierarchy levels >= 1 "
                f"(slots: {list(source.slot_names)})")
        return expanded
    if intension.has_slot(target.ref.slot):
        return [intension.index_of(target.ref.slot)]
    matches = intension.indices_of_class(target.ref.cls)
    if target.ref.alias is None and len(matches) == 1:
        return matches
    if target.ref.alias is not None:
        level_matches = [
            i for i in matches
            if intension.slots[i].alias == target.ref.alias]
        if len(level_matches) == 1:
            return level_matches
    if matches and target.ref.alias is not None:
        # A loop context generated fewer levels than the target names
        # (e.g. first_and_third (Grad, Grad_2) over a 2-level hierarchy):
        # the target contributes no instances this derivation.
        return []
    raise RuleSemanticError(
        f"rule {rule.label or rule.target!r}: target {target} does not "
        f"identify a unique slot (slots: {list(source.slot_names)})")


def apply_rule(rule: DeductiveRule,
               evaluator: PatternEvaluator) -> Subdatabase:
    """Evaluate one rule and return its contribution to the target."""
    tracer = obs.TRACER
    span = tracer.start("rule-apply", rule=rule.label or rule.target,
                        target=rule.target) \
        if tracer is not None else None
    try:
        source = evaluator.evaluate(rule.context, rule.where,
                                    name=f"_source_of_{rule.target}")
        contribution = project_to_target(rule, source)
        if span is not None:
            span.add("source_rows", len(source))
            span.add("rows_out", len(contribution))
        return contribution
    finally:
        if span is not None:
            tracer.finish(span)


def project_to_target(rule: DeductiveRule,
                      source: Subdatabase) -> Subdatabase:
    """Build the rule's target subdatabase from an already-evaluated
    source (the Then clause's work: projection, induced generalization,
    derived associations, attribute subsetting).

    Split out of :func:`apply_rule` so the incremental maintainer can
    re-project a delta-maintained match set without re-evaluating the
    If clause."""
    selected: List[Tuple[Optional[int], TargetSpec]] = []
    for target in rule.targets:
        indices = _resolve_target_indices(rule, source, target)
        if indices:
            for index in indices:
                selected.append((index, target))
        else:
            # A named hierarchy level the loop did not reach: the slot
            # exists in the target intension but holds no instances.
            selected.append((None, target))

    # New slots: the target class names (aliases preserved so repeated
    # classes stay distinct; subdatabase qualifiers dropped — the derived
    # class lives in the *new* subdatabase).
    new_slots: List[ClassRef] = []
    derived_info = {}
    for index, target in selected:
        if index is None:
            source_ref = ClassRef(target.ref.cls, target.ref.subdb,
                                  target.ref.alias)
        else:
            source_ref = source.intension.slots[index]
        new_ref = ClassRef(source_ref.cls, None, source_ref.alias)
        new_slots.append(new_ref)
        derived_info[new_ref.slot] = DerivedClassInfo(
            ref=ClassRef(new_ref.cls, rule.target, new_ref.alias),
            source=source_ref.without_alias()
            if index is None else source_ref,
            visible_attrs=target.attrs)

    # Associations between consecutive target classes: keep a direct
    # source association when one exists, otherwise infer a new direct
    # derived association (Figure 4.3).
    edges: List[Edge] = []
    for position in range(len(selected) - 1):
        i, _ = selected[position]
        j, _ = selected[position + 1]
        existing = None
        if i is not None and j is not None:
            existing = source.intension.edge_between(i, j)
        if existing is not None:
            edges.append(Edge(position, position + 1, existing.kind,
                              existing.label))
        else:
            edges.append(Edge(position, position + 1, "derived",
                              rule.target))

    indices = [index for index, _ in selected]
    projected = {
        ExtensionalPattern([None if i is None else p[i] for i in indices])
        for p in source.patterns}
    projected = {p for p in projected if p.arity > 0}

    intension = IntensionalPattern(new_slots, edges)
    return Subdatabase(rule.target, intension, subsume(projected),
                       derived_info)


def derive_target(rules: Sequence[DeductiveRule],
                  evaluator: PatternEvaluator,
                  name: Optional[str] = None) -> Subdatabase:
    """Union the contributions of every rule deriving one subdatabase.

    "Rules R4 and R5 derive extensional patterns into the same
    subdatabase May_teach but based on different conditions; if both
    rules are applied, May_teach will contain the union of the two sets
    of extensional patterns derived by the two rules" (Section 4.2).
    """
    if not rules:
        raise RuleSemanticError("derive_target needs at least one rule")
    target = name or rules[0].target
    for rule in rules:
        if rule.target != target:
            raise RuleSemanticError(
                f"rule {rule.label or rule.target!r} does not derive "
                f"{target!r}")
    merged: Optional[Subdatabase] = None
    for rule in rules:
        contribution = apply_rule(rule, evaluator)
        merged = contribution if merged is None else \
            merged.merge(contribution)
    return merged
