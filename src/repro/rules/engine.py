"""The rule engine: rule base, dependency graph, chaining, statistics.

:class:`RuleEngine` is the top-level object of the deductive system.  It
owns the :class:`~repro.subdb.universe.Universe` (installing itself as the
universe's subdatabase *provider*, which is how a query that references a
derived class triggers backward chaining exactly as Section 4.3
describes: Query 4.1 triggers R4 and R5, which trigger R2), listens to
base-database updates, and delegates maintenance decisions to a control
strategy (Section 6).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro import obs
from repro.errors import CyclicRuleError, UnknownSubdatabaseError
from repro.model.database import Database, UpdateEvent
from repro.oql.budget import QueryBudget
from repro.oql.cache import result_nbytes
from repro.oql.evaluator import PatternEvaluator
from repro.oql.operations import OperationRegistry
from repro.oql.query import QueryProcessor, QueryResult
from repro.rules.chaining import downstream_closure, topological_order
from repro.rules.control import (
    EvaluationMode,
    IncrementalResultController,
    ResultOrientedController,
    RuleChainingMode,
    RuleOrientedController,
)
from repro.rules.derivation import derive_target
from repro.rules.rule import DeductiveRule, parse_rule
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import Universe


@dataclass
class EngineStats:
    """Counters the benchmarks and the control-strategy tests observe."""

    derivations: Counter = field(default_factory=Counter)
    rule_applications: Counter = field(default_factory=Counter)
    queries: int = 0
    update_events: int = 0
    stale_markings: int = 0
    incremental_refreshes: int = 0
    refreshes_skipped: int = 0
    #: Maintainer refreshes skipped because the version vector of the
    #: maintainer's source classes had not moved since its last apply.
    refreshes_skipped_versioned: int = 0
    #: Derivations served from the cross-query result cache (the
    #: target's transitive base classes were unchanged since the
    #: memoized derivation).
    derivation_memo_hits: int = 0

    def total_derivations(self) -> int:
        return sum(self.derivations.values())

    def snapshot(self) -> Dict[str, int]:
        return {
            "derivations": self.total_derivations(),
            "queries": self.queries,
            "update_events": self.update_events,
            "stale_markings": self.stale_markings,
            "incremental_refreshes": self.incremental_refreshes,
            "refreshes_skipped": self.refreshes_skipped,
            "refreshes_skipped_versioned": self.refreshes_skipped_versioned,
            "derivation_memo_hits": self.derivation_memo_hits,
        }


class RuleEngine:
    """A deductive object-oriented database session."""

    def __init__(self, db: Database, controller: str = "result",
                 on_cycle: str = "error",
                 operations: Optional[OperationRegistry] = None,
                 compact: bool = True, workers: int = 1,
                 worker_mode: str = "thread",
                 maintenance_budget: Optional[QueryBudget] = None,
                 cache_bytes: int = 0):
        self.db = db
        self.universe = Universe(db)
        self.universe.provider = self._provide
        self.evaluator = PatternEvaluator(self.universe, on_cycle=on_cycle,
                                          compact=compact, workers=workers,
                                          worker_mode=worker_mode,
                                          cache_bytes=cache_bytes)
        self.processor = QueryProcessor(self.universe, on_cycle=on_cycle,
                                        operations=operations,
                                        compact=compact, workers=workers,
                                        worker_mode=worker_mode,
                                        cache_bytes=cache_bytes)
        #: Per-event budget for incremental maintenance: when set, a
        #: maintainer refresh that trips it is skipped (the target goes
        #: stale and ``stats.refreshes_skipped`` counts it) instead of
        #: stalling the writer.
        self.maintenance_budget = maintenance_budget
        self._on_cycle = on_cycle
        self._compact = compact
        self._operations = operations
        self._cache_bytes = cache_bytes
        self._worker_mode = worker_mode
        self.rules: List[DeductiveRule] = []
        self._by_target: Dict[str, List[DeductiveRule]] = {}
        self.stats = EngineStats()
        if controller == "result":
            self.controller = ResultOrientedController(self)
        elif controller == "rule":
            self.controller = RuleOrientedController(self)
        elif controller == "incremental":
            self.controller = IncrementalResultController(self)
        else:
            raise ValueError(
                "controller must be 'result', 'rule' or 'incremental'")
        self._deriving: Set[str] = set()
        self._derived_log: List[str] = []
        #: Rule-base listeners: callables ``(action, rule, mode)`` with
        #: action ``"added"`` or ``"removed"`` — how a storage backend
        #: journals rule registrations alongside data updates.
        self._rule_listeners: List = []
        db.add_listener(self._on_update)

    # ------------------------------------------------------------------
    # Rule base
    # ------------------------------------------------------------------

    def add_rule(self, rule: Union[str, DeductiveRule],
                 label: Optional[str] = None,
                 mode: Optional[Union[EvaluationMode,
                                      RuleChainingMode]] = None
                 ) -> DeductiveRule:
        """Register a deductive rule (text or pre-parsed).

        ``mode`` is interpreted by the active control strategy: an
        :class:`EvaluationMode` for the result-oriented controller (it
        applies to the rule's *target subdatabase*), a
        :class:`RuleChainingMode` for the rule-oriented baseline (it
        applies to the *rule*).  Adding a rule that would make the
        dependency graph cyclic is rejected.
        """
        if isinstance(rule, str):
            rule = parse_rule(rule, label)
        else:
            rule.validate()
        self.rules.append(rule)
        self._by_target.setdefault(rule.target, []).append(rule)
        try:
            topological_order(self.rule_graph())
        except CyclicRuleError:
            self.rules.remove(rule)
            self._by_target[rule.target].remove(rule)
            if not self._by_target[rule.target]:
                del self._by_target[rule.target]
            raise
        self.controller.on_rule_added(rule, mode)
        # A previously materialized value of this target no longer
        # reflects the full rule set.
        self.universe.unregister(rule.target)
        # Neither do memoized derivations of it or of anything
        # downstream — a definition change moves no version vector, so
        # the memos must be dropped explicitly.
        self._drop_derivation_memos(
            downstream_closure(self.rule_graph(),
                               [rule.target]) | {rule.target})
        self._notify_rule_listeners("added", rule, mode)
        return rule

    def add_rule_listener(self, listener) -> None:
        """Register a callback ``(action, rule, mode)`` fired after every
        rule registration (``action="added"``) or removal
        (``action="removed"``, mode ``None``).  Listeners fire in
        registration order; one removed mid-notification by an earlier
        listener is skipped for that event."""
        self._rule_listeners.append(listener)

    def remove_rule_listener(self, listener) -> None:
        self._rule_listeners.remove(listener)

    def _notify_rule_listeners(self, action, rule, mode) -> None:
        # Same contract as Database._notify: snapshot + membership
        # check, so removal during notification cannot deliver the
        # in-flight event to the removed listener.
        for listener in list(self._rule_listeners):
            if listener in self._rule_listeners:
                listener(action, rule, mode)

    def remove_rule(self, rule: Union[str, DeductiveRule]
                    ) -> DeductiveRule:
        """Unregister a rule, by object or by label.

        The target subdatabase and everything downstream of it are
        invalidated; remaining rules for the same target still derive
        it, and a target whose last rule is removed becomes unknown
        again.
        """
        from repro.errors import RuleSemanticError
        from repro.rules.chaining import downstream_closure
        if isinstance(rule, str):
            matches = [r for r in self.rules if r.label == rule]
            if len(matches) != 1:
                raise RuleSemanticError(
                    f"{len(matches)} rules carry label {rule!r}")
            rule = matches[0]
        if rule not in self.rules:
            raise RuleSemanticError(
                f"rule {rule.label or rule.target!r} is not registered")
        # Compute the downstream closure before mutating the rule base:
        # once the target's last rule is gone it drops out of the graph.
        affected = downstream_closure(self.rule_graph(),
                                      [rule.target]) | {rule.target}
        self.rules.remove(rule)
        self._by_target[rule.target].remove(rule)
        if not self._by_target[rule.target]:
            del self._by_target[rule.target]
        for name in affected:
            self.universe.unregister(name)
        self._drop_derivation_memos(affected)
        self._notify_rule_listeners("removed", rule, None)
        return rule

    def rules_for(self, name: str) -> List[DeductiveRule]:
        return list(self._by_target.get(name, ()))

    @property
    def target_names(self) -> List[str]:
        return sorted(self._by_target)

    def rule_graph(self) -> Dict[str, Set[str]]:
        """target name -> the derived subdatabases its rules read."""
        return {name: set().union(*(rule.source_subdatabases()
                                    for rule in rules))
                for name, rules in self._by_target.items()}

    def topological_targets(self) -> List[str]:
        """Every target, sources before dependents."""
        return topological_order(self.rule_graph())

    def affected_by_event(self, event: UpdateEvent) -> Set[str]:
        """Targets an update event may change.  Schema-evolution events
        conservatively affect every target (rule meanings can shift);
        data events affect the readers of the touched classes and their
        downstream closure."""
        from repro.model.database import UpdateKind
        if event.kind is UpdateKind.SCHEMA:
            return set(self._by_target)
        return self.affected_targets(set(event.classes))

    def affected_targets(self, classes: Set[str]) -> Set[str]:
        """Targets whose value may change when the given base classes'
        extensions change — the direct readers plus everything
        downstream of them."""
        direct = {name for name, rules in self._by_target.items()
                  if any(rule.base_classes() & classes for rule in rules)}
        return downstream_closure(self.rule_graph(), direct)

    def set_mode(self, name: str,
                 mode: Union[EvaluationMode, RuleChainingMode]) -> None:
        """Change the evaluation/chaining mode for a target (see the
        active controller's documentation)."""
        self.controller.set_mode(name, mode)

    # ------------------------------------------------------------------
    # Derivation (backward chaining happens through the provider)
    # ------------------------------------------------------------------

    def _provide(self, name: str) -> Optional[Subdatabase]:
        if name in self._by_target:
            return self.derive(name)
        return None

    def _target_base_classes(self, name: str) -> Optional[Set[str]]:
        """The base classes feeding ``name`` transitively through the
        rule graph — or ``None`` when any transitive source is not
        itself rule-derived (an externally registered subdatabase has
        no per-class versions, so the target's value is not a function
        of the base vector alone)."""
        classes: Set[str] = set()
        seen: Set[str] = set()
        stack = [name]
        while stack:
            target = stack.pop()
            if target in seen:
                continue
            seen.add(target)
            rules = self._by_target.get(target)
            if rules is None:
                return None
            for rule in rules:
                classes.update(rule.base_classes())
                stack.extend(rule.source_subdatabases())
        return classes

    def _derivation_vector(self, name: str):
        """The version vector a memoized derivation of ``name`` is valid
        at, or ``None`` when ineligible."""
        classes = self._target_base_classes(name)
        if classes is None:
            return None
        return self.db.version_vector(sorted(classes))

    def _drop_derivation_memos(self, names) -> None:
        cache = self.evaluator.result_cache
        for name in names:
            cache.drop(("derive", name))

    def derive(self, name: str, force: bool = False) -> Subdatabase:
        """Materialize one derived subdatabase.

        Evaluating the rules' context expressions resolves any source
        subdatabases through the universe, which recursively derives them
        — the backward-chaining cascade of Section 4.3.

        When the cross-query result cache is enabled, a target whose
        transitive base classes are unversioned since a previous
        derivation is served from the cache instead of re-deriving
        (``stats.derivation_memo_hits``); the memo key is validated
        against the version vector of exactly those classes.
        """
        if not force and self.universe.has_subdb(name):
            return self.universe.get_subdb(name)
        if name not in self._by_target:
            raise UnknownSubdatabaseError(
                f"no rule derives subdatabase {name!r}")
        if name in self._deriving:
            raise CyclicRuleError(
                f"cyclic derivation detected while deriving {name!r}")
        cache = self.evaluator.result_cache
        memo_vector = self._derivation_vector(name) if cache.enabled \
            else None
        if memo_vector is not None and not force:
            memoized = cache.lookup(("derive", name), memo_vector)
            if memoized is not None:
                self.stats.derivation_memo_hits += 1
                self.universe.register(memoized)
                self.controller.on_derived(name)
                self._derived_log.append(name)
                return memoized
        self._deriving.add(name)
        tracer = obs.TRACER
        span = tracer.start("derive", target=name,
                            rules=len(self._by_target[name]),
                            forced=force) if tracer is not None else None
        try:
            if force:
                # Source values may themselves be stale re-registrations;
                # a forced derivation re-reads whatever is materialized.
                self.universe.unregister(name)
            for rule in self._by_target[name]:
                self.stats.rule_applications[
                    rule.label or rule.target] += 1
            result = derive_target(self._by_target[name], self.evaluator)
            self.universe.register(result)
            if memo_vector is not None:
                # Stored under the vector captured *before* evaluation:
                # if a source class moved mid-derivation, the entry sits
                # under a vector no future lookup of that class can
                # present again (versions are monotonic) — never stale.
                cache.store(("derive", name), memo_vector, result,
                            result_nbytes(result))
            self.stats.derivations[name] += 1
            self.controller.on_derived(name)
            self._derived_log.append(name)
            if span is not None:
                span.add("patterns_out", len(result))
        finally:
            self._deriving.discard(name)
            if span is not None:
                tracer.finish(span)
        return result

    def refresh(self) -> None:
        """Materialize every target, sources first (useful to warm
        pre-evaluated results after bulk-loading data)."""
        for name in self.topological_targets():
            self.derive(name, force=True)

    # ------------------------------------------------------------------
    # Queries and updates
    # ------------------------------------------------------------------

    def query(self, text: str, name: Optional[str] = None,
              budget: Optional[QueryBudget] = None) -> QueryResult:
        """Run an OQL query.  Derived classes it references are derived
        on demand (backward chaining); afterwards the controller applies
        its post-query policy (the rule-oriented baseline cascades
        forward rules and drops unpreserved backward results).

        ``budget`` covers the *whole* derivation cascade: the clock and
        row counter accumulate across the query and every rule it
        backward-chains through, so a runaway rule trips the same
        :class:`~repro.oql.budget.BudgetExceeded` as a runaway query.
        """
        self.stats.queries += 1
        self._derived_log = []
        tracer = obs.TRACER
        span = tracer.start("engine-query", text=text) \
            if tracer is not None else None
        try:
            if budget is not None:
                budget.start()
                # The derivation evaluator picks the budget up ambiently
                # — backward chaining goes through the universe
                # provider, not through an argument we could thread.
                self.evaluator.budget = budget
            try:
                result = self.processor.execute(text, name=name,
                                                budget=budget)
            finally:
                if budget is not None:
                    self.evaluator.budget = None
            self.controller.after_query(list(self._derived_log))
            if span is not None:
                span.add("derivations", len(self._derived_log))
            return result
        finally:
            if span is not None:
                tracer.finish(span)

    def snapshot_session(self) -> QueryProcessor:
        """A :class:`QueryProcessor` over a snapshot of this engine's
        universe, for concurrent readers: evaluation (including backward
        chaining through this engine's rules) runs entirely against the
        pinned version and registers derived subdatabases only in the
        snapshot's private registry — the live universe and rule base
        are never written.  Writers proceed concurrently; the reader
        never observes their effects."""
        tracer = obs.TRACER
        sspan = tracer.start("snapshot-session") \
            if tracer is not None else None
        try:
            snapshot = self.universe.snapshot()
            if sspan is not None:
                sspan.set("pinned_version",
                          getattr(snapshot, "pinned_version", None))
        finally:
            if sspan is not None:
                tracer.finish(sspan)
        # Workers/mode track the live evaluator (the shell's \workers
        # retargets both at runtime).  The snapshot pins its own compact
        # store, so any planes the session exports stay valid — and
        # alive — for exactly as long as the session's queries run;
        # close() (or the evaluator finalizer) unlinks them.
        processor = QueryProcessor(snapshot, on_cycle=self._on_cycle,
                                   operations=self._operations,
                                   compact=self._compact,
                                   workers=self.evaluator.workers,
                                   worker_mode=self.evaluator.worker_mode,
                                   cache_bytes=self._cache_bytes)
        deriving: Set[str] = set()

        def provide(name: str) -> Optional[Subdatabase]:
            if name not in self._by_target or name in deriving:
                return None
            tracer = obs.TRACER
            span = tracer.start("derive", target=name, snapshot=True,
                                rules=len(self._by_target[name])) \
                if tracer is not None else None
            deriving.add(name)
            try:
                result = derive_target(self._by_target[name],
                                       processor.evaluator)
                snapshot.register(result)
                if span is not None:
                    span.add("patterns_out", len(result))
            finally:
                deriving.discard(name)
                if span is not None:
                    tracer.finish(span)
            return result

        snapshot.provider = provide
        return processor

    def close(self) -> None:
        """Release shared-memory planes held by this engine's
        evaluators (idempotent; worker pools are process-global and
        outlive the engine)."""
        self.evaluator.close()
        self.processor.close()

    def is_stale(self, name: str) -> bool:
        """Whether the controller currently considers ``name`` stale."""
        return self.controller.is_stale(name)

    def explain(self, query_text: str):
        """The backward-chaining plan for a query (which rules would
        trigger, in what order, what is already warm) — see
        :mod:`repro.rules.explain`."""
        from repro.rules.explain import explain
        return explain(self, query_text)

    def why(self, target: str, pattern, depth: int = 2):
        """Justify one pattern of a derived subdatabase: the rule(s)
        and source rows it came from, recursively — see
        :mod:`repro.rules.provenance`."""
        from repro.rules.provenance import explain_pattern
        return explain_pattern(self, target, pattern, depth=depth)

    def _on_update(self, event: UpdateEvent) -> None:
        self.stats.update_events += 1
        self.controller.on_update(event)
