"""Explain: the backward-chaining plan of a query or target.

``engine.explain("context Faculty * Advising * May_teach:TA ...")``
answers: which derived subdatabases does this query reference, which
rules derive them, what do those rules read (recursively down to base
classes), is each result currently materialized and under which
evaluation mode, and in what order would derivation run?

The paper walks exactly this trace for Query 4.1 (Section 4.3): "rules
R4 and R5 will be triggered ... this causes rule R2 that derives
Suggest_offer to be triggered ... R2 does not refer to any other derived
subdatabase, hence its expressions are evaluated against the base
classes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro import obs
from repro.oql.ast import Chain, Query
from repro.oql.parser import parse_query
from repro.oql.planner import JoinPlan
from repro.rules.chaining import topological_order, upstream_closure

if TYPE_CHECKING:  # pragma: no cover
    from repro.rules.engine import RuleEngine


@dataclass
class RuleStep:
    """One rule contributing to a target."""

    label: str
    reads_targets: List[str]
    reads_base: List[str]

    def render(self) -> str:
        reads = self.reads_targets + [f"{c} (base)"
                                      for c in self.reads_base]
        return f"rule {self.label}: reads {', '.join(reads) or '(nothing)'}"


@dataclass
class TargetNode:
    """One derived subdatabase in the plan tree."""

    name: str
    materialized: bool
    mode: str
    rules: List[RuleStep] = field(default_factory=list)
    sources: List["TargetNode"] = field(default_factory=list)


@dataclass
class Explanation:
    """The full backward-chaining plan for one query."""

    query_text: str
    #: Derived subdatabases the query references directly.
    referenced: List[str]
    #: Base classes the query references directly.
    base_classes: List[str]
    #: Plan trees rooted at the referenced targets.
    roots: List[TargetNode]
    #: The order derivation would run (sources before dependents),
    #: skipping already-materialized results.
    derivation_order: List[str]
    #: The join plans the evaluator would choose for the query's own
    #: context chain (one per brace group), with per-step row estimates.
    #: Empty when a referenced subdatabase is not materialized yet —
    #: the statistics needed for planning only exist after derivation.
    join_plans: List[JoinPlan] = field(default_factory=list)
    #: Id of the trace recorded while building this explanation
    #: (``None`` when no tracer was installed).
    trace_id: Optional[int] = None

    def render(self) -> str:
        lines = [f"query: {self.query_text}"]
        if self.base_classes:
            lines.append(
                f"base classes: {', '.join(self.base_classes)}")
        if not self.roots:
            lines.append("no derived subdatabases referenced — "
                         "evaluates directly against the base database")
            for plan in self.join_plans:
                lines.extend(plan.describe().splitlines())
            return "\n".join(lines)
        lines.append("derived subdatabases:")

        def walk(node: TargetNode, depth: int) -> None:
            pad = "  " * depth
            status = "warm (materialized)" if node.materialized \
                else "cold (will derive)"
            lines.append(f"{pad}- {node.name} [{node.mode}] {status}")
            for step in node.rules:
                lines.append(f"{pad}    {step.render()}")
            for source in node.sources:
                walk(source, depth + 1)

        for root in self.roots:
            walk(root, 1)
        if self.derivation_order:
            lines.append("derivation order: "
                         + " -> ".join(self.derivation_order))
        else:
            lines.append("derivation order: (everything warm)")
        for plan in self.join_plans:
            lines.extend(plan.describe().splitlines())
        return "\n".join(lines)


def _query_refs(query: Query):
    refs = []

    def walk(chain: Chain) -> None:
        for element in chain.elements:
            if isinstance(element, Chain):
                walk(element)
            else:
                refs.append(element.ref)

    walk(query.context.chain)
    return refs


def _mode_name(engine: "RuleEngine", name: str) -> str:
    mode = engine.controller.mode_of(name)
    return getattr(mode, "value", str(mode))


def _plan_query(engine: "RuleEngine", query: Query) -> List[JoinPlan]:
    """The join plans the evaluator would pick for the query's context,
    estimated from current statistics.  A slot whose intra-class
    condition is answerable by declared value indexes plans with its
    *true* filtered size (the index counts matching rows without
    scanning); other conditioned slots fall back to the unfiltered
    extent size — those selectivities only become exact during
    evaluation.

    Planning needs extent sizes and edge resolutions, which for derived
    references require the subdatabase to exist; when one is cold the
    plan is omitted rather than derived as a side effect of explain.
    """
    from repro.oql.evaluator import _flatten
    flat = _flatten(query.context.chain)
    refs = [term.ref for term in flat.terms]
    if any(ref.subdb is not None
           and not engine.universe.has_subdb(ref.subdb) for ref in refs):
        return []
    evaluator = engine.evaluator
    resolutions = [engine.universe.resolve_edge(flat.terms[i].ref,
                                                flat.terms[i + 1].ref)
                   for i in range(len(flat.terms) - 1)]
    sizes = [evaluator.planner.statistics.filtered_size(term.ref,
                                                        term.condition)
             for term in flat.terms]
    return [evaluator.planner.plan(refs, flat.ops, resolutions, sizes,
                                   start, end,
                                   strategy=evaluator.optimize)
            for start, end in flat.groups]


def explain(engine: "RuleEngine", query_text: str) -> Explanation:
    """Build the backward-chaining plan for ``query_text``."""
    tracer = obs.TRACER
    span = tracer.start("explain", text=query_text) \
        if tracer is not None else None
    try:
        explanation = _explain(engine, query_text)
        if span is not None:
            explanation.trace_id = span.trace_id
        return explanation
    finally:
        if span is not None:
            tracer.finish(span)


def _explain(engine: "RuleEngine", query_text: str) -> Explanation:
    query = parse_query(query_text)
    refs = _query_refs(query)
    referenced = sorted({ref.subdb for ref in refs
                         if ref.subdb is not None
                         and ref.subdb in engine.rule_graph()})
    base_classes = sorted({ref.cls for ref in refs if ref.subdb is None})

    memo: Dict[str, TargetNode] = {}

    def build(name: str) -> TargetNode:
        if name in memo:
            return memo[name]
        node = TargetNode(
            name=name,
            materialized=engine.universe.has_subdb(name),
            mode=_mode_name(engine, name))
        memo[name] = node
        source_names: Set[str] = set()
        for rule in engine.rules_for(name):
            reads = sorted(rule.source_subdatabases())
            node.rules.append(RuleStep(
                label=rule.label or name,
                reads_targets=reads,
                reads_base=sorted(rule.base_classes())))
            source_names.update(s for s in reads
                                if s in engine.rule_graph())
        node.sources = [build(s) for s in sorted(source_names)]
        return node

    roots = [build(name) for name in referenced]

    graph = engine.rule_graph()
    needed = upstream_closure(graph, referenced)
    order = [name for name in topological_order(graph)
             if name in needed and not engine.universe.has_subdb(name)]
    return Explanation(query_text=query_text, referenced=referenced,
                       base_classes=base_classes, roots=roots,
                       derivation_order=order,
                       join_plans=_plan_query(engine, query))
