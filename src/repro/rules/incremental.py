"""Incremental maintenance of derived subdatabases.

The paper's forward chaining re-runs the relevant rules whenever their
read data changes (Section 6).  For a large class of rules a full
re-derivation is unnecessary: this module maintains the rule's *context
match set* under single-object / single-link deltas, so a pre-evaluated
result is refreshed in time proportional to the change, not to the
database:

* ASSOCIATE adds matches seeded at the new link (pin the two objects at
  the edge's slots, expand outward through the chain);
* DISSOCIATE removes the matches that used the link;
* DELETE removes the matches containing the object;
* INSERT adds single-class matches (longer chains need links first);
* SET_ATTRIBUTE re-validates matches containing the object and seeds new
  ones (the object may newly satisfy an intra-class condition);
* the non-association operator ``!`` swaps the ASSOCIATE/DISSOCIATE
  roles (a new link *removes* complement matches and vice versa);
* a BATCH replays its recorded sub-events in order.

**Eligibility.**  A rule is incrementally maintainable when its context
is a plain linear chain (no braces, no loop), every class reference is a
*base* class, and the Where subclause has no aggregation conditions
(group membership is non-local).  :class:`IncrementalRule` raises
:class:`NotIncremental` otherwise and the caller falls back to full
re-derivation — see
:class:`~repro.rules.control.IncrementalResultController`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import OQLSemanticError, ReproError
from repro.model.database import UpdateEvent, UpdateKind
from repro.model.oid import OID
from repro.oql import conditions
from repro.oql.budget import QueryBudget
from repro.oql.ast import AggComparison, AttrRef, ClassTerm
from repro.oql.evaluator import (
    PatternEvaluator,
    _flatten,
    resolve_slot_index,
)
from repro.rules.derivation import project_to_target
from repro.rules.rule import DeductiveRule
from repro.subdb.intension import IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import EdgeResolution, Universe


class NotIncremental(ReproError):
    """The rule is outside the incrementally-maintainable fragment."""


Row = Tuple[OID, ...]


class IncrementalRule:
    """Delta-maintains the full context match set of one eligible rule."""

    def __init__(self, rule: DeductiveRule, universe: Universe,
                 evaluator: Optional[PatternEvaluator] = None):
        self.rule = rule
        self.universe = universe
        self.evaluator = evaluator or PatternEvaluator(universe)
        flat = _flatten(rule.context.chain)
        if rule.context.loop is not None:
            raise NotIncremental("loop contexts are not incremental")
        if len(flat.groups) > 1:
            raise NotIncremental("brace groups are not incremental")
        if any(ref.subdb is not None for ref in rule.context_refs()):
            raise NotIncremental(
                "contexts reading derived subdatabases are not "
                "incremental")
        if any(isinstance(cond, AggComparison) for cond in rule.where):
            raise NotIncremental(
                "aggregation conditions are not incremental")
        self.terms: List[ClassTerm] = flat.terms
        self.ops: List[str] = flat.ops
        self.resolutions: List[EdgeResolution] = [
            universe.resolve_edge(self.terms[i].ref,
                                  self.terms[i + 1].ref)
            for i in range(len(self.terms) - 1)]
        self.rows: Set[Row] = set()
        self._initialized = False
        # The budget of the on_event call currently being applied.
        self._budget: Optional[QueryBudget] = None
        #: The base classes this maintainer reads — the match set is a
        #: pure function of their extensions, so the version vector over
        #: them decides whether the set can have moved at all.
        self.source_classes: Tuple[str, ...] = tuple(
            sorted({t.ref.cls for t in self.terms}))
        # Vector the match set is known current at (None = unknown).
        self._vector: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Full (re)initialization
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Compute the match set from scratch (used once, and as the
        ground truth in consistency tests)."""
        source = self.evaluator.evaluate(self.rule.context,
                                         self.rule.where,
                                         name="_incremental_init",
                                         budget=self._budget)
        self.rows = {tuple(p.values) for p in source.patterns}
        self._initialized = True
        self._vector = self.universe.db.version_vector(
            self.source_classes)

    def invalidate(self) -> None:
        """Discard the maintained match set (it may be mid-delta after
        an interrupted refresh); the next use re-initializes from
        scratch."""
        self.rows = set()
        self._initialized = False
        self._vector = None

    def is_current(self) -> bool:
        """Whether the match set is provably current: the version
        vector over the maintainer's source classes has not moved since
        the last (re)initialization or applied delta — in which case an
        event dispatch would be a no-op and can be skipped entirely."""
        if not self._initialized or self._vector is None:
            return False
        return self.universe.db.version_vector(
            self.source_classes) == self._vector

    # ------------------------------------------------------------------
    # Membership and row checks
    # ------------------------------------------------------------------

    def _passes(self, index: int, oid: OID) -> bool:
        """Is ``oid`` a member of slot ``index`` (class membership plus
        intra-class condition)?"""
        term = self.terms[index]
        db = self.universe.db
        if not db.has(oid) or not db.is_instance_of(oid, term.ref.cls):
            return False
        return self._passes_condition(index, oid)

    def _passes_condition(self, index: int, oid: OID) -> bool:
        """The intra-class condition alone — sufficient when ``oid`` was
        decoded from an intern table, whose membership already implies
        existence and class membership."""
        term = self.terms[index]
        if term.condition is None:
            return True

        def getter(attr_ref: AttrRef):
            return self.universe.attr_value(term.ref, oid, attr_ref.attr)

        return conditions.evaluate(term.condition, getter)

    def _where_keeps(self, row: Row) -> bool:
        if not self.rule.where:
            return True
        slots = [t.ref for t in self.terms]

        def getter(attr_ref: AttrRef):
            if attr_ref.owner is None:
                raise OQLSemanticError(
                    "where-subclause attributes must be qualified "
                    "(Class.attr)")
            # Shared with PatternEvaluator._slot_for: raises the same
            # OQLSemanticError for unknown or ambiguous references
            # instead of crashing (IndexError) or silently picking the
            # first match.
            index = resolve_slot_index(slots, attr_ref.owner)
            return self.universe.attr_value(slots[index], row[index],
                                            attr_ref.attr)

        return all(conditions.evaluate(cond, getter)
                   for cond in self.rule.where)

    # ------------------------------------------------------------------
    # Seeded expansion
    # ------------------------------------------------------------------

    def _expand(self, lo: int, hi: int, seed: Row) -> List[Row]:
        """Grow the pinned contiguous block ``[lo, hi] = seed`` outward
        to the full chain, honoring ops, extents and conditions.

        Uses the same frontier-batching as the evaluator's executor:
        one bulk neighbor lookup per hop, one candidate list per
        distinct endpoint (with membership/condition checks memoized),
        and — for ``!`` edges — the complement extent computed once per
        hop instead of once per row.

        Hops whose CSR adjacency index survives in the universe's
        compact store (:meth:`Universe.adjacency_if_ready` — built by
        the evaluator at initialization, kept valid by fine-grained
        event invalidation) are answered by index slices; intern-table
        membership stands in for the existence + class checks.  A hop
        whose index was invalidated by the very event being applied
        falls back to the link-dictionary path, so a delta refresh
        never pays an extent scan to rebuild.
        """
        n = len(self.terms)
        budget = self._budget
        rows: List[Row] = [seed]
        passes_cache: Dict[Tuple[int, OID], bool] = {}
        cond_cache: Dict[Tuple[int, OID], bool] = {}

        def passes(index: int, oid: OID) -> bool:
            key = (index, oid)
            cached = passes_cache.get(key)
            if cached is None:
                cached = passes_cache[key] = self._passes(index, oid)
            return cached

        def cond_ok(index: int, oid: OID) -> bool:
            key = (index, oid)
            cached = cond_cache.get(key)
            if cached is None:
                cached = cond_cache[key] = \
                    self._passes_condition(index, oid)
            return cached

        while rows and (lo > 0 or hi < n - 1):
            if budget is not None:
                budget.check_time()
            if lo > 0:
                edge, slot, forward = lo - 1, lo - 1, False
                lo -= 1
            else:
                edge, slot, forward = hi, hi + 1, True
                hi += 1
            op = self.ops[edge]
            resolution = self.resolutions[edge]
            end_index = -1 if forward else 0
            frontier = {row[end_index] for row in rows}
            src_slot = edge if forward else edge + 1
            adj = self.universe.adjacency_if_ready(
                resolution, forward, self.terms[src_slot].ref,
                self.terms[slot].ref)
            if adj is not None:
                src_index = adj.src.index
                decode = adj.tgt.oids
                candidates = {}
                if op == "*":
                    for oid in frontier:
                        i = src_index.get(oid.value)
                        ids = () if i is None else adj.row(i)
                        candidates[oid] = [o for o in
                                           map(decode.__getitem__, ids)
                                           if cond_ok(slot, o)]
                else:
                    full = adj.tgt.full_id_set
                    for oid in frontier:
                        i = src_index.get(oid.value)
                        ids = (full if i is None
                               else full.difference(adj.row(i)))
                        candidates[oid] = [o for o in
                                           map(decode.__getitem__, ids)
                                           if cond_ok(slot, o)]
            else:
                neighbor_map = self.universe.bulk_edge_neighbors(
                    frontier, resolution, forward=forward)
                if op == "*":
                    candidates = {oid: [o for o in neighbor_map[oid]
                                        if passes(slot, o)]
                                  for oid in frontier}
                else:
                    extent = self.universe.extent(self.terms[slot].ref)
                    candidates = {oid: [o for o in
                                        extent - neighbor_map[oid]
                                        if passes(slot, o)]
                                  for oid in frontier}
            extended: List[Row] = []
            if forward:
                for row in rows:
                    for oid in candidates[row[-1]]:
                        extended.append(row + (oid,))
            else:
                for row in rows:
                    for oid in candidates[row[0]]:
                        extended.append((oid,) + row)
            rows = extended
            if budget is not None:
                budget.charge_rows(len(rows))
        return [row for row in rows if self._where_keeps(row)]

    def _seed_at_slot(self, index: int, oid: OID) -> List[Row]:
        if not self._passes(index, oid):
            return []
        return self._expand(index, index, (oid,))

    def _seed_at_edge(self, k: int, left: OID, right: OID) -> List[Row]:
        if not (self._passes(k, left) and self._passes(k + 1, right)):
            return []
        return self._expand(k, k + 1, (left, right))

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def _edges_using(self, link_key: Tuple[str, str]) -> List[int]:
        out = []
        for k, resolution in enumerate(self.resolutions):
            if resolution.kind == "base" and \
                    resolution.resolved.link.key == link_key:
                out.append(k)
        return out

    def _oriented(self, k: int, owner: OID, target: OID
                  ) -> Tuple[OID, OID]:
        """The (slot k, slot k+1) assignment of a link's (owner, target)
        pair, honoring the edge's resolved orientation."""
        if self.resolutions[k].resolved.a_is_owner:
            return owner, target
        return target, owner

    def _add_rows(self, new_rows: List[Row]) -> bool:
        """Union seeded rows in; True when any was actually new."""
        changed = False
        for row in new_rows:
            if row not in self.rows:
                self.rows.add(row)
                changed = True
        return changed

    def on_event(self, event: UpdateEvent,
                 budget: Optional[QueryBudget] = None) -> bool:
        """Apply one update; returns True only when the match *set*
        actually changed — a no-op ASSOCIATE (re-linking an existing
        pair, or a link producing no new matches), a DISSOCIATE that
        removed nothing, or a SET_ATTRIBUTE that re-derived exactly the
        removed rows all report False, so the controller can skip
        re-registration and downstream re-derivation.

        ``budget`` bounds the whole delta application (seeded expansion
        included).  A trip raises
        :class:`~repro.oql.budget.BudgetExceeded` and may leave the
        match set mid-delta: the caller must :meth:`invalidate` before
        the next use (the incremental controller does, and counts the
        skip).
        """
        tracer = obs.TRACER
        span = tracer.start("maintain-event", target=self.rule.target,
                            kind=event.kind.name) \
            if tracer is not None else None
        try:
            if budget is not None:
                budget.ensure_started()
                prev = self._budget
                self._budget = budget
                try:
                    changed = self._apply_budgeted(event)
                finally:
                    self._budget = prev
            else:
                changed = self._apply_budgeted(event)
            self._vector = self.universe.db.version_vector(
                self.source_classes)
            if span is not None:
                span.set("changed", changed)
            return changed
        finally:
            if span is not None:
                tracer.finish(span)

    def _apply_budgeted(self, event: UpdateEvent) -> bool:
        if not self._initialized:
            self.initialize()
            return True
        if event.kind is UpdateKind.BATCH:
            changed = False
            for sub in event.sub_events:
                changed |= self._apply_budgeted(sub)
            return changed

        changed = False
        if event.kind in (UpdateKind.ASSOCIATE, UpdateKind.DISSOCIATE):
            owner, target = event.oids
            for k in self._edges_using(event.link):
                left, right = self._oriented(k, owner, target)
                adds_matches = (event.kind is UpdateKind.ASSOCIATE) == \
                    (self.ops[k] == "*")
                if adds_matches:
                    changed |= self._add_rows(
                        self._seed_at_edge(k, left, right))
                else:
                    kept = {
                        row for row in self.rows
                        if not (row[k] == left and row[k + 1] == right)}
                    changed |= len(kept) != len(self.rows)
                    self.rows = kept
        elif event.kind is UpdateKind.DELETE:
            # Deletion only removes rows: every vanished link involved
            # the deleted object, so complement pairs between surviving
            # objects are untouched and no new matches can appear.
            (oid,) = event.oids
            kept = {row for row in self.rows if oid not in row}
            changed = len(kept) != len(self.rows)
            self.rows = kept
        elif event.kind is UpdateKind.INSERT:
            (oid,) = event.oids
            if len(self.terms) == 1:
                changed = self._add_rows(self._seed_at_slot(0, oid))
            elif "!" in self.ops:
                # A fresh object with no links instantly matches every
                # complement edge of its class: seed at each slot.
                for index, term in enumerate(self.terms):
                    changed |= self._add_rows(
                        self._seed_at_slot(index, oid))
        elif event.kind is UpdateKind.SET_ATTRIBUTE:
            (oid,) = event.oids
            # Rows containing the object are re-validated by removal +
            # re-seeding; the set changed only if the re-derived rows
            # differ from the removed ones (a same-size swap counts, an
            # attribute write that leaves membership intact does not).
            removed = {row for row in self.rows if oid in row}
            readded: Set[Row] = set()
            for index in range(len(self.terms)):
                readded.update(self._seed_at_slot(index, oid))
            changed = removed != readded
            self.rows = (self.rows - removed) | readded
        elif event.kind is UpdateKind.SCHEMA:
            # Rule meanings may have shifted; fall back to a full
            # re-derivation and report whether the value moved.
            before_rows = set(self.rows)
            self.initialize()
            changed = self.rows != before_rows
        return changed

    # ------------------------------------------------------------------
    # Target construction
    # ------------------------------------------------------------------

    def source_subdatabase(self) -> Subdatabase:
        """The maintained match set as the rule's context subdatabase."""
        if not self._initialized:
            self.initialize()
        intension = IntensionalPattern(
            [t.ref for t in self.terms],
            [PatternEvaluator._edge_for(i, i + 1, self.ops[i],
                                        self.resolutions[i])
             for i in range(len(self.terms) - 1)])
        patterns = {ExtensionalPattern(row) for row in self.rows}
        return Subdatabase(f"_incremental_{self.rule.target}", intension,
                           patterns)

    def target_contribution(self) -> Subdatabase:
        """The rule's projected contribution to its target subdatabase."""
        return project_to_target(self.rule, self.source_subdatabase())
