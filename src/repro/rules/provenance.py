"""Provenance: *why* is a pattern in a derived subdatabase?

A classic deductive-database facility the paper's inference chains
invite: given a derived pattern (e.g. ``(ta1, c1)`` in May_teach), report
which rule(s) produced it and from which source rows — and, recursively,
why those source rows' derived components exist.

``engine`` integration::

    why = explain_pattern(engine, "May_teach", ("ta1", "c1"))
    print(why.render())

yields a justification tree such as::

    May_teach (ta1, c1)
      by rule R4 from (ta1, ta1, s3, c1)
        [Suggest_offer] why c1:
          Suggest_offer (c1)
            by rule R2 from (d1, c1, s2, st1) ... (+45 more)

Supports are found by re-projecting each contributing rule's context
match set, so they are exact for the current database state (the paper's
backward chaining guarantees the sources are derivable on demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import OQLSemanticError, UnknownSubdatabaseError
from repro.model.oid import OID
from repro.rules.derivation import _resolve_target_indices
from repro.subdb.pattern import ExtensionalPattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.rules.engine import RuleEngine


@dataclass
class Support:
    """One rule application supporting a derived pattern."""

    rule_label: str
    #: Source rows (full context matches) that project to the pattern.
    rows: List[Tuple[Optional[OID], ...]]
    #: For each derived class in the rule's context: nested explanations
    #: of one sample component (depth-limited).
    nested: List["Why"] = field(default_factory=list)


@dataclass
class Why:
    """The justification of one pattern of one derived subdatabase."""

    target: str
    pattern: Tuple[Optional[OID], ...]
    supports: List[Support]

    @property
    def is_supported(self) -> bool:
        return any(support.rows for support in self.supports)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        rendered_pattern = ", ".join("Null" if v is None else repr(v)
                                     for v in self.pattern)
        lines = [f"{pad}{self.target} ({rendered_pattern})"]
        if not self.is_supported:
            lines.append(f"{pad}  UNSUPPORTED — no rule derives this "
                         f"pattern from the current data")
            return "\n".join(lines)
        for support in self.supports:
            if not support.rows:
                continue
            sample = support.rows[0]
            row_text = ", ".join("Null" if v is None else repr(v)
                                 for v in sample)
            extra = (f" ... (+{len(support.rows) - 1} more)"
                     if len(support.rows) > 1 else "")
            lines.append(f"{pad}  by rule {support.rule_label} "
                         f"from ({row_text}){extra}")
            for nested in support.nested:
                lines.append(nested.render(indent + 2))
        return "\n".join(lines)


def _coerce_pattern(engine: "RuleEngine", subdb,
                    pattern) -> ExtensionalPattern:
    """Accept an ExtensionalPattern, a tuple of OIDs/None, or a tuple of
    OID labels."""
    if isinstance(pattern, ExtensionalPattern):
        return pattern
    by_label = {repr(entity.oid): entity.oid
                for entity in engine.db.iter_entities()}
    values = []
    for item in pattern:
        if item is None or isinstance(item, OID):
            values.append(item)
        elif isinstance(item, str):
            try:
                values.append(by_label[item])
            except KeyError:
                raise OQLSemanticError(
                    f"no object labeled {item!r}") from None
        else:
            raise OQLSemanticError(f"bad pattern component {item!r}")
    if len(values) != len(subdb.intension):
        raise OQLSemanticError(
            f"pattern has {len(values)} components; {subdb.name!r} has "
            f"{len(subdb.intension)} slots {list(subdb.slot_names)}")
    return ExtensionalPattern(values)


def explain_pattern(engine: "RuleEngine", target: str, pattern,
                    depth: int = 2) -> Why:
    """Justify one pattern of a derived subdatabase.

    ``pattern`` may be an :class:`ExtensionalPattern`, a tuple of
    OIDs/None, or a tuple of OID *labels* (``("ta1", "c1")``).  ``depth``
    bounds the recursion into derived sources.
    """
    subdb = engine.universe.get_subdb(target)
    wanted = _coerce_pattern(engine, subdb, pattern)
    supports: List[Support] = []
    for rule in engine.rules_for(target):
        source = engine.evaluator.evaluate(
            rule.context, rule.where, name=f"_why_{target}")
        indices: List[Optional[int]] = []
        for spec in rule.targets:
            resolved = _resolve_target_indices(rule, source, spec)
            indices.extend(resolved if resolved else [None])
        # Align the rule's projection with the (possibly merged) target
        # intension by slot name.
        slot_map = {}
        position = 0
        for spec_index, index in enumerate(indices):
            if index is None:
                position += 1
                continue
            ref = source.intension.slots[index]
            inner = ref.cls if ref.alias is None else \
                f"{ref.cls}_{ref.alias}"
            if subdb.intension.has_slot(inner):
                slot_map[subdb.intension.index_of(inner)] = index
            position += 1

        def projects_to(row: ExtensionalPattern) -> bool:
            for target_index in range(len(wanted)):
                source_index = slot_map.get(target_index)
                expected = wanted[target_index]
                actual = None if source_index is None \
                    else row[source_index]
                if expected != actual:
                    return False
            return True

        rows = sorted((tuple(row.values) for row in source.patterns
                       if projects_to(row)),
                      key=lambda r: [(-1 if v is None else v.value)
                                     for v in r])
        support = Support(rule_label=rule.label or target, rows=rows)
        if rows and depth > 0:
            sample = rows[0]
            for slot_index, ref in enumerate(source.intension.slots):
                if ref.subdb is None or slot_index >= len(sample):
                    continue
                component = sample[slot_index]
                if component is None:
                    continue
                try:
                    inner_subdb = engine.universe.get_subdb(ref.subdb)
                except UnknownSubdatabaseError:  # pragma: no cover
                    continue
                # Find a pattern of the source subdatabase containing
                # this component at a slot of the right class.
                for inner_pattern in inner_subdb.patterns:
                    if component in inner_pattern.values:
                        support.nested.append(explain_pattern(
                            engine, ref.subdb, inner_pattern,
                            depth=depth - 1))
                        break
        supports.append(support)
    return Why(target=target, pattern=tuple(wanted.values),
               supports=supports)
