"""Deductive rules: syntax, parsing, and static validation.

Concrete grammar (reusing the OQL parser's productions)::

    rule    := 'if' 'context' context_expr [ 'where' where_list ]
               'then' IDENT '(' target ( ',' target )* ')'
    target  := name [ '[' IDENT ( ',' IDENT )* ']' ]

A target ``name`` is a class reference as in expressions (``TA``,
``Grad_2``, ``Suggest_offer:Course``); a name with a **trailing
underscore** (``Grad_``) stands for *all hierarchy levels from 1 up* —
"the second argument to Grad_teaching_grad i.e. Grad_ stands for Grad_1,
Grad_2, ...; the intensional pattern of the derived subdatabase is
determined at run time" (Section 5.2, rule R6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from repro.errors import RuleSemanticError, RuleSyntaxError
from repro.errors import OQLSyntaxError
from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    ContextExpr,
    NotOp,
    WhereCond,
)
from repro.oql.lexer import tokenize
from repro.oql.parser import Parser
from repro.subdb.refs import ClassRef


@dataclass(frozen=True)
class TargetSpec:
    """One argument of a rule's Then clause."""

    ref: ClassRef
    #: Attribute subsetting: only these descriptive attributes are
    #: inherited by the target class; ``None`` = all (the default).
    attrs: Optional[Tuple[str, ...]] = None
    #: ``True`` for the trailing-underscore form (``Grad_``): every
    #: hierarchy level from 1 upward.
    all_levels: bool = False

    def __str__(self) -> str:
        name = f"{self.ref.cls}_" if self.all_levels else str(self.ref)
        if self.attrs is not None:
            return f"{name} [{', '.join(self.attrs)}]"
        return name


@dataclass(frozen=True)
class DeductiveRule:
    """A parsed deductive rule."""

    #: The subdatabase-id the rule derives (the Then clause's name).
    target: str
    context: ContextExpr
    where: Tuple[WhereCond, ...]
    targets: Tuple[TargetSpec, ...]
    #: Optional label for diagnostics (the paper's "R2", "R4", ...).
    label: Optional[str] = None
    #: The original source text, when parsed from text.
    text: Optional[str] = None

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------

    def context_refs(self) -> List[ClassRef]:
        """Every class reference in the context expression (slot order)."""
        refs: List[ClassRef] = []

        def walk(chain: Chain) -> None:
            for element in chain.elements:
                if isinstance(element, Chain):
                    walk(element)
                else:
                    refs.append(element.ref)

        walk(self.context.chain)
        return refs

    def where_refs(self) -> List[ClassRef]:
        """Every class reference mentioned by the Where subclause."""
        refs: List[ClassRef] = []

        def walk_cond(cond) -> None:
            if isinstance(cond, AggComparison):
                refs.append(cond.target)
                refs.append(cond.by)
            elif isinstance(cond, Comparison):
                for operand in (cond.left, cond.right):
                    if isinstance(operand, AttrRef) and \
                            operand.owner is not None:
                        refs.append(operand.owner)
            elif isinstance(cond, BoolOp):
                for item in cond.items:
                    walk_cond(item)
            elif isinstance(cond, NotOp):
                walk_cond(cond.item)

        for cond in self.where:
            walk_cond(cond)
        return refs

    def source_subdatabases(self) -> Set[str]:
        """The derived subdatabases this rule reads — its dependencies in
        the rule graph."""
        out: Set[str] = set()
        for ref in self.context_refs() + self.where_refs():
            if ref.subdb is not None:
                out.add(ref.subdb)
        return out

    def base_classes(self) -> Set[str]:
        """The base classes the rule reads directly (used to decide which
        database updates affect the rule's result)."""
        return {ref.cls for ref in self.context_refs()
                if ref.subdb is None}

    def validate(self) -> None:
        """Check that every target class appears in the context
        expression ("these classes should be a subset of the classes
        referenced in the association pattern expression of the If
        clause", Section 4.2)."""
        slot_names = {ref.slot for ref in self.context_refs()}
        classes = {ref.cls for ref in self.context_refs()}
        looped = self.context.loop is not None
        for target in self.targets:
            if target.all_levels:
                if target.ref.cls not in classes:
                    raise RuleSemanticError(
                        f"rule {self.label or self.target!r}: target "
                        f"{target} names class {target.ref.cls!r} which "
                        f"does not appear in the context expression")
                continue
            if target.ref.slot in slot_names:
                continue
            if looped and target.ref.alias is not None and \
                    target.ref.cls in classes:
                # Loop iterations generate alias levels at run time
                # (Section 5.2); Grad_2 is legal even though only Grad
                # and Grad_1 appear textually.  Depth is checked when the
                # rule is applied.
                continue
            matches = [ref for ref in self.context_refs()
                       if ref.cls == target.ref.cls]
            if target.ref.alias is None and len(matches) == 1:
                continue
            level_matches = [ref for ref in matches
                             if ref.alias == target.ref.alias]
            if target.ref.alias is not None and len(level_matches) == 1:
                # e.g. target Grad_2 naming the context class GG:Grad_2.
                continue
            raise RuleSemanticError(
                f"rule {self.label or self.target!r}: target {target} "
                f"does not identify a unique context class "
                f"(context classes: {sorted(slot_names)})")

    def __str__(self) -> str:
        parts = [f"if context {self.context}"]
        if self.where:
            parts.append("where " + " and ".join(str(w) for w in self.where))
        args = ", ".join(str(t) for t in self.targets)
        parts.append(f"then {self.target} ({args})")
        return "\n".join(parts)


class _RuleParser(Parser):
    """Extends the OQL parser with the rule production."""

    def rule(self) -> DeductiveRule:
        self.expect("keyword", "if")
        self.expect("keyword", "context")
        context = self.context_expr()
        where: Tuple[WhereCond, ...] = ()
        if self.accept("keyword", "where"):
            where = self.where_list()
        self.expect("keyword", "then")
        name = str(self.expect("ident").value)
        self.expect("op", "(")
        targets = [self._target()]
        while self.accept("op", ","):
            targets.append(self._target())
        self.expect("op", ")")
        token = self.peek()
        if token.kind != "eof":
            raise RuleSyntaxError(
                f"unexpected trailing input after rule: {token.value!r}")
        return DeductiveRule(target=name, context=context, where=where,
                             targets=tuple(targets))

    def _target(self) -> TargetSpec:
        first = self.expect("ident")
        text = str(first.value)
        if self.accept("op", ":"):
            second = self.expect("ident")
            text = f"{text}:{str(second.value)}"
        all_levels = False
        _, _, last_part = text.rpartition(":")
        if last_part.endswith("_"):
            all_levels = True
            text = text[:-1]
        ref = ClassRef.parse(text)
        attrs: Optional[Tuple[str, ...]] = None
        if self.accept("op", "["):
            names = [str(self.expect("ident").value)]
            while self.accept("op", ","):
                names.append(str(self.expect("ident").value))
            self.expect("op", "]")
            attrs = tuple(names)
        return TargetSpec(ref, attrs, all_levels)


def parse_rule(text: str, label: Optional[str] = None) -> DeductiveRule:
    """Parse and statically validate one deductive rule."""
    try:
        parsed = _RuleParser(tokenize(text)).rule()
    except OQLSyntaxError as exc:
        raise RuleSyntaxError(str(exc)) from exc
    rule = DeductiveRule(target=parsed.target, context=parsed.context,
                         where=parsed.where, targets=parsed.targets,
                         label=label, text=text)
    rule.validate()
    return rule
