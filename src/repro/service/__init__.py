"""The query service: serving the deductive engine over a socket.

``repro.service`` turns the in-process engine into a served system: an
asyncio JSON-lines (plus minimal HTTP) server exposing parse, query,
rule, derivation, session and stats endpoints, with per-request
:class:`~repro.oql.budget.QueryBudget` admission control, a server-level
concurrency limiter that sheds load with structured ``BUSY`` responses,
and per-request trace ids threaded through the PR 4 tracer.

Typical embedded use::

    from repro.service import QueryService, ServiceConfig

    service = QueryService(engine, ServiceConfig(port=7411))
    service.start()                # background thread + asyncio loop
    ...
    service.stop()

or standalone: ``python -m repro.service --port 7411``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_body,
    ok_body,
)
from repro.service.server import QueryService
from repro.service.session import ServerSession
from repro.service.streaming import StreamingSubscriptions

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueryService",
    "ServerSession",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "StreamingSubscriptions",
    "decode_frame",
    "encode_frame",
    "error_body",
    "ok_body",
]
