"""Standalone entry points::

    python -m repro.service --port 7411                # paper DB
    python -m repro.service --port 7411 --empty        # fresh session
    python -m repro.service --port 7411 --backend d/   # durable (WAL)
    python -m repro.service --connect HOST:PORT        # remote REPL
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a deductive session over JSON-lines/HTTP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="connect a remote REPL instead of serving")
    parser.add_argument("--empty", action="store_true",
                        help="serve a fresh, schema-less session")
    parser.add_argument("--session", metavar="PATH",
                        help="serve a saved session file")
    parser.add_argument("--backend", metavar="PATH",
                        help="durable WAL-backed storage directory "
                             "(recovered when it holds state)")
    parser.add_argument("--backend-kind", default="json",
                        choices=["json", "sqlite"])
    parser.add_argument("--max-concurrency", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--worker-mode", default="thread",
                        choices=["thread", "process"])
    parser.add_argument("--cache-bytes", type=int, default=0)
    parser.add_argument("--data-dir", metavar="DIR",
                        help="directory for session save/restore ops")
    parser.add_argument("--trace", action="store_true",
                        help="install the tracer (per-request trace ids)")
    args = parser.parse_args(argv)

    if args.connect:
        from repro.service.client import client_repl
        host, _, port = args.connect.rpartition(":")
        client_repl(host or "127.0.0.1", int(port))
        return

    from repro.service.config import ServiceConfig
    from repro.service.server import QueryService

    config = ServiceConfig(
        host=args.host, port=args.port,
        max_concurrency=args.max_concurrency,
        workers=args.workers, worker_mode=args.worker_mode,
        cache_bytes=args.cache_bytes,
        backend_path=args.backend, backend_kind=args.backend_kind,
        data_dir=args.data_dir, trace=args.trace)

    # A backend that already holds state recovers its own session
    # inside QueryService (engine=None); the flags below only seed a
    # fresh serve.
    engine = None
    if args.session:
        from repro.storage import load_session
        engine = load_session(args.session)
    elif not args.empty and args.backend is None:
        from repro.rules.engine import RuleEngine
        from repro.university import build_paper_database, build_sdb
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.universe.register(build_sdb(data))

    service = QueryService(engine, config)
    host, port = service.start()
    print(f"serving on {host}:{port} "
          f"(max_concurrency={config.max_concurrency})")
    try:
        service._thread.join()
    except KeyboardInterrupt:
        print("\nstopping")
        service.stop()


if __name__ == "__main__":  # pragma: no cover
    main(sys.argv[1:])
