"""A small blocking JSON-lines client.

Used by the conformance tests, the load driver, and the shell's
``--connect`` mode.  One :class:`ServiceClient` wraps one socket; its
requests execute in order (the server pins one snapshot per
connection), so a client *is* a session.

The client understands the streaming side of the protocol: frames
carrying ``"sub"`` and no ``"id"`` are subscription deltas, which may
arrive at any point — even between a request and its response.  They
are buffered per subscription and drained with :meth:`next_delta` /
:meth:`pending_deltas`, so request/response round trips stay
oblivious to live-query traffic.
"""

from __future__ import annotations

import json
import select
import socket
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ReproError


class ServiceError(ReproError):
    """A structured error response from the service."""

    def __init__(self, code: str, message: str,
                 detail: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = detail or {}

    @classmethod
    def from_error(cls, error: Dict[str, Any]) -> "ServiceError":
        detail = {key: value for key, value in error.items()
                  if key not in ("code", "message")}
        return cls(error.get("code", "INTERNAL"),
                   error.get("message", ""), detail)


class ServiceClient:
    """Blocking client for the JSON-lines protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._buf = b""
        self._pushed: Dict[int, Deque[Dict[str, Any]]] = {}
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    def _read_line(self, timeout: Optional[float] = None
                   ) -> Optional[bytes]:
        """One newline-terminated frame.  ``timeout=None`` blocks under
        the socket timeout; a number returns ``None`` when no complete
        frame arrives in time (without consuming partial data — the
        buffer keeps accumulating across calls)."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while b"\n" not in self._buf:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                ready, _, _ = select.select([self._sock], [], [],
                                            remaining)
                if not ready:
                    return None
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("service closed the connection")
            self._buf += chunk
        line, _, self._buf = self._buf.partition(b"\n")
        return line

    def _route_push(self, frame: Dict[str, Any]) -> None:
        self._pushed.setdefault(frame["sub"], deque()).append(frame)

    @staticmethod
    def _is_push(frame: Dict[str, Any]) -> bool:
        return "sub" in frame and "id" not in frame

    def request(self, op: str, *, raise_on_error: bool = True,
                **params: Any) -> Dict[str, Any]:
        """One request/response round trip.  Returns the full response
        frame; with ``raise_on_error`` (default) an ``ok: false``
        response raises :class:`ServiceError` instead.  Subscription
        delta frames arriving in between are buffered, not returned."""
        self._next_id += 1
        body = {"id": self._next_id, "op": op, **params}
        payload = json.dumps(body, sort_keys=True,
                             separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(payload)
        while True:
            line = self._read_line()
            response = json.loads(line.decode())
            if self._is_push(response):
                self._route_push(response)
                continue
            break
        if raise_on_error and not response.get("ok"):
            raise ServiceError.from_error(response.get("error", {}))
        return response

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience wrappers ------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")["result"]

    def parse(self, text: str) -> Dict[str, Any]:
        return self.request("parse", text=text)["result"]

    def query(self, text: str, *, name: Optional[str] = None,
              budget: Optional[Dict[str, Any]] = None,
              include: Optional[list] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"text": text}
        if name is not None:
            params["name"] = name
        if budget is not None:
            params["budget"] = budget
        if include is not None:
            params["include"] = include
        return self.request("query", **params)["result"]

    def derive(self, target: str, *,
               budget: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"target": target}
        if budget is not None:
            params["budget"] = budget
        return self.request("derive", **params)["result"]

    def rule_add(self, text: str, *, label: Optional[str] = None,
                 mode: Optional[str] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"text": text}
        if label is not None:
            params["label"] = label
        if mode is not None:
            params["mode"] = mode
        return self.request("rule_add", **params)["result"]

    def rule_remove(self, label: str) -> Dict[str, Any]:
        return self.request("rule_remove", label=label)["result"]

    def update(self, *updates: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("update", updates=list(updates))["result"]

    def refresh(self) -> Dict[str, Any]:
        return self.request("refresh")["result"]

    def session_save(self, path: str) -> Dict[str, Any]:
        return self.request("session_save", path=path)["result"]

    def session_restore(self, path: str) -> Dict[str, Any]:
        return self.request("session_restore", path=path)["result"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["result"]

    # -- live queries ---------------------------------------------------

    def subscribe(self, text: str, *,
                  budget: Optional[Dict[str, Any]] = None,
                  max_pending: Optional[int] = None) -> Dict[str, Any]:
        """Register a live query; the result carries ``subscription``
        (the id to poll deltas with) and the initial ``rows``."""
        params: Dict[str, Any] = {"text": text}
        if budget is not None:
            params["budget"] = budget
        if max_pending is not None:
            params["max_pending"] = max_pending
        return self.request("subscribe", **params)["result"]

    def unsubscribe(self, sub_id: int) -> Dict[str, Any]:
        return self.request("unsubscribe",
                            subscription=sub_id)["result"]

    def next_delta(self, sub_id: int, timeout: float = 5.0
                   ) -> Optional[Dict[str, Any]]:
        """The next delta frame for ``sub_id`` (buffered or read from
        the socket), or ``None`` when none arrives within ``timeout``
        seconds.  Frames for other subscriptions seen on the way are
        buffered, never dropped."""
        buffered = self._pushed.get(sub_id)
        if buffered:
            return buffered.popleft()
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            line = self._read_line(max(0.0, remaining))
            if line is None:
                return None
            frame = json.loads(line.decode())
            if not self._is_push(frame):
                # A response with no outstanding request cannot happen
                # in orderly single-threaded use; drop defensively.
                continue
            if frame["sub"] == sub_id:
                return frame
            self._route_push(frame)

    def drain_deltas(self, sub_id: int, *, idle: float = 0.25,
                     max_frames: int = 10_000
                     ) -> List[Dict[str, Any]]:
        """Every delta currently flowing for ``sub_id``: keeps reading
        until the stream stays quiet for ``idle`` seconds."""
        frames: List[Dict[str, Any]] = []
        while len(frames) < max_frames:
            frame = self.next_delta(sub_id, timeout=idle)
            if frame is None:
                return frames
            frames.append(frame)
        return frames

    def pending_deltas(self, sub_id: int) -> int:
        """How many delta frames are already buffered client-side."""
        return len(self._pushed.get(sub_id, ()))


def client_repl(host: str, port: int) -> None:  # pragma: no cover
    """A minimal interactive remote session (``--connect`` mode):
    ``context ...`` runs a query, ``if ...`` adds a rule, ``\\stats``
    prints server stats, ``\\refresh`` re-pins, ``\\quit`` leaves."""
    client = ServiceClient(host, port)
    print(f"connected to {host}:{port} — session "
          f"{client.ping()['session']}")
    try:
        while True:
            try:
                line = input("dood@remote> ").strip()
            except (EOFError, KeyboardInterrupt):
                print()
                break
            if not line:
                continue
            try:
                if line in ("\\quit", "\\exit"):
                    break
                elif line == "\\stats":
                    print(json.dumps(client.stats(), indent=1,
                                     sort_keys=True))
                elif line == "\\refresh":
                    print(client.refresh())
                elif line.lower().startswith("if"):
                    print(client.rule_add(line))
                else:
                    print(client.query(line)["rendered"])
            except ServiceError as exc:
                print(f"error: {exc}")
    finally:
        client.close()
