"""A small blocking JSON-lines client.

Used by the conformance tests, the load driver, and the shell's
``--connect`` mode.  One :class:`ServiceClient` wraps one socket; its
requests execute in order (the server pins one snapshot per
connection), so a client *is* a session.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.errors import ReproError


class ServiceError(ReproError):
    """A structured error response from the service."""

    def __init__(self, code: str, message: str,
                 detail: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = detail or {}

    @classmethod
    def from_error(cls, error: Dict[str, Any]) -> "ServiceError":
        detail = {key: value for key, value in error.items()
                  if key not in ("code", "message")}
        return cls(error.get("code", "INTERNAL"),
                   error.get("message", ""), detail)


class ServiceClient:
    """Blocking client for the JSON-lines protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    def request(self, op: str, *, raise_on_error: bool = True,
                **params: Any) -> Dict[str, Any]:
        """One request/response round trip.  Returns the full response
        frame; with ``raise_on_error`` (default) an ``ok: false``
        response raises :class:`ServiceError` instead."""
        self._next_id += 1
        body = {"id": self._next_id, "op": op, **params}
        payload = json.dumps(body, sort_keys=True,
                             separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(payload)
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line.decode())
        if raise_on_error and not response.get("ok"):
            raise ServiceError.from_error(response.get("error", {}))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience wrappers ------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")["result"]

    def parse(self, text: str) -> Dict[str, Any]:
        return self.request("parse", text=text)["result"]

    def query(self, text: str, *, name: Optional[str] = None,
              budget: Optional[Dict[str, Any]] = None,
              include: Optional[list] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"text": text}
        if name is not None:
            params["name"] = name
        if budget is not None:
            params["budget"] = budget
        if include is not None:
            params["include"] = include
        return self.request("query", **params)["result"]

    def derive(self, target: str, *,
               budget: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"target": target}
        if budget is not None:
            params["budget"] = budget
        return self.request("derive", **params)["result"]

    def rule_add(self, text: str, *, label: Optional[str] = None,
                 mode: Optional[str] = None) -> Dict[str, Any]:
        params: Dict[str, Any] = {"text": text}
        if label is not None:
            params["label"] = label
        if mode is not None:
            params["mode"] = mode
        return self.request("rule_add", **params)["result"]

    def rule_remove(self, label: str) -> Dict[str, Any]:
        return self.request("rule_remove", label=label)["result"]

    def update(self, *updates: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("update", updates=list(updates))["result"]

    def refresh(self) -> Dict[str, Any]:
        return self.request("refresh")["result"]

    def session_save(self, path: str) -> Dict[str, Any]:
        return self.request("session_save", path=path)["result"]

    def session_restore(self, path: str) -> Dict[str, Any]:
        return self.request("session_restore", path=path)["result"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["result"]


def client_repl(host: str, port: int) -> None:  # pragma: no cover
    """A minimal interactive remote session (``--connect`` mode):
    ``context ...`` runs a query, ``if ...`` adds a rule, ``\\stats``
    prints server stats, ``\\refresh`` re-pins, ``\\quit`` leaves."""
    client = ServiceClient(host, port)
    print(f"connected to {host}:{port} — session "
          f"{client.ping()['session']}")
    try:
        while True:
            try:
                line = input("dood@remote> ").strip()
            except (EOFError, KeyboardInterrupt):
                print()
                break
            if not line:
                continue
            try:
                if line in ("\\quit", "\\exit"):
                    break
                elif line == "\\stats":
                    print(json.dumps(client.stats(), indent=1,
                                     sort_keys=True))
                elif line == "\\refresh":
                    print(client.refresh())
                elif line.lower().startswith("if"):
                    print(client.rule_add(line))
                else:
                    print(client.query(line)["rendered"])
            except ServiceError as exc:
                print(f"error: {exc}")
    finally:
        client.close()
