"""Server configuration.

One :class:`ServiceConfig` collects everything the service composes
from the layers below it: the admission-control knobs (concurrency
limiter, frame cap, budget caps), the evaluator configuration the PR 5–7
layers added (``workers``/``worker_mode``/``cache_bytes``), optional
durable storage (``backend_path``/``backend_kind`` — every served write
is then WAL-journaled), and tracing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.service.protocol import MAX_FRAME_BYTES


@dataclass
class ServiceConfig:
    """Knobs of one :class:`~repro.service.server.QueryService`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the bound port is reported by
    #: ``QueryService.address`` once serving).
    port: int = 0

    # -- admission control ---------------------------------------------
    #: In-flight request cap across every connection.  A request
    #: arriving while this many are executing is *shed* with a
    #: structured ``BUSY`` response instead of queueing unboundedly —
    #: under overload the server stays responsive and the client learns
    #: immediately.
    max_concurrency: int = 8
    #: The ``retry_after_ms`` hint a BUSY response carries.
    busy_retry_after_ms: int = 50
    #: Requests (and responses) larger than this are refused.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Server-side ceilings on per-request budgets: a client-supplied
    #: limit is clamped to the cap, and a request carrying *no* budget
    #: gets the caps as its budget (``None`` caps leave that axis
    #: unbounded).  This is the tenant-isolation half of admission
    #: control — no single query can hold an executor slot forever.
    max_deadline_ms: Optional[float] = 30_000.0
    max_rows: Optional[int] = 5_000_000
    max_loop_levels: Optional[int] = 64

    # -- live queries ---------------------------------------------------
    #: Cap on concurrently active subscriptions across the service; a
    #: ``subscribe`` beyond it is shed with BUSY.
    max_subscriptions: int = 64
    #: Per-subscription outbox bound (also the ceiling for a
    #: client-requested ``max_pending``): when a consumer falls this
    #: many deltas behind, the backlog is dropped and replaced by one
    #: RESYNC frame carrying the full current result.
    subscription_max_pending: int = 256

    # -- engine composition (PR 5-7 layers) ----------------------------
    #: Partition workers per evaluation and their mode, as \\workers.
    workers: int = 1
    worker_mode: str = "thread"
    #: Result-cache budget in bytes (0: off), as \\cache.
    cache_bytes: int = 0
    #: When set, a durable WAL-backed backend is opened (or recovered)
    #: at this path and attached to the engine, as \\wal open.
    backend_path: Optional[str] = None
    backend_kind: str = "json"

    # -- observability -------------------------------------------------
    #: Install the tracer (if not already installed) so every request
    #: records a ``service-request`` root span and responses carry its
    #: trace id.
    trace: bool = False
    trace_max_traces: int = 256

    # -- session persistence -------------------------------------------
    #: Directory ``session_save``/``session_restore`` paths resolve
    #: under; file ops outside it are refused (NOT_FOUND).  ``None``
    #: disables the two endpoints.
    data_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
        if self.max_subscriptions < 1:
            raise ValueError("max_subscriptions must be >= 1")
        if self.subscription_max_pending < 1:
            raise ValueError("subscription_max_pending must be >= 1")
        if self.worker_mode not in ("thread", "process"):
            raise ValueError("worker_mode must be 'thread' or 'process'")

    def budget_caps(self) -> Dict[str, Any]:
        """The budget ceilings as a limits mapping."""
        return {"deadline_ms": self.max_deadline_ms,
                "max_rows": self.max_rows,
                "max_loop_levels": self.max_loop_levels}

    def resolve_data_path(self, name: str) -> Path:
        """Resolve a client-supplied session file name under
        ``data_dir``, refusing traversal outside it."""
        if self.data_dir is None:
            raise ValueError("session persistence is disabled "
                             "(no data_dir configured)")
        base = Path(self.data_dir).resolve()
        path = (base / name).resolve()
        if base != path and base not in path.parents:
            raise ValueError(f"path {name!r} escapes the data directory")
        path.parent.mkdir(parents=True, exist_ok=True)
        return path
