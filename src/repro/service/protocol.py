"""The wire protocol: newline-delimited JSON frames.

One request is one line of UTF-8 JSON terminated by ``\\n``::

    {"id": 7, "op": "query", "text": "context Teacher * Course",
     "budget": {"deadline_ms": 250, "max_rows": 10000}}

``id`` is echoed verbatim on the response so clients may pipeline;
``op`` names the endpoint; every other key is an operation parameter.
Responses are one line of JSON either way::

    {"id": 7, "ok": true, "result": {...}, "ms": 1.84, "trace_id": 12}
    {"id": 7, "ok": false, "error": {"code": "BUSY",
     "message": "...", "retry_after_ms": 50}}

Error codes are a closed set (:data:`ERROR_CODES`) so clients can
dispatch on them without string-matching messages.  ``BUSY`` and
``BUDGET_EXCEEDED`` are *structured shed responses*: the server returns
them instead of queueing or stalling, and they carry enough detail
(``retry_after_ms``; the budget verdict and spend) for a client to make
a sensible retry decision.

The same server port also answers minimal HTTP (``POST /v1/<op>`` with
a JSON object body; ``GET /v1/stats``; ``GET /healthz``) so the service
can sit behind ordinary load-balancer health checks — the first bytes
of a connection select the protocol.

**Delta frames.**  A connection with live subscriptions (the
``subscribe`` op) additionally receives *unsolicited* frames carrying
``"sub"`` and **no** ``"id"`` key — that absence is how clients route
them apart from request responses (see :func:`delta_body`)::

    {"sub": 3, "seq": 5, "kind": "delta", "version": 41,
     "vector": [0, 41, 17], "added": [[7, 12]], "removed": []}

``kind`` is ``delta`` (apply added/removed), ``resync`` (replace the
folded state with ``added`` — the bounded-outbox overflow and
budget-trip degradation), or ``closed`` (terminal, with ``error``).
Delta frames may interleave anywhere between responses — including
before the ``subscribe`` response that announced the subscription id.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError

#: Hard cap on one frame's encoded size (requests *and* responses).
#: A request larger than the server's configured limit is refused with
#: ``OVERSIZED`` and the connection is closed (the stream cannot be
#: resynchronized past an unread over-long line).
MAX_FRAME_BYTES = 1 << 20

#: The closed set of error codes responses may carry.
ERROR_CODES = frozenset({
    "BAD_FRAME",        # the line was not a JSON object
    "BAD_REQUEST",      # unknown op / missing or ill-typed parameter
    "OVERSIZED",        # frame exceeded the server's max_frame_bytes
    "BUSY",             # admission control shed the request
    "BUDGET_EXCEEDED",  # the request's QueryBudget tripped
    "PARSE_ERROR",      # OQL/rule text failed to parse
    "NOT_FOUND",        # unknown subdatabase / rule label / path
    "SEMANTIC",         # any other engine-reported ReproError
    "SHUTTING_DOWN",    # server is draining connections
    "INTERNAL",         # unexpected server-side failure
})


class ProtocolError(ReproError):
    """A malformed frame, carrying the error code to answer with."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        assert code in ERROR_CODES
        self.code = code


def encode_frame(body: Dict[str, Any]) -> bytes:
    """One response/request line: compact, key-sorted JSON + newline.

    Key-sorting makes encoding canonical — the conformance soak
    compares served bytes against serially-evaluated bytes.
    """
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one request line into its body dict."""
    try:
        body = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("BAD_FRAME",
                            f"request is not valid JSON: {exc}") from None
    if not isinstance(body, dict):
        raise ProtocolError(
            "BAD_FRAME",
            f"request must be a JSON object, got {type(body).__name__}")
    return body


def ok_body(request_id: Any, result: Dict[str, Any], *,
            ms: Optional[float] = None,
            trace_id: Optional[int] = None) -> Dict[str, Any]:
    """A success response frame body."""
    body: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if ms is not None:
        body["ms"] = round(ms, 3)
    if trace_id is not None:
        body["trace_id"] = trace_id
    return body


def error_body(request_id: Any, code: str, message: str,
               **detail: Any) -> Dict[str, Any]:
    """An error response frame body (``detail`` keys nest under
    ``error``, e.g. ``retry_after_ms`` for BUSY, ``verdict``/``rows``
    for BUDGET_EXCEEDED)."""
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(detail)
    return {"id": request_id, "ok": False, "error": error}


def delta_body(sub_id: int, *, seq: int, kind: str, version: int,
               vector, added, removed,
               error: Optional[str] = None) -> Dict[str, Any]:
    """An unsolicited subscription delta frame body.  Carries ``sub``
    and deliberately no ``id`` key — the discriminator clients route
    on."""
    body: Dict[str, Any] = {
        "sub": sub_id, "seq": seq, "kind": kind, "version": version,
        "vector": list(vector),
        "added": [list(row) for row in added],
        "removed": [list(row) for row in removed],
    }
    if error is not None:
        body["error"] = error
    return body


def parse_request(body: Dict[str, Any]) -> Tuple[Any, str, Dict[str, Any]]:
    """Split a request body into ``(id, op, params)``."""
    op = body.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("BAD_REQUEST",
                            "request carries no 'op' string")
    params = {key: value for key, value in body.items()
              if key not in ("id", "op")}
    return body.get("id"), op, params


def require_str(params: Dict[str, Any], key: str) -> str:
    """Fetch a required string parameter or raise ``BAD_REQUEST``."""
    value = params.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError("BAD_REQUEST",
                            f"op requires a non-empty string {key!r}")
    return value
