"""The asyncio query service.

:class:`QueryService` serves one :class:`~repro.rules.engine.RuleEngine`
over a socket.  The concurrency model:

* The **event loop** (one thread) accepts connections, frames requests,
  and applies *admission control*: at most ``max_concurrency`` requests
  execute at once, and a request arriving beyond that is answered with
  a structured ``BUSY`` error immediately — load is shed, never queued
  unboundedly, so latency stays bounded under overload.
* Admitted requests run on a **thread-pool executor** (evaluation is
  synchronous Python).  Each connection's requests execute in order;
  different connections execute concurrently.
* **Reads** (parse/query/derive/stats) evaluate against the
  connection's pinned :class:`~repro.service.session.ServerSession`
  snapshot.  **Writes** (rule add/remove, data updates, restore) are
  serialized through a service-level mutex *and* the database's
  write-preferring RWLock; the writing session's own pin is dropped so
  it observes its write, while other sessions keep their version until
  they ``refresh``.
* Every request carries a :class:`~repro.oql.budget.QueryBudget`
  clamped to the server's ceilings (``QueryBudget.from_limits``) —
  the second half of admission control: every admitted request is
  bounded, whatever the client asked for.
* With tracing on, each request runs under a ``service-request`` root
  span whose trace id is returned in the response — any production
  query is explainable after the fact
  (``obs.TRACER.recorder.get(trace_id)``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.errors import (
    OQLSyntaxError,
    ReproError,
    RuleSyntaxError,
    UnknownClassError,
    UnknownObjectError,
    UnknownSubdatabaseError,
)
from repro.model.oid import OID
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_body,
    ok_body,
    parse_request,
    require_str,
)
from repro.service.session import ServerSession
from repro.storage.serialize import subdatabase_to_dict

#: Error code -> HTTP status for the HTTP face of the protocol.
_HTTP_STATUS = {
    "BAD_FRAME": 400,
    "BAD_REQUEST": 400,
    "OVERSIZED": 413,
    "BUSY": 503,
    "BUDGET_EXCEEDED": 429,
    "PARSE_ERROR": 422,
    "NOT_FOUND": 404,
    "SEMANTIC": 422,
    "SHUTTING_DOWN": 503,
    "INTERNAL": 500,
}


class _OpError(Exception):
    """Internal: an operation failed with a structured error code."""

    def __init__(self, code: str, message: str, **detail: Any):
        super().__init__(message)
        self.code = code
        self.detail = detail


class QueryService:
    """Serve a rule engine over JSON-lines (and minimal HTTP)."""

    def __init__(self, engine=None, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.backend = None
        self._owns_backend = False
        if self.config.backend_path is not None:
            from repro.storage import open_backend
            backend = open_backend(self.config.backend_path,
                                   self.config.backend_kind)
            self._owns_backend = True
            if backend.has_state():
                if engine is not None:
                    backend.close()
                    raise ValueError(
                        f"storage at {self.config.backend_path} already "
                        f"holds a session; pass engine=None to recover "
                        f"it, or point the service elsewhere")
                engine = backend.recover()
            self.backend = backend
        if engine is None:
            from repro.model.database import Database
            from repro.model.schema import Schema
            from repro.rules.engine import RuleEngine
            engine = RuleEngine(Database(Schema("service")))
        self.engine = engine
        self._apply_engine_config(engine)
        if self.backend is not None:
            self.backend.attach(engine)
        if self.config.trace and obs.TRACER is None:
            obs.install(max_traces=self.config.trace_max_traces)

        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-service")
        #: Serializes every engine write the service performs (the
        #: database RWLock covers data mutations; this also covers
        #: rule-base mutation and engine swap, which the RWLock does
        #: not).
        self._write_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self._sessions: Dict[int, ServerSession] = {}
        # Counters live on the event-loop thread only.
        self._inflight = 0
        self.counters: Dict[str, int] = {
            "connections_total": 0,
            "requests_total": 0,
            "admitted_total": 0,
            "shed_total": 0,
            "errors_total": 0,
            "frames_bad": 0,
        }
        self._op_counts: Dict[str, int] = {}
        self._started_monotonic = time.monotonic()
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._writers: set = set()

        self._ops = {
            "ping": self._op_ping,
            "parse": self._op_parse,
            "query": self._op_query,
            "derive": self._op_derive,
            "rule_add": self._op_rule_add,
            "rule_remove": self._op_rule_remove,
            "update": self._op_update,
            "refresh": self._op_refresh,
            "session_save": self._op_session_save,
            "session_restore": self._op_session_restore,
            "stats": self._op_stats,
            "subscribe": self._op_subscribe,
            "unsubscribe": self._op_unsubscribe,
        }
        from repro.service.streaming import StreamingSubscriptions
        self.streaming = StreamingSubscriptions(self)

    def _apply_engine_config(self, engine) -> None:
        """Push workers/worker_mode/cache config into the engine's
        evaluators (same pairing the shell's \\workers and \\cache
        commands retarget)."""
        config = self.config
        evaluators = {id(engine.processor.evaluator):
                      engine.processor.evaluator,
                      id(engine.evaluator): engine.evaluator}
        for evaluator in evaluators.values():
            evaluator.workers = config.workers
            evaluator.worker_mode = config.worker_mode
            if config.cache_bytes > 0:
                evaluator.result_cache.max_bytes = config.cache_bytes
                evaluator.result_cache.enabled = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Run the server in the current event loop until :meth:`stop`
        (or task cancellation)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host,
                self.config.port,
                limit=self.config.max_frame_bytes + 2)
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for writer in list(self._writers):
                try:
                    writer.transport.abort()
                except Exception:
                    pass

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Serve on a background thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-service-loop",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout)
            raise RuntimeError(
                f"service failed to start: {self._startup_error}")
        assert self.address is not None
        return self.address

    def _thread_main(self) -> None:
        try:
            asyncio.run(self.serve())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if self._startup_error is None and not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop serving, drain executors, release owned resources.
        Idempotent."""
        loop, self._loop = self._loop, None
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._executor.shutdown(wait=True)
        self.streaming.close()
        for session in list(self._sessions.values()):
            session.close()
        self._sessions.clear()
        if self.backend is not None and self._owns_backend:
            self.backend.close()
            self.backend = None

    def __enter__(self) -> "QueryService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling (event-loop side)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counters["connections_total"] += 1
        session = ServerSession(next(self._session_ids),
                                lambda: self.engine)
        self._sessions[session.session_id] = session
        self._writers.add(writer)
        self.streaming.register_connection(session.session_id, writer)
        try:
            first = await self._read_frame(reader, writer)
            if first is None:
                return
            if first[:5] in (b"GET /", b"POST ", b"HEAD "):
                await self._handle_http(first, reader, writer, session)
                return
            await self._handle_jsonl_frame(first, writer, session)
            while True:
                line = await self._read_frame(reader, writer)
                if line is None:
                    return
                await self._handle_jsonl_frame(line, writer, session)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            self._sessions.pop(session.session_id, None)
            self.streaming.drop_connection(session.session_id)
            session.close()
            try:
                writer.close()
            except Exception:
                pass

    async def _read_frame(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter
                          ) -> Optional[bytes]:
        """One newline-terminated frame, or ``None`` at EOF/overflow.
        An over-long line is answered with OVERSIZED and the connection
        is closed (there is no resynchronizing past it)."""
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: a trailing unterminated fragment still counts as a
            # frame (curl-style clients may omit the final newline).
            return exc.partial or None
        except asyncio.LimitOverrunError:
            self.counters["frames_bad"] += 1
            await self._send(writer, encode_frame(error_body(
                None, "OVERSIZED",
                f"frame exceeds max_frame_bytes="
                f"{self.config.max_frame_bytes}")))
            return None
        if len(line) > self.config.max_frame_bytes:
            self.counters["frames_bad"] += 1
            await self._send(writer, encode_frame(error_body(
                None, "OVERSIZED",
                f"frame of {len(line)} bytes exceeds max_frame_bytes="
                f"{self.config.max_frame_bytes}")))
            return None
        return line

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: bytes) -> None:
        writer.write(payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _handle_jsonl_frame(self, line: bytes,
                                  writer: asyncio.StreamWriter,
                                  session: ServerSession) -> None:
        if not line.strip():
            return
        self.counters["requests_total"] += 1
        try:
            request_id, op, params = parse_request(decode_frame(line))
        except ProtocolError as exc:
            self.counters["frames_bad"] += 1
            self.counters["errors_total"] += 1
            await self._send(writer, encode_frame(
                error_body(None, exc.code, str(exc))))
            return
        body = await self._admit_and_execute(session, request_id, op,
                                             params)
        await self._send(writer, encode_frame(body))

    async def _admit_and_execute(self, session: ServerSession,
                                 request_id: Any, op: str,
                                 params: Dict[str, Any]
                                 ) -> Dict[str, Any]:
        """Admission control, then dispatch to the executor."""
        self._op_counts[op] = self._op_counts.get(op, 0) + 1
        if self._stop_event is not None and self._stop_event.is_set():
            return error_body(request_id, "SHUTTING_DOWN",
                              "server is draining")
        if self._inflight >= self.config.max_concurrency:
            self.counters["shed_total"] += 1
            return error_body(
                request_id, "BUSY",
                f"{self._inflight} requests in flight (limit "
                f"{self.config.max_concurrency})",
                retry_after_ms=self.config.busy_retry_after_ms)
        self._inflight += 1
        self.counters["admitted_total"] += 1
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(
                self._executor, self._execute, session, request_id, op,
                params)
        finally:
            self._inflight -= 1
        if not body.get("ok"):
            self.counters["errors_total"] += 1
        return body

    # ------------------------------------------------------------------
    # Request execution (worker-thread side)
    # ------------------------------------------------------------------

    def _execute(self, session: ServerSession, request_id: Any, op: str,
                 params: Dict[str, Any]) -> Dict[str, Any]:
        session.requests += 1
        started = time.perf_counter()
        tracer = obs.TRACER
        span = tracer.start("service-request", op=op,
                            session=session.session_id,
                            request=next(self._request_ids)) \
            if tracer is not None else None
        trace_id = span.trace_id if span is not None else None
        try:
            handler = self._ops.get(op)
            if handler is None:
                raise ProtocolError(
                    "BAD_REQUEST",
                    f"unknown op {op!r} (known: "
                    f"{', '.join(sorted(self._ops))})")
            result = handler(session, params)
            elapsed = (time.perf_counter() - started) * 1000.0
            return ok_body(request_id, result, ms=elapsed,
                           trace_id=trace_id)
        except BaseException as exc:
            return self._error_response(request_id, exc, trace_id)
        finally:
            if span is not None:
                tracer.finish(span)

    def _error_response(self, request_id: Any, exc: BaseException,
                        trace_id: Optional[int]) -> Dict[str, Any]:
        detail: Dict[str, Any] = {}
        if trace_id is not None:
            detail["trace_id"] = trace_id
        if isinstance(exc, _OpError):
            detail.update(exc.detail)
            return error_body(request_id, exc.code, str(exc), **detail)
        if isinstance(exc, ProtocolError):
            return error_body(request_id, exc.code, str(exc), **detail)
        if isinstance(exc, BudgetExceeded):
            return error_body(
                request_id, "BUDGET_EXCEEDED", str(exc),
                verdict=exc.verdict, elapsed_ms=round(exc.elapsed_ms, 3),
                rows=exc.rows, **detail)
        if isinstance(exc, (OQLSyntaxError, RuleSyntaxError)):
            return error_body(request_id, "PARSE_ERROR", str(exc),
                              **detail)
        if isinstance(exc, (UnknownSubdatabaseError, UnknownClassError,
                            UnknownObjectError)):
            return error_body(request_id, "NOT_FOUND", str(exc),
                              **detail)
        if isinstance(exc, ReproError):
            return error_body(request_id, "SEMANTIC", str(exc),
                              error_type=type(exc).__name__, **detail)
        if isinstance(exc, (ValueError, TypeError, KeyError)):
            return error_body(request_id, "BAD_REQUEST", str(exc),
                              **detail)
        return error_body(request_id, "INTERNAL",
                          f"{type(exc).__name__}: {exc}", **detail)

    def _budget(self, params: Dict[str, Any]) -> QueryBudget:
        """The request's admission budget: client limits clamped to the
        server ceilings (requests without a budget get the ceilings)."""
        limits = params.get("budget")
        if limits is not None and not isinstance(limits, dict):
            raise ProtocolError("BAD_REQUEST",
                                "'budget' must be an object of limits")
        try:
            return QueryBudget.from_limits(limits,
                                           self.config.budget_caps())
        except ValueError as exc:
            raise ProtocolError("BAD_REQUEST", str(exc)) from None

    # -- read ops -------------------------------------------------------

    def _op_ping(self, session: ServerSession,
                 params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "session": session.session_id}

    def _op_parse(self, session: ServerSession,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        """Syntax/semantic check without evaluation — the cheapest way
        for a client to validate input before spending budget."""
        text = require_str(params, "text")
        if text.lstrip().lower().startswith("if"):
            from repro.rules.rule import parse_rule
            rule = parse_rule(text, params.get("label"))
            return {"kind": "rule", "target": rule.target,
                    "label": rule.label,
                    "sources": sorted(rule.source_subdatabases()),
                    "base_classes": sorted(rule.base_classes()),
                    "canonical": str(rule)}
        from repro.oql.parser import parse_query
        query = parse_query(text)
        return {"kind": "query", "context": str(query.context),
                "where": [str(w) for w in query.where],
                "select": ([str(s) for s in query.select]
                           if query.select is not None else None),
                "operation": query.operation,
                "canonical": str(query)}

    def _op_query(self, session: ServerSession,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        text = require_str(params, "text")
        include = params.get("include") or []
        if not isinstance(include, list):
            raise ProtocolError("BAD_REQUEST",
                                "'include' must be a list")
        budget = self._budget(params)
        result = session.execute(text, name=params.get("name"),
                                 budget=budget)
        subdb = result.subdatabase
        out: Dict[str, Any] = {
            "name": subdb.name,
            "patterns": len(subdb),
            "classes": list(subdb.slot_names),
            "rendered": result.render(),
            "pinned_version": session.pinned_version(),
        }
        if result.op_result is not None:
            try:
                json.dumps(result.op_result)
                out["op_result"] = result.op_result
            except (TypeError, ValueError):
                out["op_result"] = repr(result.op_result)
        if "subdb" in include:
            out["subdatabase"] = subdatabase_to_dict(subdb)
        if "metrics" in include and result.metrics is not None:
            out["metrics"] = result.metrics.snapshot()
        return out

    def _op_derive(self, session: ServerSession,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        target = require_str(params, "target")
        budget = self._budget(params)
        subdb = session.derive(target, budget=budget)
        out = {"target": target, "patterns": len(subdb),
               "classes": list(subdb.slot_names),
               "pinned_version": session.pinned_version()}
        if "subdb" in (params.get("include") or []):
            out["subdatabase"] = subdatabase_to_dict(subdb)
        return out

    def _op_refresh(self, session: ServerSession,
                    params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pinned_version": session.refresh()}

    def _op_stats(self, session: ServerSession,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        engine = self.engine
        cache = engine.processor.evaluator.result_cache
        out: Dict[str, Any] = {
            "server": {
                "uptime_s": round(time.monotonic()
                                  - self._started_monotonic, 3),
                "max_concurrency": self.config.max_concurrency,
                "inflight": self._inflight,
                "sessions": len(self._sessions),
                "ops": dict(sorted(self._op_counts.items())),
                **self.counters,
            },
            "engine": engine.stats.snapshot(),
            "db": engine.db.stats(),
            "rules": [rule.label or rule.target
                      for rule in engine.rules],
            "workers": {"count": engine.processor.evaluator.workers,
                        "mode": engine.processor.evaluator.worker_mode},
            "cache": cache.stats(),
            "subscriptions": self.streaming.stats(),
            "tracing": obs.TRACER is not None,
        }
        if self.backend is not None:
            out["backend"] = {
                key: value for key, value in
                self.backend.status().items() if key != "root"}
        return out

    # -- write ops ------------------------------------------------------

    def _op_rule_add(self, session: ServerSession,
                     params: Dict[str, Any]) -> Dict[str, Any]:
        text = require_str(params, "text")
        mode = self._parse_mode(params.get("mode"))
        with self._write_lock:
            rule = self.engine.add_rule(text, label=params.get("label"),
                                        mode=mode)
        session.invalidate()
        return {"target": rule.target, "label": rule.label,
                "rules": len(self.engine.rules)}

    def _op_rule_remove(self, session: ServerSession,
                        params: Dict[str, Any]) -> Dict[str, Any]:
        label = require_str(params, "label")
        with self._write_lock:
            rule = self.engine.remove_rule(label)
        session.invalidate()
        return {"removed": rule.label or rule.target,
                "rules": len(self.engine.rules)}

    def _parse_mode(self, value: Optional[str]):
        if value is None:
            return None
        from repro.rules.control import (EvaluationMode,
                                         RuleChainingMode,
                                         RuleOrientedController)
        enum_cls = RuleChainingMode if isinstance(
            self.engine.controller, RuleOrientedController) \
            else EvaluationMode
        try:
            return enum_cls(value)
        except ValueError:
            raise ProtocolError(
                "BAD_REQUEST",
                f"unknown mode {value!r} (accepted: "
                f"{', '.join(m.value for m in enum_cls)})") from None

    def _op_update(self, session: ServerSession,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        """Apply data mutations.  ``updates`` is a list of records in
        the WAL wire shape (``storage/backends/events.py``), except
        inserts carry no OID — the server allocates and returns them.
        More than one record applies as one atomic batch."""
        updates = params.get("updates")
        if not isinstance(updates, list) or not updates:
            raise ProtocolError(
                "BAD_REQUEST",
                "'updates' must be a non-empty list of records")
        db = self.engine.db
        results = []
        with self._write_lock:
            if len(updates) == 1:
                results.append(self._apply_update(db, updates[0]))
            else:
                with db.batch():
                    for record in updates:
                        results.append(self._apply_update(db, record))
        session.invalidate()
        return {"applied": len(results), "results": results,
                "version": db.version}

    def _apply_update(self, db, record: Any) -> Dict[str, Any]:
        if not isinstance(record, dict):
            raise ProtocolError("BAD_REQUEST",
                                "each update must be an object")
        kind = record.get("kind")
        if kind == "insert":
            cls = record.get("cls")
            if not isinstance(cls, str):
                raise ProtocolError("BAD_REQUEST",
                                    "insert requires a 'cls' string")
            entity = db.insert(cls, record.get("label"),
                               **record.get("attrs", {}))
            return {"kind": "insert", "oid": entity.oid.value}
        if kind == "delete":
            db.delete(OID(int(record["oid"])))
            return {"kind": "delete", "oid": int(record["oid"])}
        if kind == "associate":
            db.associate(OID(int(record["owner"])), record["name"],
                         OID(int(record["target"])))
            return {"kind": "associate"}
        if kind == "dissociate":
            db.dissociate(OID(int(record["owner"])), record["name"],
                          OID(int(record["target"])))
            return {"kind": "dissociate"}
        if kind == "set_attribute":
            db.set_attribute(OID(int(record["oid"])), record["name"],
                             record["value"])
            return {"kind": "set_attribute", "oid": int(record["oid"])}
        raise ProtocolError(
            "BAD_REQUEST",
            f"unknown update kind {kind!r} (accepted: insert, delete, "
            f"associate, dissociate, set_attribute)")

    def _op_session_save(self, session: ServerSession,
                         params: Dict[str, Any]) -> Dict[str, Any]:
        name = require_str(params, "path")
        try:
            path = self.config.resolve_data_path(name)
        except ValueError as exc:
            raise _OpError("NOT_FOUND", str(exc)) from None
        from repro.storage import save_session
        with self._write_lock:
            saved = save_session(self.engine, path)
        return {"path": str(saved)}

    def _op_session_restore(self, session: ServerSession,
                            params: Dict[str, Any]) -> Dict[str, Any]:
        name = require_str(params, "path")
        if self.backend is not None:
            raise _OpError(
                "SEMANTIC",
                "session_restore is refused while a WAL backend is "
                "attached (the journal would diverge from the restored "
                "state); restore through the backend instead")
        try:
            path = self.config.resolve_data_path(name)
        except ValueError as exc:
            raise _OpError("NOT_FOUND", str(exc)) from None
        if not path.exists():
            raise _OpError("NOT_FOUND", f"no session file at {name!r}")
        from repro.storage import load_session
        restored = load_session(path)
        self._apply_engine_config(restored)
        with self._write_lock:
            self.engine = restored
        session.invalidate()
        stats = restored.db.stats()
        return {"objects": stats["objects"], "links": stats["links"],
                "rules": len(restored.rules)}

    # -- live queries ---------------------------------------------------

    def _op_subscribe(self, session: ServerSession,
                      params: Dict[str, Any]) -> Dict[str, Any]:
        """Register a live query on this connection.  The response is
        the snapshot-consistent initial result (``seq 0``); deltas then
        arrive as unsolicited ``"sub"`` frames.  The per-event budget is
        the request budget clamped to the server ceilings, exactly as
        for one-shot queries."""
        text = require_str(params, "text")
        budget = self._budget(params)
        limits = {key: value for key, value in
                  (("deadline_ms", budget.deadline_ms),
                   ("max_rows", budget.max_rows),
                   ("max_loop_levels", budget.max_loop_levels))
                  if value is not None}
        cap = self.config.subscription_max_pending
        max_pending = params.get("max_pending")
        if max_pending is None:
            max_pending = cap
        elif not isinstance(max_pending, int) or max_pending < 1:
            raise ProtocolError(
                "BAD_REQUEST",
                "'max_pending' must be a positive integer")
        else:
            max_pending = min(max_pending, cap)
        sub = self.streaming.subscribe(session, text,
                                       max_pending=max_pending,
                                       budget_limits=limits or None)
        initial = sub.initial
        return {"subscription": sub.id, "seq": initial.seq,
                "kind": initial.kind,
                "rows": [list(row) for row in initial.added],
                "vector": list(initial.vector),
                "version": initial.version,
                "classes": (list(sub.classes)
                            if sub.classes is not None else None),
                "incremental": sub.incremental,
                "max_pending": sub.max_pending}

    def _op_unsubscribe(self, session: ServerSession,
                        params: Dict[str, Any]) -> Dict[str, Any]:
        sub_id = params.get("subscription")
        if not isinstance(sub_id, int):
            raise ProtocolError(
                "BAD_REQUEST", "'subscription' must be an integer id")
        if not self.streaming.unsubscribe(session, sub_id):
            raise _OpError("NOT_FOUND",
                           f"no subscription {sub_id} on this session")
        return {"unsubscribed": sub_id}

    # ------------------------------------------------------------------
    # Minimal HTTP face
    # ------------------------------------------------------------------

    async def _handle_http(self, first_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           session: ServerSession) -> None:
        """One HTTP/1.x request per connection (Connection: close)."""
        try:
            method, target, _ = \
                first_line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            await self._send_http(writer, 400, error_body(
                None, "BAD_FRAME", "malformed HTTP request line"))
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_frame_bytes:
            await self._send_http(writer, 413, error_body(
                None, "OVERSIZED",
                f"body of {length} bytes exceeds max_frame_bytes="
                f"{self.config.max_frame_bytes}"))
            return
        raw = await reader.readexactly(length) if length else b"{}"
        if method == "GET" and target in ("/healthz", "/health"):
            await self._send_http(writer, 200,
                                  {"ok": True, "inflight": self._inflight})
            return
        if not target.startswith("/v1/"):
            await self._send_http(writer, 404, error_body(
                None, "NOT_FOUND", f"unknown path {target!r}"))
            return
        op = target[len("/v1/"):]
        if op in ("subscribe", "unsubscribe"):
            await self._send_http(writer, _HTTP_STATUS["SEMANTIC"],
                                  error_body(
                None, "SEMANTIC",
                "subscriptions require the JSON-lines protocol (HTTP "
                "connections close after one response)"))
            return
        if method == "GET":
            params: Dict[str, Any] = {}
        else:
            try:
                body = decode_frame(raw)
            except ProtocolError as exc:
                await self._send_http(
                    writer, _HTTP_STATUS[exc.code],
                    error_body(None, exc.code, str(exc)))
                return
            params = {key: value for key, value in body.items()
                      if key not in ("id", "op")}
        self.counters["requests_total"] += 1
        response = await self._admit_and_execute(session, None, op,
                                                 params)
        status = 200 if response.get("ok") \
            else _HTTP_STATUS.get(response["error"]["code"], 500)
        await self._send_http(writer, status, response)

    async def _send_http(self, writer: asyncio.StreamWriter, status: int,
                         body: Dict[str, Any]) -> None:
        payload = encode_frame(body)
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 422: "Unprocessable Entity",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        await self._send(writer, head + payload)
