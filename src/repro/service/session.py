"""Per-connection server sessions.

Each connection owns one :class:`ServerSession`: a lazily opened
snapshot-pinned :class:`~repro.oql.query.QueryProcessor` (the engine's
``snapshot_session``), so every read the connection issues evaluates
against one consistent database version — concurrent writers never
tear a client's view mid-conversation.  The pin is *refreshable on
demand*: the ``refresh`` op (and every write the session itself
performs) closes the snapshot so the next read pins the current
version.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.oql.budget import QueryBudget
from repro.oql.query import QueryProcessor, QueryResult


class ServerSession:
    """One connection's pinned view of the engine.

    Not thread-safe by design: the server dispatches one request of a
    connection at a time (requests pipeline on the wire but execute in
    order), so a session is only ever used by one executor thread at
    once.  ``close`` may race a late request, hence the small lock
    around snapshot lifecycle.
    """

    def __init__(self, session_id: int, engine) -> None:
        self.session_id = session_id
        # ``engine`` may be a RuleEngine or a zero-arg callable
        # returning one — the service passes a getter so sessions pick
        # up an engine swapped by ``session_restore`` at their next
        # refresh, without the server rewiring every live session.
        self._engine_ref = engine if callable(engine) else (lambda: engine)
        self.requests = 0
        #: Subscription ids owned by this session's connection —
        #: maintained by the streaming layer, used for ownership checks
        #: (only the subscribing session may unsubscribe) and reaped by
        #: the connection's close handler.
        self.subscriptions: set = set()
        self._processor: Optional[QueryProcessor] = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def engine(self):
        return self._engine_ref()

    # -- snapshot lifecycle --------------------------------------------

    def processor(self) -> QueryProcessor:
        """The pinned snapshot processor, opened on first use."""
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            if self._processor is None:
                self._processor = self.engine.snapshot_session()
            return self._processor

    def pinned_version(self) -> Optional[int]:
        with self._lock:
            if self._processor is None:
                return None
            return self._processor.universe.pinned_version

    def refresh(self) -> int:
        """Drop the pinned snapshot; the next read pins the current
        database version.  Returns the version now pinned."""
        self._drop_snapshot()
        return self.processor().universe.pinned_version

    def invalidate(self) -> None:
        """Drop the pin without reopening (used after this session
        performs a write, so its own next read observes the write)."""
        self._drop_snapshot()

    def _drop_snapshot(self) -> None:
        with self._lock:
            processor, self._processor = self._processor, None
        if processor is not None:
            processor.universe.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            processor, self._processor = self._processor, None
        if processor is not None:
            processor.universe.close()

    # -- evaluation -----------------------------------------------------

    def execute(self, text: str, name: Optional[str] = None,
                budget: Optional[QueryBudget] = None) -> QueryResult:
        """Run one read query against the pinned snapshot.

        Mirrors ``RuleEngine.query``'s budget handling: the budget is
        also installed ambiently on the session evaluator so
        backward-chained derivations (which flow through the snapshot's
        provider, not through an argument) charge the same budget as
        the query itself.
        """
        processor = self.processor()
        evaluator = processor.evaluator
        if budget is not None:
            budget.start()
            evaluator.budget = budget
        try:
            return processor.execute(text, name=name, budget=budget)
        finally:
            if budget is not None:
                evaluator.budget = None

    def derive(self, target: str,
               budget: Optional[QueryBudget] = None):
        """Materialize one derived subdatabase into the session's
        private snapshot registry (backward chaining under budget)."""
        processor = self.processor()
        evaluator = processor.evaluator
        if budget is not None:
            budget.start()
            evaluator.budget = budget
        try:
            return processor.universe.get_subdb(target)
        finally:
            if budget is not None:
                evaluator.budget = None

    def describe(self) -> Dict[str, Any]:
        return {"session": self.session_id,
                "requests": self.requests,
                "pinned_version": self.pinned_version()}
