"""Streaming subscriptions over the service protocol.

Bridges the engine-level :class:`~repro.oql.subscribe.SubscriptionManager`
to connections: the ``subscribe`` op registers a live query for the
calling session's connection, and every delta the manager enqueues is
flushed to that connection as an unsolicited *delta frame* — a
JSON-lines frame carrying ``"sub"`` and no ``"id"``, so clients can
route it apart from request responses (see
:mod:`repro.service.protocol`).

Threading: the manager's ``on_ready`` callback fires on the mutator's
thread while the database write lock is held, so it only schedules —
``loop.call_soon_threadsafe`` hops to the event loop, where an
:class:`asyncio.Lock` per subscription serializes flushes (frames reach
the socket in ``seq`` order).  Backpressure toward the engine is the
manager's bounded outbox; backpressure toward the socket is
``writer.drain()``.

Lifecycle: a connection's close (clean or mid-stream disconnect) reaps
every subscription it owned; when the last subscription goes the
manager detaches its database listener, so an idle service touches the
database exactly as it did before this module existed (the soak tier
asserts listener counts return to baseline).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional, Set

from repro.oql.subscribe import Subscription, SubscriptionManager
from repro.service.protocol import ProtocolError, delta_body, encode_frame


class _Entry:
    """One live subscription's connection-side state."""

    __slots__ = ("sub", "session_id", "writer", "flush_lock")

    def __init__(self, sub: Subscription, session_id: int, writer):
        self.sub = sub
        self.session_id = session_id
        self.writer = writer
        self.flush_lock = asyncio.Lock()


class StreamingSubscriptions:
    """Subscription registry of one
    :class:`~repro.service.server.QueryService`."""

    def __init__(self, service):
        self._service = service
        self._manager: Optional[SubscriptionManager] = None
        self._lock = threading.Lock()
        self._entries: Dict[int, _Entry] = {}
        self._writers: Dict[int, Any] = {}
        self.counters: Dict[str, int] = {
            "subscribes": 0, "unsubscribes": 0, "reaped": 0,
            "frames": 0, "dropped_frames": 0,
        }

    @property
    def manager(self) -> SubscriptionManager:
        """The engine-level manager, created on first use (so a service
        that never serves a subscribe leaves no listener anywhere)."""
        with self._lock:
            if self._manager is None:
                self._manager = SubscriptionManager(
                    self._service.engine,
                    max_pending=self._service.config
                    .subscription_max_pending)
            return self._manager

    def active_count(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Connection lifecycle (event-loop side)
    # ------------------------------------------------------------------

    def register_connection(self, session_id: int, writer) -> None:
        with self._lock:
            self._writers[session_id] = writer

    def drop_connection(self, session_id: int) -> int:
        """Reap every subscription the connection owned; returns how
        many were reaped."""
        with self._lock:
            self._writers.pop(session_id, None)
            doomed = [sub_id for sub_id, entry in self._entries.items()
                      if entry.session_id == session_id]
            manager = self._manager
        for sub_id in doomed:
            with self._lock:
                self._entries.pop(sub_id, None)
            if manager is not None:
                manager.unsubscribe(sub_id)
        self.counters["reaped"] += len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    # Ops (worker-thread side)
    # ------------------------------------------------------------------

    def subscribe(self, session, text: str, *,
                  max_pending: int,
                  budget_limits: Optional[Dict[str, Any]]
                  ) -> Subscription:
        with self._lock:
            writer = self._writers.get(session.session_id)
            active = len(self._entries)
        if writer is None:
            raise ProtocolError(
                "SEMANTIC",
                "subscriptions require a persistent JSON-lines "
                "connection (not available over HTTP)")
        limit = self._service.config.max_subscriptions
        if active >= limit:
            raise ProtocolError(
                "BUSY",
                f"{active} subscriptions active (limit {limit})")
        loop = self._service._loop

        def on_ready(sub: Subscription) -> None:
            # Mutator thread, write lock held: schedule, never block.
            try:
                loop.call_soon_threadsafe(self._flush_soon, sub.id)
            except RuntimeError:  # loop closed during shutdown
                pass

        sub = self.manager.subscribe(text, max_pending=max_pending,
                                     budget_limits=budget_limits,
                                     on_ready=on_ready)
        with self._lock:
            self._entries[sub.id] = _Entry(sub, session.session_id,
                                           writer)
        session.subscriptions.add(sub.id)
        self.counters["subscribes"] += 1
        # A write may have enqueued deltas between registration inside
        # the manager and the entry above; flush anything pending.
        try:
            loop.call_soon_threadsafe(self._flush_soon, sub.id)
        except RuntimeError:
            pass
        return sub

    def unsubscribe(self, session, sub_id: int) -> bool:
        with self._lock:
            entry = self._entries.get(sub_id)
        if entry is None or entry.session_id != session.session_id:
            return False
        with self._lock:
            self._entries.pop(sub_id, None)
        session.subscriptions.discard(sub_id)
        self.manager.unsubscribe(sub_id)
        self.counters["unsubscribes"] += 1
        return True

    # ------------------------------------------------------------------
    # Delta flushing (event-loop side)
    # ------------------------------------------------------------------

    def _flush_soon(self, sub_id: int) -> None:
        asyncio.ensure_future(self._flush(sub_id))

    async def _flush(self, sub_id: int) -> None:
        with self._lock:
            entry = self._entries.get(sub_id)
        if entry is None:
            return
        async with entry.flush_lock:
            for delta in entry.sub.poll():
                frame = encode_frame(delta_body(
                    sub_id, seq=delta.seq, kind=delta.kind,
                    version=delta.version, vector=delta.vector,
                    added=delta.added, removed=delta.removed,
                    error=delta.error))
                try:
                    entry.writer.write(frame)
                    await entry.writer.drain()
                    self.counters["frames"] += 1
                except (ConnectionError, OSError):
                    # The connection is gone; its close handler reaps.
                    self.counters["dropped_frames"] += 1
                    return

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {"active": len(self._entries),
                                   **self.counters}
            manager = self._manager
        if manager is not None:
            out["manager"] = dict(manager.counters)
            out["db_listener_attached"] = manager._attached
        return out

    def close(self) -> None:
        with self._lock:
            ids = list(self._entries)
            self._entries.clear()
            self._writers.clear()
            manager = self._manager
        if manager is not None:
            manager.close()
