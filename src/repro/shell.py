"""An interactive shell for the deductive object-oriented database.

Run::

    python -m repro.shell                  # the paper's University DB
    python -m repro.shell --empty          # a fresh, schema-less session
    python -m repro.shell --session f.json # reopen a saved session

Anything starting with ``context`` runs as an OQL query; anything
starting with ``if`` is added as a deductive rule.  Meta-commands start
with a backslash::

    \\help                 this text
    \\schema               render the S-diagram
    \\class NAME           one class: attributes, associations, hierarchy
    \\subdbs               materialized derived subdatabases
    \\subdb NAME           describe one subdatabase (derives on demand)
    \\rules                the rule base
    \\explain QUERY        the backward-chaining plan for a query
    \\metrics              instrumentation of the last query
    \\budget [SPEC]        show or set the query budget; SPEC is
                          space-separated limits (deadline_ms=100
                          max_rows=10000 max_loop_levels=8), or "off"
    \\trace [ARG]          query tracing; ARG is "on", "off", "show"
                          (pretty tree of the last trace), or
                          "save PATH" (Chrome trace JSON); bare
                          \\trace reports the current state
    \\cache [ARG]          cross-query result cache; ARG is "on",
                          "off", "stats" (entries, bytes, hit/miss
                          counters), or "clear"; bare \\cache reports
                          the current state
    \\workers [N] [MODE]   partition-parallel execution; N is the
                          worker count (1 = serial) and MODE is
                          "threads" or "processes"; bare \\workers
                          reports the current setting
    \\index [ARG]          secondary value indexes over base-class
                          attributes; ARG is "add CLS ATTR" (declare —
                          equality and range conditions on that
                          attribute then probe the index instead of
                          scanning), "drop CLS ATTR", "stats"
                          (per-index row/distinct/type counts), or
                          "auto N" (auto-declare indexes for condition
                          attributes on extents of N+ rows; "auto off"
                          disables); bare \\index lists declarations
    \\why TARGET l1 l2 ..  justify a derived pattern (OID labels)
    \\stats                engine statistics
    \\save PATH            persist the session as JSON
    \\wal [ARG]            durable WAL-backed storage; ARG is
                          "open PATH [json|sqlite]" (attach a backend
                          and journal every update from now on),
                          "sync" (force the fsync barrier),
                          "compact" (drop history before the newest
                          checkpoint), or bare \\wal for status
    \\checkpoint           snapshot the session into the backend
                          (watermarks the WAL replay prefix)
    \\restore SEQ          rewind the session to WAL offset SEQ
                          (point-in-time restore; bare \\restore
                          recovers the newest durable state)
    \\serve [ARG]          serve this session over a socket; ARG is
                          "start [HOST:]PORT [limit=N]" (JSON-lines +
                          HTTP on a background thread; limit caps
                          concurrent requests), "stop", or bare
                          \\serve for status.  Connect with
                          ``python -m repro.shell --connect HOST:PORT``
    \\subscribe QUERY      watch a query live: prints the initial
                          result, then +/- row deltas after every
                          relevant update (unrelated-class writes
                          never wake it); bare \\subscribe lists the
                          active subscriptions
    \\unsubscribe ID       cancel a live subscription
    \\quit                 leave

A trailing backslash continues the statement on the next line.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional, TextIO

from repro import obs
from repro.errors import ReproError
from repro.model.dictionary import Dictionary
from repro.rules.engine import RuleEngine


class Shell:
    """The command interpreter, decoupled from stdin for testability."""

    PROMPT = "dood> "
    CONTINUATION = "....> "

    def __init__(self, engine: RuleEngine, out: Optional[TextIO] = None):
        self.engine = engine
        self.out = out or sys.stdout
        self._buffer: List[str] = []
        self._last_metrics = None
        self._budget = None
        self._commands = {
            "help": self._cmd_help,
            "schema": self._cmd_schema,
            "class": self._cmd_class,
            "subdbs": self._cmd_subdbs,
            "subdb": self._cmd_subdb,
            "rules": self._cmd_rules,
            "explain": self._cmd_explain,
            "metrics": self._cmd_metrics,
            "budget": self._cmd_budget,
            "trace": self._cmd_trace,
            "cache": self._cmd_cache,
            "workers": self._cmd_workers,
            "index": self._cmd_index,
            "why": self._cmd_why,
            "stats": self._cmd_stats,
            "save": self._cmd_save,
            "wal": self._cmd_wal,
            "checkpoint": self._cmd_checkpoint,
            "restore": self._cmd_restore,
            "serve": self._cmd_serve,
            "subscribe": self._cmd_subscribe,
            "unsubscribe": self._cmd_unsubscribe,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }
        self._service = None
        self._sub_manager = None

    # ------------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session ends."""
        if line.rstrip().endswith("\\"):
            self._buffer.append(line.rstrip()[:-1])
            return True
        if self._buffer:
            self._buffer.append(line)
            line = " ".join(self._buffer)
            self._buffer = []
        stripped = line.strip()
        if not stripped:
            return True
        try:
            if stripped.startswith("\\"):
                alive = self._meta(stripped[1:])
                if alive:
                    self._drain_subscriptions()
                return alive
            lowered = stripped.lower()
            if lowered.startswith("if"):
                rule = self.engine.add_rule(stripped)
                self._print(f"rule added: derives {rule.target!r}")
            elif lowered.startswith("context"):
                from repro.oql.budget import BudgetExceeded
                try:
                    result = self.engine.query(stripped,
                                               budget=self._budget)
                except BudgetExceeded as exc:
                    # Keep the partial metrics inspectable (\metrics
                    # shows the verdict and how far the query got).
                    self._last_metrics = exc.metrics
                    if exc.trace_id is not None:
                        self._print(f"partial trace {exc.trace_id} "
                                    f"recorded — \\trace show")
                    raise
                self._last_metrics = result.metrics
                self._print(result.render())
            else:
                self._print("unrecognized input — queries start with "
                            "'context', rules with 'if', commands with "
                            "'\\' (try \\help)")
        except ReproError as exc:
            self._print(f"error: {exc}")
        self._drain_subscriptions()
        return True

    @property
    def pending(self) -> bool:
        """True while a continued (backslash) statement is buffered."""
        return bool(self._buffer)

    # ------------------------------------------------------------------
    # Meta-commands
    # ------------------------------------------------------------------

    def _meta(self, text: str) -> bool:
        name, _, argument = text.partition(" ")
        command = self._commands.get(name.lower())
        if command is None:
            self._print(f"unknown command \\{name} (try \\help)")
            return True
        return command(argument.strip())

    def _cmd_help(self, _: str) -> bool:
        self._print(__doc__.strip())
        return True

    def _cmd_schema(self, _: str) -> bool:
        self._print(Dictionary(self.engine.db.schema).render_sdiagram())
        return True

    def _cmd_class(self, name: str) -> bool:
        if not name:
            self._print("usage: \\class NAME")
            return True
        info = Dictionary(self.engine.db.schema).class_info(name)
        self._print(f"class {info['name']}  "
                    f"({len(self.engine.db.extent(name))} instances)")
        if info["superclasses"]:
            self._print(f"  superclasses: "
                        f"{', '.join(info['superclasses'])}")
        if info["subclasses"]:
            self._print(f"  subclasses: {', '.join(info['subclasses'])}")
        for attr, domain in info["attributes"].items():
            self._print(f"  attribute {attr}: {domain}")
        for assoc in info["associations"]:
            self._print(f"  {assoc}")
        return True

    def _cmd_subdbs(self, _: str) -> bool:
        names = self.engine.universe.subdb_names
        if not names:
            self._print("(no materialized subdatabases)")
        for name in names:
            subdb = self.engine.universe.get_subdb(name)
            self._print(f"{name}: classes "
                        f"{', '.join(subdb.slot_names)} — "
                        f"{len(subdb)} patterns")
        return True

    def _cmd_subdb(self, name: str) -> bool:
        if not name:
            self._print("usage: \\subdb NAME")
            return True
        self._print(self.engine.universe.get_subdb(name).describe())
        return True

    def _cmd_rules(self, _: str) -> bool:
        if not self.engine.rules:
            self._print("(no rules)")
        for rule in self.engine.rules:
            label = f"[{rule.label}] " if rule.label else ""
            self._print(f"{label}{rule}")
            self._print("")
        return True

    def _cmd_explain(self, query: str) -> bool:
        if not query:
            self._print("usage: \\explain context ...")
            return True
        self._print(self.engine.explain(query).render())
        return True

    def _cmd_metrics(self, _: str) -> bool:
        if self._last_metrics is None:
            self._print("(no query has run yet)")
            return True
        for key, value in self._last_metrics.snapshot().items():
            self._print(f"{key}: {value}")
        for part in self._last_metrics.partitions:
            extra = ""
            if part.get("mode") == "process":
                extra = (f" [{part['mode']} pid={part['pid']} "
                         f"cpu={part['cpu_ms']:.2f} ms]")
            elif part.get("mode"):
                extra = f" [{part['mode']}]"
            self._print(f"partition {part['partition']}: "
                        f"{part['anchor_rows']} anchor rows -> "
                        f"{part['rows_out']} rows in {part['ms']:.2f} ms"
                        f"{extra}")
        described = self._last_metrics.describe_plans()
        if described:
            self._print(described)
        return True

    def _cmd_budget(self, spec: str) -> bool:
        from repro.oql.budget import QueryBudget
        if not spec:
            self._print(repr(self._budget) if self._budget is not None
                        else "(no budget set)")
            return True
        if spec.lower() in ("off", "none"):
            self._budget = None
            self._print("budget cleared")
            return True
        limits = {}
        for part in spec.split():
            key, eq, value = part.partition("=")
            if not eq or key not in ("deadline_ms", "max_rows",
                                     "max_loop_levels"):
                self._print("usage: \\budget [deadline_ms=N] [max_rows=N] "
                            "[max_loop_levels=N] | off")
                return True
            try:
                limits[key] = float(value) if key == "deadline_ms" \
                    else int(value)
            except ValueError:
                self._print(f"invalid number in {part!r}")
                return True
        self._budget = QueryBudget(**limits)
        self._print(f"budget set: {self._budget!r}")
        return True

    def _cmd_trace(self, argument: str) -> bool:
        word, _, rest = argument.partition(" ")
        word = word.lower()
        if not word:
            if obs.TRACER is None:
                self._print("tracing is off")
            else:
                count = len(obs.TRACER.recorder)
                self._print(f"tracing is on — {count} trace(s) recorded")
            return True
        if word == "on":
            if obs.TRACER is None:
                obs.install()
                self._print("tracing on")
            else:
                self._print("tracing already on")
            return True
        if word == "off":
            if obs.TRACER is None:
                self._print("tracing already off")
            else:
                obs.uninstall()
                self._print("tracing off")
            return True
        if word == "show":
            root = obs.last_trace()
            if root is None:
                self._print("(no trace recorded — \\trace on, then "
                            "run a query)")
            else:
                self._print(obs.render_tree(root))
            return True
        if word == "save":
            path = rest.strip()
            if not path:
                self._print("usage: \\trace save PATH")
                return True
            if obs.TRACER is None or not len(obs.TRACER.recorder):
                self._print("(no traces to save)")
                return True
            saved = obs.save_chrome_trace(path, obs.TRACER.recorder
                                          .traces())
            self._print(f"chrome trace saved to {saved} "
                        f"(open via chrome://tracing)")
            return True
        self._print("usage: \\trace [on|off|show|save PATH]")
        return True

    def _caches(self):
        """The engine's result caches: the query processor's, plus the
        derivation evaluator's when distinct (they are toggled
        together so queries and backward chaining agree)."""
        caches = [self.engine.processor.evaluator.result_cache]
        derivation = self.engine.evaluator.result_cache
        if derivation is not caches[0]:
            caches.append(derivation)
        return caches

    def _cmd_cache(self, argument: str) -> bool:
        word = argument.strip().lower()
        caches = self._caches()
        query_cache = caches[0]
        if not word:
            if query_cache.enabled:
                self._print(f"cache is on — {len(query_cache)} "
                            f"entries, {query_cache.bytes_used} bytes "
                            f"of {query_cache.max_bytes}")
            else:
                self._print("cache is off")
            return True
        if word == "on":
            if query_cache.enabled:
                self._print("cache already on")
            else:
                for cache in caches:
                    cache.enabled = True
                self._print(f"cache on ({query_cache.max_bytes} bytes)")
            return True
        if word == "off":
            if not query_cache.enabled:
                self._print("cache already off")
            else:
                for cache in caches:
                    cache.enabled = False
                    cache.clear()
                self._print("cache off")
            return True
        if word == "stats":
            for key, value in query_cache.stats().items():
                self._print(f"{key}: {value}")
            if len(caches) > 1:
                self._print("derivation cache:")
                for key, value in caches[1].stats().items():
                    self._print(f"  {key}: {value}")
            return True
        if word == "clear":
            for cache in caches:
                cache.clear()
            self._print("cache cleared")
            return True
        self._print("usage: \\cache [on|off|stats|clear]")
        return True

    def _evaluators(self):
        """The engine's pattern evaluators: the query processor's, plus
        the derivation evaluator's when distinct (they are retargeted
        together so queries and backward chaining agree)."""
        evaluators = [self.engine.processor.evaluator]
        derivation = self.engine.evaluator
        if derivation is not evaluators[0]:
            evaluators.append(derivation)
        return evaluators

    def _cmd_workers(self, argument: str) -> bool:
        evaluators = self._evaluators()
        current = evaluators[0]
        if not argument:
            if current.workers <= 1:
                self._print("workers: 1 (serial)")
            else:
                self._print(f"workers: {current.workers} "
                            f"({current.worker_mode} mode)")
            return True
        workers = None
        mode = None
        for part in argument.split():
            word = part.lower()
            if word in ("thread", "threads"):
                mode = "thread"
            elif word in ("process", "processes"):
                mode = "process"
            else:
                try:
                    workers = int(part)
                except ValueError:
                    self._print("usage: \\workers [N] "
                                "[threads|processes]")
                    return True
                if workers < 1:
                    self._print("worker count must be >= 1")
                    return True
        for evaluator in evaluators:
            if workers is not None:
                evaluator.workers = workers
            if mode is not None:
                evaluator.worker_mode = mode
        workers = current.workers
        if workers <= 1:
            self._print("workers: 1 (serial)")
        else:
            self._print(f"workers: {workers} "
                        f"({current.worker_mode} mode)")
        return True

    def _cmd_index(self, argument: str) -> bool:
        word, _, rest = argument.partition(" ")
        word = word.lower()
        universe = self.engine.universe
        if not word:
            declared = sorted(universe.compact.attrs.declared)
            if not declared:
                self._print("no value indexes declared — "
                            "\\index add CLS ATTR")
            for cls, attr in declared:
                built = universe.compact.attrs._indexes.get((cls, attr))
                state = f"built ({len(built.values)} rows)" \
                    if built is not None else "declared (builds on probe)"
                self._print(f"  {cls}.{attr}: {state}")
            auto = self._evaluators()[0].auto_index_min_rows
            if auto:
                self._print(f"auto-indexing: extents >= {auto} rows")
            return True
        if word in ("add", "drop"):
            parts = rest.split()
            if len(parts) != 2:
                self._print(f"usage: \\index {word} CLS ATTR")
                return True
            cls, attr = parts
            if word == "add":
                created = universe.declare_index(cls, attr)
                self._print(f"index on {cls}.{attr} "
                            + ("declared (builds on first probe)"
                               if created else "already declared"))
            else:
                dropped = universe.drop_index(cls, attr)
                self._print(f"index on {cls}.{attr} "
                            + ("dropped" if dropped else "not declared"))
            return True
        if word == "stats":
            rows = universe.index_stats()
            if not rows:
                self._print("(no value indexes declared)")
            for entry in rows:
                if not entry["built"]:
                    self._print(f"{entry['cls']}.{entry['attr']}: "
                                f"declared, not built yet")
                    continue
                others = ", ".join(f"{t}={c}" for t, c
                                   in entry["other_types"].items())
                self._print(
                    f"{entry['cls']}.{entry['attr']}: "
                    f"{entry['rows']} rows, "
                    f"distinct={entry['distinct']}, "
                    f"numeric={entry['numeric']}, "
                    f"none={entry['none']}"
                    + (f", other: {others}" if others else "")
                    + f", epoch {entry['epoch']}")
            return True
        if word == "auto":
            value = rest.strip().lower()
            if value in ("off", "0"):
                threshold = 0
            else:
                try:
                    threshold = int(value)
                except ValueError:
                    self._print("usage: \\index auto N | auto off")
                    return True
                if threshold < 0:
                    self._print("threshold must be >= 0")
                    return True
            for evaluator in self._evaluators():
                evaluator.auto_index_min_rows = threshold
            self._print("auto-indexing off" if threshold == 0 else
                        f"auto-indexing extents >= {threshold} rows")
            return True
        self._print("usage: \\index [add CLS ATTR | drop CLS ATTR | "
                    "stats | auto N]")
        return True

    def _cmd_why(self, argument: str) -> bool:
        parts = argument.split()
        if len(parts) < 2:
            self._print("usage: \\why TARGET label [label ...] "
                        "(use - for Null)")
            return True
        target = parts[0]
        pattern = tuple(None if p == "-" else p for p in parts[1:])
        self._print(self.engine.why(target, pattern).render())
        return True

    def _cmd_stats(self, _: str) -> bool:
        for key, value in self.engine.stats.snapshot().items():
            self._print(f"{key}: {value}")
        db_stats = self.engine.db.stats()
        self._print(f"objects: {db_stats['objects']}, "
                    f"links: {db_stats['links']}")
        return True

    def _cmd_save(self, path: str) -> bool:
        if not path:
            self._print("usage: \\save PATH")
            return True
        from repro.storage import save_session
        saved = save_session(self.engine, path)
        self._print(f"session saved to {saved}")
        return True

    # ------------------------------------------------------------------
    # Durable storage (WAL-backed backends)
    # ------------------------------------------------------------------

    @property
    def backend(self):
        """The attached storage backend, if any."""
        return getattr(self.engine, "storage_backend", None)

    def _cmd_wal(self, argument: str) -> bool:
        word, _, rest = argument.partition(" ")
        word = word.lower()
        if not word:
            if self.backend is None:
                self._print("no storage backend attached — "
                            "\\wal open PATH [json|sqlite]")
                return True
            for key, value in self.backend.status().items():
                self._print(f"{key}: {value}")
            return True
        if word == "open":
            parts = rest.split()
            if not parts or len(parts) > 2:
                self._print("usage: \\wal open PATH [json|sqlite]")
                return True
            if self.backend is not None:
                self._print("a backend is already attached "
                            f"({self.backend.root})")
                return True
            from repro.storage import open_backend
            backend = open_backend(parts[0],
                                   parts[1] if len(parts) > 1 else "json")
            if backend.has_state():
                backend.close()
                self._print(f"storage at {parts[0]} already holds a "
                            f"session — reopen the shell with "
                            f"--backend {parts[0]} to recover it")
                return True
            report = backend.wal.report
            backend.attach(self.engine)
            self._print(f"{backend.kind} backend attached at "
                        f"{backend.root} (wal seq "
                        f"{backend.wal.last_seq}); every update is now "
                        f"journaled")
            if report.truncated_bytes:
                self._print(f"note: {report.truncated_bytes} torn "
                            f"trailing bytes were discarded on open")
            return True
        if word == "sync":
            if self.backend is None:
                self._print("no storage backend attached")
                return True
            self.backend.wal.sync()
            self._print(f"wal synced at seq {self.backend.wal.last_seq}")
            return True
        if word == "compact":
            if self.backend is None:
                self._print("no storage backend attached")
                return True
            info = self.backend.compact()
            self._print(f"compacted to checkpoint {info['checkpoint']}: "
                        f"{info['dropped_checkpoints']} old "
                        f"checkpoint(s) dropped, {info['wal_records']} "
                        f"wal record(s) kept")
            return True
        self._print("usage: \\wal [open PATH [json|sqlite] | sync | "
                    "compact]")
        return True

    def _cmd_checkpoint(self, _: str) -> bool:
        if self.backend is None:
            self._print("no storage backend attached — "
                        "\\wal open PATH [json|sqlite]")
            return True
        seq = self.backend.checkpoint()
        self._print(f"checkpoint written at wal seq {seq}")
        return True

    def _cmd_restore(self, argument: str) -> bool:
        if self.backend is None:
            self._print("no storage backend attached — "
                        "\\wal open PATH [json|sqlite]")
            return True
        seq = None
        if argument:
            try:
                seq = int(argument)
            except ValueError:
                self._print("usage: \\restore [SEQ]")
                return True
        self._drop_subscriptions("engine restored")
        backend = self.backend
        restored = backend.restore_to(seq)
        backend.detach()
        backend.attach(restored)
        backend.checkpoint()  # the restored state becomes durable head
        self.engine = restored
        self._last_metrics = None
        stats = restored.db.stats()
        self._print(f"session restored to wal seq "
                    f"{seq if seq is not None else backend.wal.last_seq}"
                    f" — {stats['objects']} objects, "
                    f"{stats['links']} links, "
                    f"{len(restored.rules)} rule(s)")
        return True

    # ------------------------------------------------------------------
    # Serving (the asyncio query service)
    # ------------------------------------------------------------------

    def _cmd_serve(self, argument: str) -> bool:
        word, _, rest = argument.partition(" ")
        word = word.lower()
        if not word or word == "status":
            if self._service is None:
                self._print("not serving — \\serve start [HOST:]PORT")
            else:
                host, port = self._service.address
                counters = self._service.counters
                self._print(
                    f"serving on {host}:{port} — "
                    f"{counters['requests_total']} request(s), "
                    f"{counters['shed_total']} shed, "
                    f"{len(self._service._sessions)} live session(s)")
            return True
        if word == "start":
            if self._service is not None:
                host, port = self._service.address
                self._print(f"already serving on {host}:{port}")
                return True
            host, port, limit = "127.0.0.1", 7411, 8
            for part in rest.split():
                if part.startswith("limit="):
                    try:
                        limit = int(part[len("limit="):])
                    except ValueError:
                        self._print("usage: \\serve start [HOST:]PORT "
                                    "[limit=N]")
                        return True
                else:
                    addr, _, port_text = part.rpartition(":")
                    try:
                        port = int(port_text)
                    except ValueError:
                        self._print("usage: \\serve start [HOST:]PORT "
                                    "[limit=N]")
                        return True
                    if addr:
                        host = addr
            from repro.service import QueryService, ServiceConfig
            try:
                service = QueryService(
                    self.engine,
                    ServiceConfig(host=host, port=port,
                                  max_concurrency=limit))
                bound_host, bound_port = service.start()
            except (OSError, RuntimeError, ValueError) as exc:
                self._print(f"error: {exc}")
                return True
            self._service = service
            self._print(f"serving on {bound_host}:{bound_port} "
                        f"(max {limit} concurrent requests) — connect "
                        f"with python -m repro.shell --connect "
                        f"{bound_host}:{bound_port}")
            return True
        if word == "stop":
            if self._service is None:
                self._print("not serving")
                return True
            self._service.stop()
            self._service = None
            self._print("service stopped")
            return True
        self._print("usage: \\serve [start [HOST:]PORT [limit=N] | "
                    "stop | status]")
        return True

    # ------------------------------------------------------------------
    # Live subscriptions
    # ------------------------------------------------------------------

    def _cmd_subscribe(self, argument: str) -> bool:
        if not argument:
            if self._sub_manager is None \
                    or not self._sub_manager.subscriptions():
                self._print("no active subscriptions — "
                            "\\subscribe context ...")
                return True
            for sub in self._sub_manager.subscriptions():
                mode = "incremental" if sub.incremental else "scratch"
                classes = ", ".join(sub.classes) if sub.classes else "*"
                self._print(f"  sub {sub.id} [{mode}] on {{{classes}}} "
                            f"— {len(sub.rows)} row(s), seq {sub.seq}: "
                            f"{sub.text}")
            return True
        if self._sub_manager is None:
            from repro.oql.subscribe import SubscriptionManager
            self._sub_manager = SubscriptionManager(self.engine)
        sub = self._sub_manager.subscribe(argument)
        initial = sub.poll()
        mode = "incremental" if sub.incremental else "scratch"
        classes = ", ".join(sub.classes) if sub.classes else "*"
        self._print(f"subscribed as sub {sub.id} [{mode}] watching "
                    f"{{{classes}}} — {len(sub.rows)} initial row(s)")
        for frame in initial:
            if frame.kind != "snapshot":
                self._print(self._render_delta(sub.id, frame))
        return True

    def _cmd_unsubscribe(self, argument: str) -> bool:
        if not argument:
            self._print("usage: \\unsubscribe ID")
            return True
        try:
            sub_id = int(argument)
        except ValueError:
            self._print("usage: \\unsubscribe ID")
            return True
        if self._sub_manager is None \
                or not self._sub_manager.unsubscribe(sub_id):
            self._print(f"no subscription {sub_id}")
            return True
        self._print(f"unsubscribed sub {sub_id}")
        return True

    def _drain_subscriptions(self) -> None:
        """Print any deltas produced since the last handled line."""
        if self._sub_manager is None:
            return
        for sub in self._sub_manager.subscriptions():
            for frame in sub.poll():
                self._print(self._render_delta(sub.id, frame))

    @staticmethod
    def _render_delta(sub_id: int, frame) -> str:
        head = (f"[sub {sub_id} seq {frame.seq}] {frame.kind} "
                f"+{len(frame.added)} -{len(frame.removed)} "
                f"(version {frame.version})")
        if frame.error is not None:
            head += f" — {frame.error}"
        return head

    def _drop_subscriptions(self, reason: str) -> None:
        if self._sub_manager is None:
            return
        count = self._sub_manager.active_count
        self._sub_manager.close()
        self._sub_manager = None
        if count:
            self._print(f"dropped {count} subscription(s) ({reason})")

    def _cmd_quit(self, _: str) -> bool:
        self._drop_subscriptions("session ending")
        if self._service is not None:
            self._service.stop()
            self._service = None
        if self.backend is not None:
            self.backend.close()
        self._print("bye")
        return False


def build_engine(args: List[str]) -> RuleEngine:
    """Interpret the command-line arguments into an engine.

    ``--backend PATH [--backend-kind json|sqlite]`` opens a durable
    WAL-backed store at PATH: an existing store is *recovered* (latest
    checkpoint + WAL replay); a fresh one is seeded with the session
    the other flags select, and every subsequent update is journaled.
    """
    backend = None
    if "--backend" in args:
        from repro.storage import open_backend
        kind = "json"
        if "--backend-kind" in args:
            kind = args[args.index("--backend-kind") + 1]
        backend = open_backend(args[args.index("--backend") + 1], kind)
        if backend.has_state():
            engine = backend.recover()
            backend.attach(engine)
            return engine
    if "--session" in args:
        from repro.storage import load_session
        path = args[args.index("--session") + 1]
        engine = load_session(path)
    elif "--empty" in args:
        from repro.model.database import Database
        from repro.model.schema import Schema
        engine = RuleEngine(Database(Schema("session")))
    else:
        from repro.university import build_paper_database, build_sdb
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.universe.register(build_sdb(data))
    if backend is not None:
        backend.attach(engine)
    return engine


def repl(engine: RuleEngine) -> None:  # pragma: no cover - interactive
    shell = Shell(engine)
    print("Deductive OO database shell — \\help for commands.")
    while True:
        prompt = Shell.CONTINUATION if shell.pending else Shell.PROMPT
        try:
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not shell.handle(line):
            break


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    args = argv if argv is not None else sys.argv[1:]
    if "--connect" in args:
        # Client mode: a remote REPL against a running query service.
        from repro.service.client import client_repl
        target = args[args.index("--connect") + 1]
        host, _, port = target.rpartition(":")
        client_repl(host or "127.0.0.1", int(port))
        return
    repl(build_engine(args))


if __name__ == "__main__":  # pragma: no cover
    main()
