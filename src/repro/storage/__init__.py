"""Persistence: JSON serialization for schemas, databases, subdatabases
and whole deductive sessions.

The paper's prototype ran against a persistent OO DBMS; this subpackage
gives the library durable storage so applications can close and reopen a
deductive database:

* :func:`schema_to_dict` / :func:`schema_from_dict` — the S-diagram,
* :func:`database_to_dict` / :func:`database_from_dict` — extents and
  links with **OID values preserved** (derived subdatabase snapshots and
  external references stay valid across a save/load cycle),
* :func:`subdatabase_to_dict` / :func:`subdatabase_from_dict` —
  materialized derived subdatabases including their induced
  generalization records,
* :func:`save_session` / :func:`load_session` — a complete
  :class:`~repro.rules.engine.RuleEngine`: schema, data, rule texts,
  per-target evaluation modes, and (optionally) materialized results.

The format is a single versioned JSON document; see ``FORMAT_VERSION``.
Custom D-class ``check`` predicates are *not* serializable (they are
arbitrary Python callables) — domains round-trip as their base type and
a loud warning is recorded in the document.
"""

from repro.storage.serialize import (
    FORMAT_VERSION,
    database_from_dict,
    database_to_dict,
    schema_from_dict,
    schema_to_dict,
    subdatabase_from_dict,
    subdatabase_to_dict,
)
from repro.storage.session import load_session, save_session

__all__ = [
    "FORMAT_VERSION",
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "subdatabase_to_dict",
    "subdatabase_from_dict",
    "save_session",
    "load_session",
]
