"""Persistence: JSON serialization for schemas, databases, subdatabases
and whole deductive sessions.

The paper's prototype ran against a persistent OO DBMS; this subpackage
gives the library durable storage so applications can close and reopen a
deductive database:

* :func:`schema_to_dict` / :func:`schema_from_dict` — the S-diagram,
* :func:`database_to_dict` / :func:`database_from_dict` — extents and
  links with **OID values preserved** (derived subdatabase snapshots and
  external references stay valid across a save/load cycle),
* :func:`subdatabase_to_dict` / :func:`subdatabase_from_dict` —
  materialized derived subdatabases including their induced
  generalization records,
* :func:`save_session` / :func:`load_session` — a complete
  :class:`~repro.rules.engine.RuleEngine`: schema, data, rule texts,
  per-target evaluation modes, and (optionally) materialized results.

The format is a single versioned JSON document; see ``FORMAT_VERSION``.
Custom D-class ``check`` predicates are *not* serializable (they are
arbitrary Python callables) — domains round-trip as their base type, a
loud warning is recorded in the document, and the warning is re-raised
(:class:`StoredSchemaWarning`) when the document is loaded.

Durable, incremental persistence lives in :mod:`repro.storage.backends`:
a :class:`StorageBackend` abstraction pairing an append-only, CRC'd
write-ahead log of update events with checkpointed session snapshots —
crash recovery by checkpoint-load + WAL-replay, point-in-time restore to
any event offset, and two implementations (``json`` whole-session
snapshots and a ``sqlite`` column store with lazy per-class extents).
"""

from repro.storage.atomic import atomic_write_text
from repro.storage.backends import (
    BACKENDS,
    JsonBackend,
    SqliteBackend,
    StorageBackend,
    WriteAheadLog,
    open_backend,
    register_backend,
)
from repro.storage.serialize import (
    FORMAT_VERSION,
    StoredSchemaWarning,
    database_from_dict,
    database_to_dict,
    schema_from_dict,
    schema_to_dict,
    subdatabase_from_dict,
    subdatabase_to_dict,
)
from repro.storage.session import load_session, save_session

__all__ = [
    "BACKENDS",
    "FORMAT_VERSION",
    "JsonBackend",
    "SqliteBackend",
    "StorageBackend",
    "StoredSchemaWarning",
    "WriteAheadLog",
    "atomic_write_text",
    "schema_to_dict",
    "schema_from_dict",
    "database_to_dict",
    "database_from_dict",
    "open_backend",
    "register_backend",
    "subdatabase_to_dict",
    "subdatabase_from_dict",
    "save_session",
    "load_session",
]
