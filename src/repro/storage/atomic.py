"""Crash-safe file primitives shared by the persistence layer.

The invariant every writer here guarantees: at any kill point, the
destination path holds either the complete old contents or the complete
new contents — never a torn mixture, never nothing.  The recipe is the
classic one (write a temporary sibling, flush, ``fsync``, ``os.replace``,
then ``fsync`` the directory so the rename itself is durable).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory's metadata (new names, renames) to disk.

    Not every platform/filesystem lets a directory be opened for fsync;
    failures are ignored — the data files themselves are always synced.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], data: str,
                      encoding: str = "utf-8") -> Path:
    """Write ``data`` to ``path`` so a crash can never leave a torn or
    half-written destination file."""
    path = Path(path)
    directory = path.parent
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".",
                                    suffix=".tmp", dir=str(directory))
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # Best-effort cleanup on the exception path (a real crash
        # leaves the temp file behind; recovery ignores *.tmp).
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(directory)
    return path
