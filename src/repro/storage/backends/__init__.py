"""Durable, pluggable storage backends.

Two implementations ship behind :class:`StorageBackend`:

* ``json`` — :class:`JsonBackend`: whole-session JSON snapshots (the
  original format, made atomic) plus the write-ahead log;
* ``sqlite`` — :class:`SqliteBackend`: checkpoints normalized into
  columnar sqlite tables so extents load lazily per class, plus the
  same write-ahead log.

Typical lifecycle::

    backend = open_backend("state/", "sqlite")
    engine = backend.recover() if backend.has_state() \\
        else RuleEngine(Database(schema))
    backend.attach(engine)        # journals every mutation from now on
    ...
    backend.checkpoint()          # compact the replay prefix
    backend.close()

Crash at any point: reopen and ``recover()`` — the torn WAL tail (if
any) is CRC-detected and truncated, the newest complete checkpoint is
loaded, and the WAL tail beyond its watermark is replayed.
``restore_to(seq)`` rewinds to any event offset instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Type, Union

from repro.errors import DataError
from repro.storage.backends.base import StorageBackend
from repro.storage.backends.events import (
    apply_record,
    record_for_event,
    record_for_rule,
)
from repro.storage.backends.json_backend import JsonBackend
from repro.storage.backends.sqlite_backend import SqliteBackend
from repro.storage.backends.wal import (
    WalOpenReport,
    WriteAheadLog,
    decode_record,
    encode_record,
)

#: Registry of backend kinds, in the style of roundup's backend table.
BACKENDS: dict = {
    JsonBackend.kind: JsonBackend,
    SqliteBackend.kind: SqliteBackend,
}


def register_backend(cls: Type[StorageBackend]) -> Type[StorageBackend]:
    """Register a third-party backend class (usable as a decorator)."""
    BACKENDS[cls.kind] = cls
    return cls


def open_backend(root: Union[str, Path], kind: str = "json",
                 **options) -> StorageBackend:
    """Instantiate and open the backend ``kind`` rooted at ``root``."""
    try:
        backend_cls = BACKENDS[kind]
    except KeyError:
        raise DataError(
            f"unknown storage backend {kind!r} "
            f"(available: {', '.join(sorted(BACKENDS))})") from None
    backend = backend_cls(root, **options)
    backend.open()
    return backend


__all__ = [
    "BACKENDS",
    "JsonBackend",
    "SqliteBackend",
    "StorageBackend",
    "WalOpenReport",
    "WriteAheadLog",
    "apply_record",
    "decode_record",
    "encode_record",
    "open_backend",
    "record_for_event",
    "record_for_rule",
    "register_backend",
]
