"""The durable storage-backend abstraction.

A :class:`StorageBackend` pairs one append-only
:class:`~repro.storage.backends.wal.WriteAheadLog` with a store of
*checkpoints* — complete session snapshots, each watermarked by the WAL
offset and the per-class version vector it covers.  Subclasses decide
only how checkpoints are persisted (JSON files, sqlite tables, ...);
logging, recovery, and point-in-time restore live here.

The contract:

* ``attach(engine)`` hooks the engine's update-event and rule-base
  listeners so every mutation is journaled *inside* the database's
  write lock (the event listener path), and writes the genesis
  checkpoint if the store is empty — so there is always a snapshot to
  replay onto.
* ``checkpoint()`` snapshots the whole session atomically and records
  the current WAL offset as its watermark.  Schema-evolution events
  force one immediately: schema changes are persisted as snapshots,
  never as deltas.
* ``recover()`` loads the newest checkpoint and replays the WAL tail
  beyond its watermark; a torn tail record is detected by CRC and cut
  at open time.  The result is byte-identical (through the canonical
  session document) to a session that executed the same events live.
* ``restore_to(seq)`` rewinds to any event offset: the newest
  checkpoint at-or-before ``seq`` plus the WAL records up to ``seq``.
* ``compact()`` drops history older than the newest checkpoint once
  point-in-time restore below it is no longer needed.
"""

from __future__ import annotations

import abc
import os
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import DataError
from repro.model.database import UpdateEvent, UpdateKind
from repro.storage.backends.events import (
    apply_record,
    record_for_event,
    record_for_rule,
)
from repro.storage.backends.wal import WriteAheadLog, encode_record
from repro.storage.session import rule_mode, session_from_dict, \
    session_to_dict


class StorageBackend(abc.ABC):
    """Base class for durable, WAL-backed session stores."""

    #: Registry name (e.g. ``"json"``); set by subclasses.
    kind = "abstract"

    def __init__(self, root: Union[str, Path], *, sync_every: int = 1,
                 checkpoint_every: Optional[int] = None,
                 include_materialized: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.root / "wal.jsonl",
                                 sync_every=sync_every)
        #: Take a checkpoint automatically every N WAL records
        #: (``None``: only explicit/genesis/schema checkpoints).
        self.checkpoint_every = checkpoint_every
        self.include_materialized = include_materialized
        self.engine = None
        #: Test seam: a callable invoked at named code points
        #: ("checkpoint.before_commit", ...) so crash-injection tests
        #: can kill the process at the worst possible moment.
        self.fault_hook: Optional[Callable[[str], None]] = None
        self._since_checkpoint = 0
        self._mutex = threading.RLock()
        self._db_listener = None
        self._rule_listener = None

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self):
        """Open (and validate/repair) the WAL; returns the open report."""
        return self.wal.open()

    def close(self) -> None:
        self.detach()
        self.wal.close()

    def attach(self, engine) -> None:
        """Start journaling ``engine``.  Writes the genesis checkpoint
        when the store has none, so recovery always has a base state."""
        with self._mutex:
            if self.engine is not None:
                raise ValueError("backend is already attached")
            if not self.wal.is_open:
                self.wal.open()
            self.engine = engine
            engine.storage_backend = self
            if not self._checkpoint_seqs():
                self.checkpoint()
            self._db_listener = self._on_update
            self._rule_listener = self._on_rule
            engine.db.add_listener(self._db_listener)
            engine.add_rule_listener(self._rule_listener)

    def detach(self) -> None:
        with self._mutex:
            if self.engine is None:
                return
            if self._db_listener is not None:
                self.engine.db.remove_listener(self._db_listener)
            if self._rule_listener is not None:
                self.engine.remove_rule_listener(self._rule_listener)
            if getattr(self.engine, "storage_backend", None) is self:
                self.engine.storage_backend = None
            self.engine = None
            self._db_listener = self._rule_listener = None

    # ------------------------------------------------------------------
    # Journaling (listener side)
    # ------------------------------------------------------------------

    def _on_update(self, event: UpdateEvent) -> None:
        body = record_for_event(event)
        if body is None:
            return
        with self._mutex:
            self.wal.append(body)
            if event.kind is UpdateKind.SCHEMA:
                # Schema evolution is snapshotted, not replayed.
                self.checkpoint()
                return
            self._since_checkpoint += 1
            if self.checkpoint_every is not None and \
                    self._since_checkpoint >= self.checkpoint_every:
                self.checkpoint()

    def _on_rule(self, action: str, rule, mode) -> None:
        mode_value = mode.value if mode is not None \
            else rule_mode(self.engine, rule)
        if action == "removed":
            mode_value = None
        with self._mutex:
            self.wal.append(record_for_rule(action, rule, mode_value))
            self._since_checkpoint += 1

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the attached session; returns the WAL watermark the
        checkpoint covers (every record with ``seq`` at or below it is
        folded into the snapshot)."""
        with self._mutex:
            if self.engine is None:
                raise ValueError("no engine attached")
            self.wal.sync()
            seq = self.wal.last_seq
            doc = session_to_dict(self.engine, self.include_materialized)
            doc["wal_seq"] = seq
            self._write_checkpoint(seq, doc)
            self._since_checkpoint = 0
            return seq

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def has_state(self) -> bool:
        """True when the store holds at least one checkpoint (i.e.
        :meth:`recover` can produce a session)."""
        return bool(self._checkpoint_seqs())

    def recover(self):
        """Rebuild the newest durable session state: latest checkpoint
        plus the WAL tail beyond its watermark.  Returns a fresh,
        *unattached* :class:`~repro.rules.engine.RuleEngine`."""
        return self.restore_to(None)

    def restore_to(self, seq: Optional[int]):
        """Rebuild the session as of event offset ``seq`` (``None``:
        the newest durable state)."""
        if not self.wal.is_open:
            self.wal.open()
        seqs = self._checkpoint_seqs()
        if not seqs:
            raise DataError(
                f"storage at {self.root} has no checkpoint to recover "
                f"from (was a session ever attached?)")
        if seq is None:
            seq = self.wal.last_seq
            base_candidates = seqs
        else:
            base_candidates = [s for s in seqs if s <= seq]
            if not base_candidates:
                raise DataError(
                    f"no checkpoint at or before offset {seq} "
                    f"(oldest is {min(seqs)}; history may have been "
                    f"compacted)")
        base = max(base_candidates)
        doc = self._load_checkpoint(base)
        engine = session_from_dict(doc)
        for body in self.wal.records(start=base, end=seq):
            apply_record(engine, body)
        return engine

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Drop history covered by the newest checkpoint: older
        checkpoints are deleted and the WAL is rewritten (atomically)
        to hold only records beyond the watermark.  Point-in-time
        restore below the newest checkpoint becomes impossible."""
        with self._mutex:
            seqs = self._checkpoint_seqs()
            if not seqs:
                raise DataError("nothing to compact: no checkpoint")
            keep = max(seqs)
            kept_records = 0
            self.wal.sync()
            tmp = self.wal.path.with_suffix(".compact.tmp")
            with open(tmp, "wb") as handle:
                for body in self.wal.records(start=keep):
                    handle.write(encode_record(body))
                    kept_records += 1
                handle.flush()
                os.fsync(handle.fileno())
            was_open = self.wal.is_open
            next_seq = self.wal._next_seq
            self.wal.close()
            os.replace(tmp, self.wal.path)
            if was_open:
                self.wal.open()
                self.wal._next_seq = max(self.wal._next_seq, next_seq)
            dropped = 0
            for old in seqs:
                if old != keep:
                    self._delete_checkpoint(old)
                    dropped += 1
            return {"checkpoint": keep, "dropped_checkpoints": dropped,
                    "wal_records": kept_records}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        seqs = self._checkpoint_seqs()
        return {
            "kind": self.kind,
            "root": str(self.root),
            "wal_records": sum(1 for _ in self.wal.records()),
            "wal_last_seq": self.wal.last_seq,
            "wal_bytes": self.wal.size_bytes(),
            "checkpoints": len(seqs),
            "last_checkpoint_seq": max(seqs) if seqs else None,
            "attached": self.engine is not None,
        }

    # ------------------------------------------------------------------
    # Checkpoint persistence (subclass responsibility)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _write_checkpoint(self, seq: int, doc: Dict[str, Any]) -> None:
        """Persist ``doc`` as the checkpoint watermarked ``seq``,
        atomically: a crash mid-write must leave prior checkpoints
        fully intact and this one absent."""

    @abc.abstractmethod
    def _checkpoint_seqs(self) -> List[int]:
        """The watermarks of every durable checkpoint, unsorted."""

    @abc.abstractmethod
    def _load_checkpoint(self, seq: int) -> Dict[str, Any]:
        """The full session document of checkpoint ``seq``."""

    @abc.abstractmethod
    def _delete_checkpoint(self, seq: int) -> None:
        """Remove one checkpoint (compaction)."""
