"""Converting :class:`~repro.model.database.UpdateEvent`s to WAL record
bodies and replaying record bodies against a restored engine.

Replay is exact by construction: inserts go through the same allocator
pre-seeding path the session loader uses (the entity is re-born with its
original OID), every other mutation addresses objects by OID value, and
the records of a ``batch`` block replay inside a ``batch`` block so
listeners observe the same grouping they did live.  The one
idempotence concession is DELETE: a composition cascade emits one
record per cascaded part *and* the parent's delete re-runs the cascade
on replay, so a delete whose object is already gone is a no-op.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import DataError
from repro.model.database import UpdateEvent, UpdateKind
from repro.model.oid import OID

#: Record kinds that replay as plain database mutations.
_DATA_KINDS = {
    UpdateKind.INSERT, UpdateKind.DELETE, UpdateKind.ASSOCIATE,
    UpdateKind.DISSOCIATE, UpdateKind.SET_ATTRIBUTE,
}


def record_for_event(event: UpdateEvent) -> Optional[Dict[str, Any]]:
    """The WAL body for one update event (without its ``seq`` stamp).

    BATCH events nest their constituent payloads; SCHEMA events return a
    non-replayable marker (the backend checkpoints instead — schema
    evolution mutates arbitrary Python structure and is persisted as a
    full snapshot, never as a delta).  Returns ``None`` for events that
    carry no replay payload (nothing to log).
    """
    if event.kind is UpdateKind.BATCH:
        events = [record_for_event(sub) for sub in event.sub_events]
        return {"kind": "batch", "v": event.version,
                "events": [r for r in events if r is not None]}
    if event.kind is UpdateKind.SCHEMA:
        return {"kind": "schema", "v": event.version,
                "detail": event.detail}
    if event.kind not in _DATA_KINDS or event.payload is None:
        return None
    body: Dict[str, Any] = {"kind": event.kind.value, "v": event.version}
    body.update(event.payload)
    return body


def record_for_rule(action: str, rule, mode_value: Optional[str]
                    ) -> Dict[str, Any]:
    """The WAL body for a rule registration or removal."""
    return {"kind": f"rule_{action}",
            "text": rule.text or str(rule),
            "label": rule.label,
            "mode": mode_value}


def apply_record(engine, body: Dict[str, Any]) -> None:
    """Replay one WAL record body against ``engine``."""
    kind = body["kind"]
    db = engine.db
    if kind == "insert":
        db._allocator.seed(int(body["oid"]))
        entity = db.insert(body["cls"], body.get("label"),
                           **body.get("attrs", {}))
        if entity.oid.value != int(body["oid"]):  # pragma: no cover
            raise DataError(
                f"WAL replay allocated OID {entity.oid.value}, "
                f"record says {body['oid']}")
    elif kind == "delete":
        oid = OID(int(body["oid"]))
        if db.has(oid):  # cascaded parts may already be gone
            db.delete(oid)
    elif kind == "associate":
        db.associate(OID(int(body["owner"])), body["name"],
                     OID(int(body["target"])))
    elif kind == "dissociate":
        db.dissociate(OID(int(body["owner"])), body["name"],
                      OID(int(body["target"])))
    elif kind == "set_attribute":
        db.set_attribute(OID(int(body["oid"])), body["name"],
                         body["value"])
    elif kind == "batch":
        with db.batch():
            for sub in body["events"]:
                apply_record(engine, sub)
    elif kind == "rule_added":
        from repro.rules.control import EvaluationMode, \
            RuleChainingMode, RuleOrientedController
        mode = None
        if body.get("mode"):
            mode_enum = RuleChainingMode if isinstance(
                engine.controller, RuleOrientedController) \
                else EvaluationMode
            mode = mode_enum(body["mode"])
        engine.add_rule(body["text"], label=body.get("label"), mode=mode)
    elif kind == "rule_removed":
        match = next(
            (r for r in engine.rules
             if r.label == body.get("label")
             and (r.text or str(r)) == body["text"]), None)
        if match is not None:
            engine.remove_rule(match)
    elif kind == "schema":
        raise DataError(
            "WAL contains a schema-evolution record beyond the last "
            "checkpoint; schema changes are not replayable — the state "
            "recovered so far is the pre-evolution state "
            f"({body.get('detail', '')!r})")
    else:
        raise DataError(f"unknown WAL record kind {kind!r}")
