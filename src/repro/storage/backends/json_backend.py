"""The JSON checkpoint store — the original whole-session persistence
format, refactored onto the backend interface.

Layout under the backend root::

    wal.jsonl                 the shared write-ahead log
    checkpoint-00000042.json  one atomic session snapshot per watermark

Checkpoints are written with the same temp-file/fsync/rename recipe as
:func:`repro.storage.session.save_session`; stray ``*.tmp`` files from a
crash are ignored by recovery and swept on open.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.errors import DataError
from repro.storage.atomic import atomic_write_text
from repro.storage.backends.base import StorageBackend

_PREFIX = "checkpoint-"
_SUFFIX = ".json"


class JsonBackend(StorageBackend):
    """Whole-session JSON snapshots plus the shared WAL."""

    kind = "json"

    def open(self):
        for stray in self.root.glob("*.tmp"):
            try:
                stray.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return super().open()

    def _checkpoint_path(self, seq: int):
        return self.root / f"{_PREFIX}{seq:08d}{_SUFFIX}"

    def _write_checkpoint(self, seq: int, doc: Dict[str, Any]) -> None:
        self._fault("checkpoint.before_write")
        text = json.dumps(doc, indent=1, sort_keys=True)
        self._fault("checkpoint.mid_write")
        atomic_write_text(self._checkpoint_path(seq), text)
        self._fault("checkpoint.after_write")

    def _checkpoint_seqs(self) -> List[int]:
        seqs = []
        for path in self.root.glob(f"{_PREFIX}*{_SUFFIX}"):
            stem = path.name[len(_PREFIX):-len(_SUFFIX)]
            try:
                seqs.append(int(stem))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return seqs

    def _load_checkpoint(self, seq: int) -> Dict[str, Any]:
        path = self._checkpoint_path(seq)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise DataError(f"checkpoint {seq} missing at {path}") \
                from None

    def _delete_checkpoint(self, seq: int) -> None:
        try:
            os.unlink(self._checkpoint_path(seq))
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
