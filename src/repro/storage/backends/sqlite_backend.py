"""The sqlite checkpoint store: session snapshots normalized into
columnar tables so extents can be read lazily, one class at a time,
without materializing the whole database.

Layout under the backend root::

    wal.jsonl        the shared write-ahead log (same format as JSON)
    store.sqlite3    checkpoint metadata + entity/link tables

Schema::

    checkpoints(seq PRIMARY KEY, meta)        -- session doc sans extents
    entities(seq, oid, cls, label, attrs)     -- one row per object
    links(seq, ord, owner, name, a, b)        -- one row per link pair

A checkpoint is one sqlite transaction, so a crash mid-checkpoint rolls
back to the previous durable state on reopen — the same
all-or-nothing guarantee the JSON backend gets from atomic rename.

Beyond the full :meth:`~repro.storage.backends.base.StorageBackend
.recover`, this backend offers *partial* recovery:
:meth:`SqliteBackend.partial_recover` loads only the named classes'
extents (plus the links among them) straight off the indexed tables —
a read-only analytical view over databases larger than the working set.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import DataError
from repro.storage.backends.base import StorageBackend

_SCHEMA = """
CREATE TABLE IF NOT EXISTS checkpoints (
    seq  INTEGER PRIMARY KEY,
    meta TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entities (
    seq   INTEGER NOT NULL,
    oid   INTEGER NOT NULL,
    cls   TEXT    NOT NULL,
    label TEXT,
    attrs TEXT    NOT NULL,
    PRIMARY KEY (seq, oid)
);
CREATE INDEX IF NOT EXISTS idx_entities_cls ON entities (seq, cls);
CREATE TABLE IF NOT EXISTS links (
    seq   INTEGER NOT NULL,
    ord   INTEGER NOT NULL,
    owner TEXT    NOT NULL,
    name  TEXT    NOT NULL,
    a     INTEGER NOT NULL,
    b     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_links_seq ON links (seq, ord);
"""


class SqliteBackend(StorageBackend):
    """Columnar sqlite checkpoints plus the shared WAL."""

    kind = "sqlite"

    def __init__(self, root, **kwargs):
        super().__init__(root, **kwargs)
        self.db_path = self.root / "store.sqlite3"
        self._connection: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------

    def _db(self) -> sqlite3.Connection:
        if self._connection is None:
            self._connection = sqlite3.connect(
                str(self.db_path), check_same_thread=False)
            self._connection.executescript(_SCHEMA)
            self._connection.commit()
        return self._connection

    def close(self) -> None:
        super().close()
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # ------------------------------------------------------------------
    # Checkpoint persistence
    # ------------------------------------------------------------------

    def _write_checkpoint(self, seq: int, doc: Dict[str, Any]) -> None:
        meta = dict(doc)
        database = dict(meta["database"])
        entities = database.pop("entities")
        link_groups = database.pop("links")
        meta["database"] = database
        conn = self._db()
        self._fault("checkpoint.before_write")
        try:
            with conn:  # one transaction: all-or-nothing
                conn.execute(
                    "INSERT OR REPLACE INTO checkpoints (seq, meta) "
                    "VALUES (?, ?)",
                    (seq, json.dumps(meta, sort_keys=True)))
                conn.execute("DELETE FROM entities WHERE seq = ?", (seq,))
                conn.execute("DELETE FROM links WHERE seq = ?", (seq,))
                conn.executemany(
                    "INSERT INTO entities (seq, oid, cls, label, attrs) "
                    "VALUES (?, ?, ?, ?, ?)",
                    ((seq, e["oid"], e["cls"], e.get("label"),
                      json.dumps(e.get("attrs", {}), sort_keys=True))
                     for e in entities))
                self._fault("checkpoint.before_commit")
                order = 0
                rows = []
                for group in link_groups:
                    for a, b in group["pairs"]:
                        rows.append((seq, order, group["owner"],
                                     group["name"], a, b))
                        order += 1
                conn.executemany(
                    "INSERT INTO links (seq, ord, owner, name, a, b) "
                    "VALUES (?, ?, ?, ?, ?, ?)", rows)
        except BaseException:
            # A real kill here leaves sqlite's journal to roll back on
            # reopen; the injected-fault path mirrors that by rolling
            # back explicitly before propagating.
            conn.rollback()
            raise
        self._fault("checkpoint.after_write")

    def _checkpoint_seqs(self) -> List[int]:
        rows = self._db().execute("SELECT seq FROM checkpoints")
        return [seq for (seq,) in rows]

    def _load_checkpoint(self, seq: int) -> Dict[str, Any]:
        row = self._db().execute(
            "SELECT meta FROM checkpoints WHERE seq = ?", (seq,)) \
            .fetchone()
        if row is None:
            raise DataError(f"checkpoint {seq} missing in {self.db_path}")
        doc = json.loads(row[0])
        database = doc["database"]
        database["entities"] = [
            self._entity_dict(oid, cls, label, attrs)
            for oid, cls, label, attrs in self._db().execute(
                "SELECT oid, cls, label, attrs FROM entities "
                "WHERE seq = ? ORDER BY oid", (seq,))]
        database["links"] = self._link_groups(seq)
        return doc

    def _delete_checkpoint(self, seq: int) -> None:
        conn = self._db()
        with conn:
            conn.execute("DELETE FROM checkpoints WHERE seq = ?", (seq,))
            conn.execute("DELETE FROM entities WHERE seq = ?", (seq,))
            conn.execute("DELETE FROM links WHERE seq = ?", (seq,))

    # ------------------------------------------------------------------
    # Lazy, per-class reads
    # ------------------------------------------------------------------

    @staticmethod
    def _entity_dict(oid, cls, label, attrs) -> Dict[str, Any]:
        return {"oid": oid, "cls": cls, "label": label,
                "attrs": json.loads(attrs)}

    def _link_groups(self, seq: int,
                     oids: Optional[set] = None) -> List[Dict[str, Any]]:
        """Reassemble the document's link groups in insertion order,
        optionally restricted to pairs with both ends in ``oids``."""
        groups: Dict[tuple, Dict[str, Any]] = {}
        for owner, name, a, b in self._db().execute(
                "SELECT owner, name, a, b FROM links "
                "WHERE seq = ? ORDER BY ord", (seq,)):
            if oids is not None and (a not in oids or b not in oids):
                continue
            group = groups.setdefault(
                (owner, name),
                {"owner": owner, "name": name, "pairs": []})
            group["pairs"].append([a, b])
        return list(groups.values())

    def latest_seq(self) -> Optional[int]:
        seqs = self._checkpoint_seqs()
        return max(seqs) if seqs else None

    def class_counts(self, seq: Optional[int] = None) -> Dict[str, int]:
        """Per-class extent sizes of a checkpoint, without loading it."""
        seq = self.latest_seq() if seq is None else seq
        rows = self._db().execute(
            "SELECT cls, COUNT(*) FROM entities WHERE seq = ? "
            "GROUP BY cls", (seq,))
        return dict(rows)

    def iter_extent(self, cls: str,
                    seq: Optional[int] = None
                    ) -> Iterator[Dict[str, Any]]:
        """Stream one class's stored entities (ascending OID) without
        touching any other extent — the lazy read path."""
        seq = self.latest_seq() if seq is None else seq
        for row in self._db().execute(
                "SELECT oid, cls, label, attrs FROM entities "
                "WHERE seq = ? AND cls = ? ORDER BY oid", (seq, cls)):
            yield self._entity_dict(*row)

    def partial_recover(self, classes: Sequence[str],
                        seq: Optional[int] = None):
        """A session holding only the named classes' extents (and the
        links among them), loaded lazily off the indexed tables.

        Each named class is expanded through its generalization
        closure — by the identity semantics of subclassing, the extent
        of ``Teacher`` includes every ``TA``, so loading it partially
        would be silently wrong.  The view reflects the checkpoint only
        (no WAL replay — tail records may touch unloaded objects) and
        skips materialized subdatabases (their patterns may reference
        unloaded OIDs): treat it as a read-only analytical session.
        """
        from repro.storage.session import session_from_dict
        seq = self.latest_seq() if seq is None else seq
        if seq is None:
            raise DataError("no checkpoint to recover from")
        row = self._db().execute(
            "SELECT meta FROM checkpoints WHERE seq = ?", (seq,)) \
            .fetchone()
        if row is None:
            raise DataError(f"checkpoint {seq} missing in {self.db_path}")
        doc = json.loads(row[0])
        children: Dict[str, List[str]] = {}
        for entry in doc["schema"].get("generalizations", ()):
            children.setdefault(entry["superclass"], []) \
                .append(entry["subclass"])
        wanted = set()
        frontier = list(classes)
        while frontier:
            cls = frontier.pop()
            if cls in wanted:
                continue
            wanted.add(cls)
            frontier.extend(children.get(cls, ()))
        entities: List[Dict[str, Any]] = []
        for cls in sorted(wanted):
            entities.extend(self.iter_extent(cls, seq))
        entities.sort(key=lambda e: e["oid"])
        oids = {e["oid"] for e in entities}
        doc["database"]["entities"] = entities
        doc["database"]["links"] = self._link_groups(seq, oids)
        doc.pop("materialized", None)
        return session_from_dict(doc)
