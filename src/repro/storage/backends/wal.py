"""The append-only write-ahead log.

One WAL file is a sequence of newline-terminated records::

    <crc32:08x> <canonical JSON body>\\n

The CRC covers the exact JSON bytes, so any torn or bit-rotted record is
detected on open.  Bodies are canonical (``sort_keys``, compact
separators) so a record's bytes are a pure function of its content.
Every body carries a ``seq`` — the strictly increasing event offset that
checkpoints watermark and point-in-time restore addresses.

Durability is batched: ``append`` buffers, and the log fsyncs whenever
``sync_every`` appends have accumulated (default 1: every record is
durable before ``append`` returns).  ``sync()`` forces the barrier at
any time; the group-commit path (`Database.batch`) naturally produces
one record — and therefore one fsync — for many mutations.

Recovery semantics on open: records are validated in order; the first
record that fails (truncated tail, bad CRC, unparsable JSON, or a
non-monotonic ``seq``) and *everything after it* is discarded and the
file is truncated back to the last valid byte — the standard torn-tail
rule of physical logging.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.storage.atomic import fsync_dir


def encode_record(body: Dict[str, Any]) -> bytes:
    """The canonical on-disk bytes of one record (including newline)."""
    payload = json.dumps(body, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse and CRC-check one complete line; ``None`` if invalid."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the newline is the commit marker
    line = line[:-1]
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        body = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(body, dict) or "seq" not in body:
        return None
    return body


@dataclass
class WalOpenReport:
    """What opening an existing log found."""

    records: int = 0
    last_seq: int = 0
    truncated_bytes: int = 0
    truncated_records: int = 0


class WriteAheadLog:
    """An append-only, CRC-checked, JSON-lines event log."""

    def __init__(self, path: Union[str, Path], sync_every: int = 1):
        self.path = Path(path)
        self.sync_every = max(1, int(sync_every))
        self._handle = None
        self._pending = 0  # appends since the last fsync
        self._next_seq = 1
        self.report = WalOpenReport()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> WalOpenReport:
        """Validate any existing log (truncating a torn tail) and open
        the file for appending."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        report = WalOpenReport()
        valid_end = 0
        if self.path.exists():
            data = self.path.read_bytes()
            offset = 0
            last_seq = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                line = data[offset:] if newline < 0 \
                    else data[offset:newline + 1]
                body = decode_record(line)
                if body is None or int(body["seq"]) <= last_seq:
                    break
                last_seq = int(body["seq"])
                report.records += 1
                offset += len(line)
            valid_end = offset
            if valid_end < len(data):
                report.truncated_bytes = len(data) - valid_end
                report.truncated_records = \
                    data[valid_end:].count(b"\n") or 1
                warnings.warn(
                    f"WAL {self.path}: discarding "
                    f"{report.truncated_bytes} trailing bytes "
                    f"(torn or corrupt records)", RuntimeWarning,
                    stacklevel=2)
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
            report.last_seq = last_seq
        self._next_seq = report.last_seq + 1
        self.report = report
        self._handle = open(self.path, "ab")
        if not report.records:
            fsync_dir(self.path.parent)
        return report

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    @property
    def is_open(self) -> bool:
        return self._handle is not None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The offset of the newest appended record (0 when empty)."""
        return self._next_seq - 1

    def append(self, body: Dict[str, Any]) -> int:
        """Stamp ``body`` with the next offset and append it; returns
        the offset.  Durable once the sync barrier has passed (every
        append when ``sync_every`` is 1)."""
        if self._handle is None:
            raise ValueError(f"WAL {self.path} is not open")
        seq = self._next_seq
        record = dict(body)
        record["seq"] = seq
        self._handle.write(encode_record(record))
        self._next_seq += 1
        self._pending += 1
        if self._pending >= self.sync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Flush and fsync everything appended so far (group commit)."""
        if self._handle is None or not self._pending:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self, start: int = 0,
                end: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Iterate the durable records with ``start < seq <= end``.

        Reads from disk (after draining the write buffer), so an open
        writer sees its own appends.
        """
        if self._handle is not None and self._pending:
            self._handle.flush()
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            for line in handle:
                body = decode_record(line)
                if body is None:
                    break
                seq = int(body["seq"])
                if seq <= start:
                    continue
                if end is not None and seq > end:
                    break
                yield body

    def size_bytes(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        return self.path.stat().st_size if self.path.exists() else 0
