"""Dict (JSON-ready) serialization of the core structures.

Everything round-trips through plain dicts/lists/scalars so callers can
choose their own encoding; :mod:`repro.storage.session` wraps this with
``json`` file I/O.
"""

from __future__ import annotations

import warnings as _warnings
from typing import Any, Dict, List, Optional

from repro.errors import DataError, SchemaError
from repro.model.database import Database
from repro.model.dclass import BOOLEAN, DClass, INTEGER, REAL, STRING
from repro.model.oid import OID
from repro.model.schema import Schema
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase

#: Bumped on any incompatible change to the document layout.
FORMAT_VERSION = 1


class StoredSchemaWarning(UserWarning):
    """A warning that was recorded into a schema document at save time
    (e.g. a dropped ``check`` predicate) and resurfaced on load, so a
    round-tripped schema never *silently* loses validation."""

_BUILTIN_DOMAINS = {
    "integer": INTEGER,
    "string": STRING,
    "real": REAL,
    "boolean": BOOLEAN,
}

_PYTYPE_NAMES = {
    int: "int",
    str: "str",
    float: "float",
    bool: "bool",
}
_PYTYPE_BY_NAME = {name: py for py, name in _PYTYPE_NAMES.items()}


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def _pytype_spec(dclass: DClass) -> List[str]:
    pytypes = dclass.pytype if isinstance(dclass.pytype, tuple) \
        else (dclass.pytype,)
    names = []
    for py in pytypes:
        if py not in _PYTYPE_NAMES:
            raise SchemaError(
                f"D-class {dclass.name!r} has a non-serializable base "
                f"type {py!r}")
        names.append(_PYTYPE_NAMES[py])
    return names


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialize an S-diagram."""
    warnings = []
    dclasses = []
    for name in schema.dclass_names:
        dclass = schema.dclass(name)
        if dclass.check is not None:
            warnings.append(
                f"D-class {name!r}: check predicate dropped "
                f"(not serializable)")
        dclasses.append({"name": name, "pytypes": _pytype_spec(dclass)})
    return {
        "name": schema.name,
        "eclasses": [{"name": name, "doc": schema.eclass(name).doc}
                     for name in schema.eclass_names],
        "dclasses": dclasses,
        "aggregations": [
            {"owner": link.owner, "name": link.name,
             "target": link.target, "many": link.many,
             "required": link.required, "kind": link.kind.value}
            for link in schema.aggregations()],
        "generalizations": [
            {"superclass": g.superclass, "subclass": g.subclass}
            for g in schema.generalizations()],
        "interactions": [
            {"cls": i.cls, "participants": list(i.participants)}
            for i in schema.interactions],
        "crossproducts": [
            {"cls": x.cls, "components": list(x.components)}
            for x in schema.crossproducts],
        "warnings": warnings,
    }


def schema_from_dict(doc: Dict[str, Any]) -> Schema:
    """Rebuild an S-diagram (inverse of :func:`schema_to_dict`).

    Warnings recorded at save time (dropped check predicates) are
    re-raised as :class:`StoredSchemaWarning` so callers learn that the
    restored schema validates less than the original did.
    """
    for message in doc.get("warnings", ()):
        _warnings.warn(message, StoredSchemaWarning, stacklevel=2)
    schema = Schema(doc.get("name", "schema"))
    for entry in doc.get("dclasses", ()):
        name = entry["name"]
        if name in _BUILTIN_DOMAINS:
            continue  # registered lazily by add_attribute below
        pytypes = tuple(_PYTYPE_BY_NAME[n] for n in entry["pytypes"])
        schema.add_dclass(DClass(
            name, pytypes if len(pytypes) > 1 else pytypes[0]))
    for entry in doc["eclasses"]:
        schema.add_eclass(entry["name"], entry.get("doc", ""))
    declared = {d["name"] for d in doc.get("dclasses", ())}
    for entry in doc["aggregations"]:
        target = entry["target"]
        kind = entry.get("kind", "A")
        if kind in ("I", "X"):
            continue  # re-created by the declaration replay below
        if target in declared or target in _BUILTIN_DOMAINS:
            domain = _BUILTIN_DOMAINS.get(target)
            if domain is not None and target not in schema.dclass_names:
                schema.add_dclass(domain)
            schema.add_attribute(entry["owner"], entry["name"], target,
                                 required=entry.get("required", False))
        elif kind == "C":
            schema.add_composition(entry["owner"], target,
                                   name=entry["name"],
                                   many=entry.get("many", True),
                                   required=entry.get("required", False))
        else:
            schema.add_association(entry["owner"], target,
                                   name=entry["name"],
                                   many=entry.get("many", True),
                                   required=entry.get("required", False))
    for entry in doc.get("interactions", ()):
        schema.declare_interaction(entry["cls"], entry["participants"])
    for entry in doc.get("crossproducts", ()):
        schema.declare_crossproduct(entry["cls"], entry["components"])
    for entry in doc["generalizations"]:
        schema.add_subclass(entry["superclass"], entry["subclass"])
    return schema


# ---------------------------------------------------------------------------
# Database
# ---------------------------------------------------------------------------


def database_to_dict(db: Database) -> Dict[str, Any]:
    """Serialize extents and links; OID integer values are preserved."""
    entities = []
    for entity in sorted(db.iter_entities(), key=lambda e: e.oid.value):
        entities.append({
            "oid": entity.oid.value,
            "label": entity.oid.label,
            "cls": entity.cls,
            "attrs": entity.attributes,
        })
    links = []
    for link in db.schema.aggregations():
        if link.target in db.schema.dclass_names:
            continue
        pairs = sorted((a.value, b.value) for a, b in db.link_pairs(link))
        if pairs:
            links.append({"owner": link.owner, "name": link.name,
                          "pairs": pairs})
    return {"name": db.name, "entities": entities, "links": links,
            "version_state": db.version_state()}


def database_from_dict(doc: Dict[str, Any], schema: Schema) -> Database:
    """Rebuild a database over ``schema`` with the original OID values.

    Entities are loaded in ascending OID order through an allocator
    pre-seeding path: before each insert the allocator is advanced to
    the stored value, so every entity is *born* with its final OID and
    the insert events listeners observe during the load carry the same
    identifiers the restored database ends up with.  Attribute values
    and link memberships are re-validated on the way in — a tampered
    document fails loudly rather than loading silently inconsistent
    data.  The persisted version vector (when present) is restored
    last, erasing the load-time churn from every watermark.
    """
    db = Database(schema, name=doc.get("name", "db"))
    by_value: Dict[int, OID] = {}
    for entry in sorted(doc["entities"], key=lambda e: int(e["oid"])):
        wanted = int(entry["oid"])
        if wanted < db._allocator.next_value:
            raise DataError(f"duplicate OID value {wanted} in document")
        db._allocator.seed(wanted)
        entity = db.insert(entry["cls"], entry.get("label"),
                           **entry.get("attrs", {}))
        by_value[wanted] = entity.oid
    for entry in doc.get("links", ()):
        for a, b in entry["pairs"]:
            try:
                owner, target = by_value[a], by_value[b]
            except KeyError as exc:
                raise DataError(
                    f"link {entry['owner']}.{entry['name']} references "
                    f"unknown OID {exc.args[0]}") from None
            db.associate(owner, entry["name"], target)
    state = doc.get("version_state")
    if state is not None:
        db.restore_version_state(state)
    return db


# ---------------------------------------------------------------------------
# Subdatabases
# ---------------------------------------------------------------------------


def subdatabase_to_dict(subdb: Subdatabase) -> Dict[str, Any]:
    """Serialize a materialized subdatabase (patterns by OID value)."""
    return {
        "name": subdb.name,
        "slots": [ref.slot for ref in subdb.intension.slots],
        "edges": [{"i": e.i, "j": e.j, "kind": e.kind, "label": e.label}
                  for e in subdb.intension.edges],
        "patterns": sorted(
            ([None if v is None else v.value for v in p.values]
             for p in subdb.patterns),
            key=lambda row: [(-1 if v is None else v) for v in row]),
        "derived_info": {
            slot: {
                "ref": info.ref.slot,
                "source": info.source.slot,
                "visible_attrs": (list(info.visible_attrs)
                                  if info.visible_attrs is not None
                                  else None),
            }
            for slot, info in sorted(subdb.derived_info.items())},
    }


def subdatabase_from_dict(doc: Dict[str, Any],
                          db: Database) -> Subdatabase:
    """Rebuild a subdatabase, resolving OID values against ``db``."""
    by_value = {oid.value: oid for oid in
                (e.oid for e in db.iter_entities())}
    slots = [ClassRef.parse(s) for s in doc["slots"]]
    edges = [Edge(e["i"], e["j"], e.get("kind", "base"),
                  e.get("label", "")) for e in doc.get("edges", ())]
    patterns = []
    for row in doc.get("patterns", ()):
        values = []
        for value in row:
            if value is None:
                values.append(None)
            else:
                try:
                    values.append(by_value[value])
                except KeyError:
                    raise DataError(
                        f"subdatabase {doc['name']!r} references unknown "
                        f"OID value {value}") from None
        patterns.append(ExtensionalPattern(values))
    info = {}
    for slot, entry in doc.get("derived_info", {}).items():
        visible = entry.get("visible_attrs")
        info[slot] = DerivedClassInfo(
            ref=ClassRef.parse(entry["ref"]),
            source=ClassRef.parse(entry["source"]),
            visible_attrs=tuple(visible) if visible is not None else None)
    return Subdatabase(doc["name"], IntensionalPattern(slots, edges),
                       patterns, info)
