"""Whole-session persistence: a rule engine with its schema, data,
rules, control modes, and (optionally) materialized derived results.

``save_session(engine, path)`` writes one JSON document;
``load_session(path)`` returns a fully wired
:class:`~repro.rules.engine.RuleEngine` — rules re-registered with their
labels and modes, materialized subdatabases restored so pre-evaluated
results are warm immediately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.storage.atomic import atomic_write_text

from repro.errors import DataError
from repro.rules.control import (
    EvaluationMode,
    ResultOrientedController,
    RuleChainingMode,
    RuleOrientedController,
)
from repro.rules.engine import RuleEngine
from repro.storage.serialize import (
    FORMAT_VERSION,
    database_from_dict,
    database_to_dict,
    schema_from_dict,
    schema_to_dict,
    subdatabase_from_dict,
    subdatabase_to_dict,
)


def _controller_kind(engine: RuleEngine) -> str:
    if isinstance(engine.controller, RuleOrientedController):
        return "rule"
    return "result"


def rule_mode(engine: RuleEngine, rule) -> Optional[str]:
    """The serialized control-mode value of ``rule`` under the engine's
    active controller (also used by the WAL backends' rule records)."""
    controller = engine.controller
    if isinstance(controller, RuleOrientedController):
        mode = controller._rule_modes.get(rule)
        return mode.value if mode else None
    mode = controller._modes.get(rule.target)
    return mode.value if mode else None


_rule_mode = rule_mode


def session_to_dict(engine: RuleEngine,
                    include_materialized: bool = True) -> Dict[str, Any]:
    """Serialize a whole deductive session."""
    doc: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "controller": _controller_kind(engine),
        "schema": schema_to_dict(engine.db.schema),
        "database": database_to_dict(engine.db),
        "rules": [
            {"text": rule.text or str(rule), "label": rule.label,
             "mode": _rule_mode(engine, rule)}
            for rule in engine.rules],
    }
    if include_materialized:
        doc["materialized"] = [
            subdatabase_to_dict(engine.universe.get_subdb(name))
            for name in engine.universe.subdb_names]
    return doc


def session_from_dict(doc: Dict[str, Any]) -> RuleEngine:
    """Rebuild a session (inverse of :func:`session_to_dict`)."""
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise DataError(
            f"unsupported session format version {version!r} "
            f"(this build reads {FORMAT_VERSION})")
    schema = schema_from_dict(doc["schema"])
    db = database_from_dict(doc["database"], schema)
    controller = doc.get("controller", "result")
    engine = RuleEngine(db, controller=controller)
    mode_enum = (RuleChainingMode if controller == "rule"
                 else EvaluationMode)
    for entry in doc.get("rules", ()):
        mode = mode_enum(entry["mode"]) if entry.get("mode") else None
        engine.add_rule(entry["text"], label=entry.get("label"),
                        mode=mode)
    for sub_doc in doc.get("materialized", ()):
        engine.universe.register(subdatabase_from_dict(sub_doc, db))
    return engine


def save_session(engine: RuleEngine, path: Union[str, Path],
                 include_materialized: bool = True) -> Path:
    """Write the session document to ``path`` (JSON), atomically.

    The document is written to a temporary file in the same directory,
    fsync'd, and renamed over the destination — a crash mid-write can
    never destroy the previous copy.
    """
    path = Path(path)
    doc = session_to_dict(engine, include_materialized)
    atomic_write_text(path, json.dumps(doc, indent=1, sort_keys=True))
    return path


def load_session(path: Union[str, Path]) -> RuleEngine:
    """Read a session document written by :func:`save_session`."""
    doc = json.loads(Path(path).read_text())
    return session_from_dict(doc)
