"""Subdatabases: the closed world the rule language operates in.

A subdatabase (paper, Section 3.1) is a portion of the database consisting
of an *intensional association pattern* — a network of E-classes and their
associations — and a set of *extensional association patterns* — networks
of instances, representable as tuples of OIDs with Null components.

Because both the intension and the extension of a derived subdatabase are
expressed with the same structural constructs as the base database
(classes, associations, objects), a derived subdatabase can be uniformly
operated on by further queries and rules: the world of subdatabases is
closed under the language (paper, Sections 1 and 4).
"""

from repro.subdb.attrindex import AttrIndex, AttrIndexStore
from repro.subdb.refs import ClassRef
from repro.subdb.pattern import ExtensionalPattern, PatternType, covers
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.universe import EdgeResolution, Universe
from repro.subdb.snapshot import (
    DatabaseSnapshot,
    SnapshotExpiredError,
    SnapshotUniverse,
)
from repro.subdb import algebra

__all__ = [
    "algebra",
    "AttrIndex",
    "AttrIndexStore",
    "ClassRef",
    "ExtensionalPattern",
    "PatternType",
    "covers",
    "Edge",
    "IntensionalPattern",
    "Subdatabase",
    "DerivedClassInfo",
    "EdgeResolution",
    "Universe",
    "DatabaseSnapshot",
    "SnapshotUniverse",
    "SnapshotExpiredError",
]
