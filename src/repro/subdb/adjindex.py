"""Columnar (CSR) adjacency indexes over interned OIDs.

For one resolved edge crossed in one direction, an
:class:`AdjacencyIndex` stores, per dense source id, the dense target
ids reachable across the edge — offsets + neighbors arrays, the classic
compressed-sparse-row layout.  Neighbor ids are pre-restricted to the
target class's extent, so a join hop is ``row(i)`` plus (when the slot
carries an intra-class condition) one membership filter over ints.

:class:`CompactStore` owns a universe's intern tables
(:mod:`repro.model.interning`) and adjacency indexes, built lazily and
invalidated *fine-grained* from database update events:

* INSERT / DELETE drop the intern tables of the touched classes (the
  event's ``classes`` already carries the superclass closure); any
  adjacency index built over a dropped table dies with it via an
  identity check — a deleted object's vanished links can only affect
  rows of tables that contained the object;
* ASSOCIATE / DISSOCIATE drop only the indexes of that link;
* SET_ATTRIBUTE touches nothing (tables cover unfiltered extents);
* subdatabase (re-)registration drops that subdatabase's entries;
* anything else (schema evolution, unobserved version drift inside an
  open ``batch`` block) conservatively clears everything.

Fine granularity is what lets the incremental maintainer *consume* the
same indexes: a single-link update leaves every other link's CSR valid,
so delta expansion after the event still runs over interned ints
(:meth:`CompactStore.adjacency_if_ready`).
"""

from __future__ import annotations

import weakref
from array import array
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.model.database import EMPTY_OIDS, UpdateEvent, UpdateKind
from repro.model.interning import InternTable, OIDInterner


class AdjacencyIndex:
    """CSR adjacency for one (edge, direction) between two intern tables.

    ``row(i)`` is the neighbor-id slice of source id ``i`` — target ids
    only ever reference ``tgt`` table members, in ascending order.
    """

    __slots__ = ("src", "tgt", "offsets", "neighbors", "link_key", "token")

    def __init__(self, src: InternTable, tgt: InternTable,
                 rows: Sequence[Sequence[int]],
                 link_key: Optional[Tuple[str, str]] = None,
                 token: Any = None):
        self.src = src
        self.tgt = tgt
        offsets = array("q", [0])
        neighbors = array("q")
        for ids in rows:
            neighbors.extend(ids)
            offsets.append(len(neighbors))
        self.offsets = offsets
        self.neighbors = neighbors
        #: The base link key this index reads (``None`` for identity and
        #: derived-association indexes) — matched against
        #: ASSOCIATE/DISSOCIATE events.
        self.link_key = link_key
        #: Identity-compared validity token (the subdatabase object for
        #: derived-association indexes).
        self.token = token

    def row(self, i: int) -> array:
        """Neighbor ids of source id ``i`` (ascending, may be empty)."""
        return self.neighbors[self.offsets[i]:self.offsets[i + 1]]

    def pair_count(self) -> int:
        return len(self.neighbors)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"AdjacencyIndex({self.src.key!r} -> {self.tgt.key!r}, "
                f"{len(self.neighbors)} pairs)")


class CompactStore:
    """Per-universe registry of intern tables + adjacency indexes."""

    def __init__(self, universe) -> None:
        self.universe = universe
        self.db = universe.db
        self.interner = OIDInterner()
        self._adj: Dict[Any, AdjacencyIndex] = {}
        self._seen_version = self.db.version
        #: Build/invalidation counters surfaced by benchmarks.
        self.tables_built = 0
        self.indexes_built = 0
        # Subscribe through a weakref so a forgotten Universe (tests
        # create many over one database) is not kept alive by the
        # listener list; a dead subscription unhooks itself on the next
        # event.
        self_ref = weakref.ref(self)
        db = self.db

        def _listener(event: UpdateEvent, _ref=self_ref, _db=db) -> None:
            store = _ref()
            if store is None:
                _db.remove_listener(_listener)
                return
            store._on_event(event)

        self._listener = _listener
        db.add_listener(_listener)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    @property
    def in_sync(self) -> bool:
        """False while mutations exist that no event reported yet (we
        are inside an open ``batch`` block); lookups then bypass and
        clear the caches rather than risk serving stale rows."""
        return self.db.version == self._seen_version

    def _on_event(self, event: UpdateEvent) -> None:
        self._seen_version = event.version
        self._apply(event)

    def _apply(self, event: UpdateEvent) -> None:
        kind = event.kind
        if kind is UpdateKind.BATCH:
            for sub in event.sub_events:
                self._apply(sub)
        elif kind in (UpdateKind.INSERT, UpdateKind.DELETE):
            self.interner.invalidate_classes(event.classes)
            # Purge adjacency entries built over the dropped tables in
            # the same event dispatch.  The identity check in
            # adjacency() already refuses them, but keeping dead entries
            # around both leaks memory under churn and leaves a window
            # where a snapshot of this store taken between the interner
            # drop and the next rebuild could pair a stale CSR with a
            # fresh extent; mutators hold the database write lock
            # through listener notification, so this purge is atomic
            # with the data-version bump.
            dropped = {("base", cls) for cls in event.classes}
            stale = [key for key, index in self._adj.items()
                     if index.src.key in dropped or index.tgt.key in dropped]
            for key in stale:
                del self._adj[key]
        elif kind in (UpdateKind.ASSOCIATE, UpdateKind.DISSOCIATE):
            link = event.link
            stale = [key for key, index in self._adj.items()
                     if index.link_key == link]
            for key in stale:
                del self._adj[key]
        elif kind is UpdateKind.SET_ATTRIBUTE:
            pass  # extents and links untouched
        else:  # SCHEMA or future kinds: be conservative
            self.clear()

    def on_subdb_change(self, name: str) -> None:
        """A subdatabase was (re-)registered or dropped."""
        self.interner.invalidate_subdb(name)
        stale = [key for key, index in self._adj.items()
                 if index.src.key[0] != "base" and index.src.key[1] == name
                 or index.tgt.key[0] != "base" and index.tgt.key[1] == name
                 or key[0] == "subdb" and key[1] == name]
        for key in stale:
            del self._adj[key]

    def clear(self) -> None:
        self.interner.clear()
        self._adj.clear()

    def _resync(self) -> None:
        """Catch up after unobserved mutations (inside a batch): nothing
        tells us *what* changed, so drop everything."""
        self.clear()
        self._seen_version = self.db.version

    # ------------------------------------------------------------------
    # Intern tables
    # ------------------------------------------------------------------

    def _table_spec(self, ref) -> Tuple[Any, Any]:
        """(cache key, validity token) for a class reference's extent —
        mirrors :meth:`Universe.extent`'s dispatch."""
        if ref.subdb is None:
            return ("base", ref.cls), None
        subdb = self.universe.get_subdb(ref.subdb)
        if ref.alias is not None:
            slot = type(ref)(ref.cls, None, ref.alias).slot
            if subdb.intension.has_slot(slot):
                return ("subdb-slot", ref.subdb, slot), subdb
        return ("subdb-class", ref.subdb, ref.cls), subdb

    def table(self, ref) -> InternTable:
        """The intern table over ``ref``'s (unfiltered) extent, built on
        first use and reused until invalidated."""
        if not self.in_sync:
            self._resync()
        key, token = self._table_spec(ref)
        cached = self.interner.get(key)
        if cached is not None and cached.token is token:
            return cached
        self.tables_built += 1
        return self.interner.build(key, self.universe.extent(ref), token)

    def table_if_ready(self, ref) -> Optional[InternTable]:
        """The cached valid table, or ``None`` — never builds.  The
        incremental maintainer uses this so a delta refresh stays
        proportional to the delta instead of paying an extent scan."""
        if not self.in_sync:
            return None
        key, token = self._table_spec(ref)
        cached = self.interner.get(key)
        if cached is not None and cached.token is token:
            return cached
        return None

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def _adj_spec(self, resolution, forward: bool, src_key, tgt_key):
        if resolution.kind == "identity":
            return ("identity", src_key, tgt_key)
        if resolution.kind == "base":
            from_owner = (resolution.resolved.a_is_owner if forward
                          else not resolution.resolved.a_is_owner)
            return ("base", resolution.resolved.link.key, from_owner,
                    src_key, tgt_key)
        return ("subdb", resolution.subdb, resolution.i, resolution.j,
                forward, src_key, tgt_key)

    def adjacency(self, resolution, forward: bool,
                  src_ref, tgt_ref) -> AdjacencyIndex:
        """The CSR index for crossing ``resolution`` from ``src_ref``'s
        extent to ``tgt_ref``'s (``forward`` moves from the resolution's
        first reference to its second), building it if needed."""
        src = self.table(src_ref)
        tgt = self.table(tgt_ref)
        key = self._adj_spec(resolution, forward, src.key, tgt.key)
        cached = self._adj.get(key)
        if cached is not None and cached.src is src and cached.tgt is tgt:
            if resolution.kind != "subdb" or \
                    cached.token is self.universe._subdbs.get(resolution.subdb):
                return cached
        index = self._build(resolution, forward, src, tgt)
        self._adj[key] = index
        self.indexes_built += 1
        return index

    def adjacency_if_ready(self, resolution, forward: bool,
                           src_ref, tgt_ref) -> Optional[AdjacencyIndex]:
        """The cached valid index, or ``None`` — never builds."""
        if not self.in_sync:
            return None
        src = self.table_if_ready(src_ref)
        tgt = self.table_if_ready(tgt_ref)
        if src is None or tgt is None:
            return None
        key = self._adj_spec(resolution, forward, src.key, tgt.key)
        cached = self._adj.get(key)
        if cached is not None and cached.src is src and cached.tgt is tgt:
            if resolution.kind != "subdb" or \
                    cached.token is self.universe._subdbs.get(resolution.subdb):
                return cached
        return None

    def _build(self, resolution, forward: bool, src: InternTable,
               tgt: InternTable) -> AdjacencyIndex:
        tgt_index = tgt.index
        rows: List[List[int]] = []
        if resolution.kind == "identity":
            for oid in src.oids:
                i = tgt_index.get(oid.value)
                rows.append([] if i is None else [i])
            return AdjacencyIndex(src, tgt, rows)
        if resolution.kind == "base":
            from_owner = (resolution.resolved.a_is_owner if forward
                          else not resolution.resolved.a_is_owner)
            table = self.db.link_index(resolution.resolved.link, from_owner)
            for oid in src.oids:
                linked = table.get(oid, EMPTY_OIDS)
                if linked:
                    rows.append(sorted(tgt_index[o.value] for o in linked
                                       if o.value in tgt_index))
                else:
                    rows.append([])
            return AdjacencyIndex(src, tgt, rows,
                                  link_key=resolution.resolved.link.key)
        # Derived direct association inside one subdatabase.
        subdb = self.universe.get_subdb(resolution.subdb)
        by_src: Dict[int, List[int]] = {}
        for left, right in subdb.pairs(resolution.i, resolution.j):
            if not forward:
                left, right = right, left
            s = src.index.get(left.value)
            t = tgt_index.get(right.value)
            if s is not None and t is not None:
                by_src.setdefault(s, []).append(t)
        for i in range(len(src.oids)):
            rows.append(sorted(by_src.get(i, ())))
        return AdjacencyIndex(src, tgt, rows, token=subdb)
