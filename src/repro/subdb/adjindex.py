"""Columnar (CSR) adjacency indexes over interned OIDs.

For one resolved edge crossed in one direction, an
:class:`AdjacencyIndex` stores, per dense source id, the dense target
ids reachable across the edge — offsets + neighbors arrays, the classic
compressed-sparse-row layout.  Neighbor ids are pre-restricted to the
target class's extent, so a join hop is ``row(i)`` plus (when the slot
carries an intra-class condition) one membership filter over ints.

:class:`CompactStore` owns a universe's intern tables
(:mod:`repro.model.interning`) and adjacency indexes, built lazily and
invalidated *fine-grained* from database update events:

* INSERT *appends*: the OID allocator is monotonic, so a new object
  sorts after every interned id and each cached table of a touched
  class extends in place; adjacency indexes over an extended source
  table gain one (empty, or identity-singleton) CSR row — nothing is
  rebuilt;
* DELETE *remaps*: each touched table is replaced by a new one minus
  the object (never mutated — rows interned against the old table keep
  decoding), and every adjacency index over a replaced table is rebuilt
  from its own arrays by dropping the dead row / renumbering neighbor
  ids — no link-index rescan;
* ASSOCIATE / DISSOCIATE drop only the indexes of that link;
* SET_ATTRIBUTE touches nothing (tables cover unfiltered extents);
* subdatabase (re-)registration drops that subdatabase's entries;
* anything else (schema evolution, unobserved version drift inside an
  open ``batch`` block) conservatively clears everything.

Fine granularity is what lets the incremental maintainer *consume* the
same indexes: a single-link update leaves every other link's CSR valid,
so delta expansion after the event still runs over interned ints
(:meth:`CompactStore.adjacency_if_ready`).
"""

from __future__ import annotations

import weakref
from array import array
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.model.database import EMPTY_OIDS, UpdateEvent, UpdateKind
from repro.model.interning import InternTable, OIDInterner
from repro.subdb.attrindex import AttrIndexStore


class AdjacencyIndex:
    """CSR adjacency for one (edge, direction) between two intern tables.

    ``row(i)`` is the neighbor-id slice of source id ``i`` — target ids
    only ever reference ``tgt`` table members, in ascending order.
    """

    __slots__ = ("src", "tgt", "offsets", "neighbors", "link_key", "token",
                 "epoch")

    def __init__(self, src: InternTable, tgt: InternTable,
                 rows: Sequence[Sequence[int]],
                 link_key: Optional[Tuple[str, str]] = None,
                 token: Any = None):
        self.src = src
        self.tgt = tgt
        offsets = array("q", [0])
        neighbors = array("q")
        for ids in rows:
            neighbors.extend(ids)
            offsets.append(len(neighbors))
        self.offsets = offsets
        self.neighbors = neighbors
        #: The base link key this index reads (``None`` for identity and
        #: derived-association indexes) — matched against
        #: ASSOCIATE/DISSOCIATE events.
        self.link_key = link_key
        #: Identity-compared validity token (the subdatabase object for
        #: derived-association indexes).
        self.token = token
        #: In-place mutation counter: INSERT deltas append to the CSR
        #: arrays without replacing the object, so consumers that cache
        #: *copies* of the arrays (shared-memory plane exports) compare
        #: this alongside object identity.
        self.epoch = 0

    def row(self, i: int) -> array:
        """Neighbor ids of source id ``i`` (ascending, may be empty)."""
        return self.neighbors[self.offsets[i]:self.offsets[i + 1]]

    def pair_count(self) -> int:
        return len(self.neighbors)

    def plane_arrays(self) -> Dict[str, array]:
        """The index's frozen *plane* representation — the CSR arrays as
        named int64 buffers for shared-memory export
        (:mod:`repro.subdb.planes`).  Exports are copies: later in-place
        appends bump :attr:`epoch` so cached exports re-snapshot."""
        return {"offsets": self.offsets, "neighbors": self.neighbors}

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"AdjacencyIndex({self.src.key!r} -> {self.tgt.key!r}, "
                f"{len(self.neighbors)} pairs)")


class CompactStore:
    """Per-universe registry of intern tables + adjacency indexes."""

    def __init__(self, universe) -> None:
        self.universe = universe
        self.db = universe.db
        self.interner = OIDInterner()
        self._adj: Dict[Any, AdjacencyIndex] = {}
        #: Declared secondary value indexes (``\\index add``), maintained
        #: through the same event application as adjacency.
        self.attrs = AttrIndexStore(self)
        self._seen_version = self.db.version
        #: Build/invalidation counters surfaced by benchmarks.
        self.tables_built = 0
        self.indexes_built = 0
        #: Delta-application counters: in-place INSERT appends and
        #: DELETE remaps that avoided a full rebuild.
        self.tables_appended = 0
        self.indexes_appended = 0
        self.tables_remapped = 0
        self.indexes_remapped = 0
        # Subscribe through a weakref so a forgotten Universe (tests
        # create many over one database) is not kept alive by the
        # listener list; a dead subscription unhooks itself on the next
        # event.
        self_ref = weakref.ref(self)
        db = self.db

        def _listener(event: UpdateEvent, _ref=self_ref, _db=db) -> None:
            store = _ref()
            if store is None:
                _db.remove_listener(_listener)
                return
            store._on_event(event)

        self._listener = _listener
        db.add_listener(_listener)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    @property
    def in_sync(self) -> bool:
        """False while mutations exist that no event reported yet (we
        are inside an open ``batch`` block); lookups then bypass and
        clear the caches rather than risk serving stale rows."""
        return self.db.version == self._seen_version

    def _on_event(self, event: UpdateEvent) -> None:
        self._seen_version = event.version
        self._apply(event)

    def _apply(self, event: UpdateEvent) -> None:
        kind = event.kind
        if kind is UpdateKind.BATCH:
            for sub in event.sub_events:
                self._apply(sub)
        elif kind is UpdateKind.INSERT and len(event.oids) == 1:
            self._apply_insert(event)
        elif kind is UpdateKind.DELETE and len(event.oids) == 1:
            self._apply_delete(event)
        elif kind in (UpdateKind.INSERT, UpdateKind.DELETE):
            # Unexpected shape (no single OID): fall back to purging.
            self._purge_classes(event.classes)
        elif kind in (UpdateKind.ASSOCIATE, UpdateKind.DISSOCIATE):
            link = event.link
            stale = [key for key, index in self._adj.items()
                     if index.link_key == link]
            for key in stale:
                del self._adj[key]
        elif kind is UpdateKind.SET_ATTRIBUTE:
            # Extents and links untouched; value indexes re-bucket the
            # one changed posting.
            if event.payload:
                self.attrs.apply_set_attribute(event.payload)
        else:  # SCHEMA or future kinds: be conservative
            self.clear()

    def _purge_classes(self, classes) -> None:
        """The coarse pre-delta behavior: drop the base tables of the
        touched classes and every adjacency index built over them.
        Mutators hold the database write lock through listener
        notification, so the purge is atomic with the version bump."""
        self.interner.invalidate_classes(classes)
        dropped = {("base", cls) for cls in classes}
        stale = [key for key, index in self._adj.items()
                 if index.src.key in dropped or index.tgt.key in dropped]
        for key in stale:
            del self._adj[key]
        self.attrs.purge_tables(dropped)

    def _apply_insert(self, event: UpdateEvent) -> None:
        """Extend cached structures with the new object in place.

        The OID allocator is monotonic, so the object sorts last in
        every touched extent: appending it keeps existing dense ids
        stable, and any adjacency index whose *source* table grew needs
        exactly one new CSR row — empty for a link edge (a fresh object
        has no links yet), the identity image for an identity edge.  A
        grown *target* table alone needs nothing: no existing row can
        reference the new, unlinked id.
        """
        oid = event.oids[0]
        appended: Dict[int, InternTable] = {}
        for cls in event.classes:
            table = self.interner.get(("base", cls))
            if table is None:
                continue
            try:
                table.append(oid)
            except ValueError:  # pragma: no cover - defensive
                self._purge_classes((cls,))
                continue
            appended[id(table)] = table
            self.tables_appended += 1
        if not appended:
            return
        for index in self._adj.values():
            if id(index.src) not in appended:
                continue
            is_identity = index.link_key is None and index.token is None
            if is_identity and id(index.tgt) in appended:
                index.neighbors.append(index.tgt.index[oid.value])
            index.offsets.append(len(index.neighbors))
            index.epoch += 1
            self.indexes_appended += 1
        self.attrs.apply_insert(oid, appended)

    def _apply_delete(self, event: UpdateEvent) -> None:
        """Replace cached structures by copies without the dead object.

        Deletion shifts dense ids after the dead one, so tables are
        swapped for new objects (holders of the old table keep a
        consistent snapshot — deferred pattern decodes still work) and
        each adjacency index over a replaced table is rebuilt from its
        own arrays: drop the dead source row, filter the dead target id,
        renumber ids above it.  The deleted object's silently-removed
        links only appear in rows of tables that contained it, and every
        such table is in the event's superclass closure.
        """
        oid = event.oids[0]
        #: id(old table) -> (replacement, dead dense id)
        replaced: Dict[int, Tuple[InternTable, int]] = {}
        for cls in event.classes:
            key = ("base", cls)
            table = self.interner.get(key)
            if table is None:
                continue
            dead = table.index.get(oid.value)
            if dead is None:  # pragma: no cover - defensive
                self._purge_classes((cls,))
                continue
            new_table = table.without(oid)
            self.interner.replace(key, new_table)
            replaced[id(table)] = (new_table, dead)
            self.tables_remapped += 1
        if not replaced:
            return
        for key, index in list(self._adj.items()):
            src_swap = replaced.get(id(index.src))
            tgt_swap = replaced.get(id(index.tgt))
            if src_swap is None and tgt_swap is None:
                continue
            new_src, src_dead = src_swap if src_swap is not None \
                else (index.src, -1)
            new_tgt, tgt_dead = tgt_swap if tgt_swap is not None \
                else (index.tgt, -1)
            rows: List[List[int]] = []
            for i in range(len(index.src)):
                if i == src_dead:
                    continue
                row = index.row(i)
                if tgt_dead >= 0:
                    row = [t - (t > tgt_dead) for t in row if t != tgt_dead]
                rows.append(row)
            self._adj[key] = AdjacencyIndex(new_src, new_tgt, rows,
                                            link_key=index.link_key,
                                            token=index.token)
            self.indexes_remapped += 1
        self.attrs.apply_delete(replaced)

    def on_subdb_change(self, name: str) -> None:
        """A subdatabase was (re-)registered or dropped."""
        self.interner.invalidate_subdb(name)
        stale = [key for key, index in self._adj.items()
                 if index.src.key[0] != "base" and index.src.key[1] == name
                 or index.tgt.key[0] != "base" and index.tgt.key[1] == name
                 or key[0] == "subdb" and key[1] == name]
        for key in stale:
            del self._adj[key]

    def clear(self) -> None:
        self.interner.clear()
        self._adj.clear()
        self.attrs.clear()

    def _resync(self) -> None:
        """Catch up after unobserved mutations (inside a batch): nothing
        tells us *what* changed, so drop everything."""
        self.clear()
        self._seen_version = self.db.version

    # ------------------------------------------------------------------
    # Intern tables
    # ------------------------------------------------------------------

    def _table_spec(self, ref) -> Tuple[Any, Any]:
        """(cache key, validity token) for a class reference's extent —
        mirrors :meth:`Universe.extent`'s dispatch."""
        if ref.subdb is None:
            return ("base", ref.cls), None
        subdb = self.universe.get_subdb(ref.subdb)
        if ref.alias is not None:
            slot = type(ref)(ref.cls, None, ref.alias).slot
            if subdb.intension.has_slot(slot):
                return ("subdb-slot", ref.subdb, slot), subdb
        return ("subdb-class", ref.subdb, ref.cls), subdb

    def table(self, ref) -> InternTable:
        """The intern table over ``ref``'s (unfiltered) extent, built on
        first use and reused until invalidated."""
        if not self.in_sync:
            self._resync()
        key, token = self._table_spec(ref)
        cached = self.interner.get(key)
        if cached is not None and cached.token is token:
            return cached
        self.tables_built += 1
        return self.interner.build(key, self.universe.extent(ref), token)

    def table_if_ready(self, ref) -> Optional[InternTable]:
        """The cached valid table, or ``None`` — never builds.  The
        incremental maintainer uses this so a delta refresh stays
        proportional to the delta instead of paying an extent scan."""
        if not self.in_sync:
            return None
        key, token = self._table_spec(ref)
        cached = self.interner.get(key)
        if cached is not None and cached.token is token:
            return cached
        return None

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def _adj_spec(self, resolution, forward: bool, src_key, tgt_key):
        if resolution.kind == "identity":
            return ("identity", src_key, tgt_key)
        if resolution.kind == "base":
            from_owner = (resolution.resolved.a_is_owner if forward
                          else not resolution.resolved.a_is_owner)
            return ("base", resolution.resolved.link.key, from_owner,
                    src_key, tgt_key)
        return ("subdb", resolution.subdb, resolution.i, resolution.j,
                forward, src_key, tgt_key)

    def adjacency(self, resolution, forward: bool,
                  src_ref, tgt_ref) -> AdjacencyIndex:
        """The CSR index for crossing ``resolution`` from ``src_ref``'s
        extent to ``tgt_ref``'s (``forward`` moves from the resolution's
        first reference to its second), building it if needed."""
        src = self.table(src_ref)
        tgt = self.table(tgt_ref)
        key = self._adj_spec(resolution, forward, src.key, tgt.key)
        cached = self._adj.get(key)
        if cached is not None and cached.src is src and cached.tgt is tgt:
            if resolution.kind != "subdb" or \
                    cached.token is self.universe._subdbs.get(resolution.subdb):
                return cached
        index = self._build(resolution, forward, src, tgt)
        self._adj[key] = index
        self.indexes_built += 1
        return index

    def adjacency_if_ready(self, resolution, forward: bool,
                           src_ref, tgt_ref) -> Optional[AdjacencyIndex]:
        """The cached valid index, or ``None`` — never builds."""
        if not self.in_sync:
            return None
        src = self.table_if_ready(src_ref)
        tgt = self.table_if_ready(tgt_ref)
        if src is None or tgt is None:
            return None
        key = self._adj_spec(resolution, forward, src.key, tgt.key)
        cached = self._adj.get(key)
        if cached is not None and cached.src is src and cached.tgt is tgt:
            if resolution.kind != "subdb" or \
                    cached.token is self.universe._subdbs.get(resolution.subdb):
                return cached
        return None

    def _build(self, resolution, forward: bool, src: InternTable,
               tgt: InternTable) -> AdjacencyIndex:
        tgt_index = tgt.index
        rows: List[List[int]] = []
        if resolution.kind == "identity":
            for oid in src.oids:
                i = tgt_index.get(oid.value)
                rows.append([] if i is None else [i])
            return AdjacencyIndex(src, tgt, rows)
        if resolution.kind == "base":
            from_owner = (resolution.resolved.a_is_owner if forward
                          else not resolution.resolved.a_is_owner)
            table = self.db.link_index(resolution.resolved.link, from_owner)
            for oid in src.oids:
                linked = table.get(oid, EMPTY_OIDS)
                if linked:
                    rows.append(sorted(tgt_index[o.value] for o in linked
                                       if o.value in tgt_index))
                else:
                    rows.append([])
            return AdjacencyIndex(src, tgt, rows,
                                  link_key=resolution.resolved.link.key)
        # Derived direct association inside one subdatabase.
        subdb = self.universe.get_subdb(resolution.subdb)
        by_src: Dict[int, List[int]] = {}
        for left, right in subdb.pairs(resolution.i, resolution.j):
            if not forward:
                left, right = right, left
            s = src.index.get(left.value)
            t = tgt_index.get(right.value)
            if s is not None and t is not None:
                by_src.setdefault(s, []).append(t)
        for i in range(len(src.oids)):
            rows.append(sorted(by_src.get(i, ())))
        return AdjacencyIndex(src, tgt, rows, token=subdb)
