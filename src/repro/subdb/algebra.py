"""Set algebra on subdatabases.

Because the world of subdatabases is closed, applications often end up
holding several subdatabases over the *same* intensional pattern — two
query results, two snapshots of a derived result, the contributions of
two rules — and want their union, intersection or difference.  These
helpers implement the obvious pattern-set semantics:

* operands must be **slot-compatible**: the same slot names bound to the
  same classes (order may differ; patterns are re-aligned);
* ``union`` applies the subsumption rule afterwards (a pattern must not
  appear independently next to a larger one it is part of);
* ``difference`` and ``intersection`` compare whole patterns (OID tuples
  with Nulls), exactly as rule union compares them (Section 4.2).

``restrict`` filters a subdatabase's patterns with a Python predicate —
useful for programmatic post-processing that OQL's Where subclause does
not cover.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import OQLSemanticError
from repro.subdb.pattern import ExtensionalPattern, subsume
from repro.subdb.subdatabase import Subdatabase


def _alignment(a: Subdatabase, b: Subdatabase) -> List[int]:
    """For each slot of ``a``, the index of the same slot in ``b``."""
    if set(a.slot_names) != set(b.slot_names):
        raise OQLSemanticError(
            f"subdatabases {a.name!r} and {b.name!r} are not "
            f"slot-compatible: {list(a.slot_names)} vs "
            f"{list(b.slot_names)}")
    mapping = []
    for name in a.slot_names:
        i = b.intension.index_of(name)
        if b.intension.slots[i].cls != \
                a.intension.slots[a.intension.index_of(name)].cls:
            raise OQLSemanticError(
                f"slot {name!r} binds different classes in "
                f"{a.name!r} and {b.name!r}")  # pragma: no cover
        mapping.append(i)
    return mapping


def _aligned_patterns(a: Subdatabase, b: Subdatabase):
    mapping = _alignment(a, b)
    return {ExtensionalPattern([p[i] for i in mapping])
            for p in b.patterns}


def union(a: Subdatabase, b: Subdatabase,
          name: Optional[str] = None) -> Subdatabase:
    """All patterns of either operand (subsumption re-applied)."""
    patterns = set(a.patterns) | _aligned_patterns(a, b)
    return Subdatabase(name or f"{a.name}_union_{b.name}", a.intension,
                       subsume(patterns), a.derived_info)


def intersection(a: Subdatabase, b: Subdatabase,
                 name: Optional[str] = None) -> Subdatabase:
    """The patterns present in both operands."""
    patterns = set(a.patterns) & _aligned_patterns(a, b)
    return Subdatabase(name or f"{a.name}_intersect_{b.name}",
                       a.intension, patterns, a.derived_info)


def difference(a: Subdatabase, b: Subdatabase,
               name: Optional[str] = None) -> Subdatabase:
    """The patterns of ``a`` not present in ``b``."""
    patterns = set(a.patterns) - _aligned_patterns(a, b)
    return Subdatabase(name or f"{a.name}_minus_{b.name}", a.intension,
                       patterns, a.derived_info)


def restrict(subdb: Subdatabase,
             predicate: Callable[[ExtensionalPattern], bool],
             name: Optional[str] = None) -> Subdatabase:
    """Keep only the patterns satisfying a Python predicate."""
    patterns = {p for p in subdb.patterns if predicate(p)}
    return Subdatabase(name or f"{subdb.name}_restricted",
                       subdb.intension, patterns, subdb.derived_info)


def symmetric_difference(a: Subdatabase, b: Subdatabase,
                         name: Optional[str] = None) -> Subdatabase:
    """The patterns in exactly one operand — handy for diffing two
    snapshots of the same derived result."""
    aligned = _aligned_patterns(a, b)
    patterns = (set(a.patterns) - aligned) | (aligned - set(a.patterns))
    return Subdatabase(name or f"{a.name}_xor_{b.name}", a.intension,
                       patterns, a.derived_info)
