"""Secondary value indexes over interned class extents.

An :class:`AttrIndex` accelerates *intra-class conditions* — the
``employee[salary > 50000]`` selections of the paper's OQL — so that
selecting costs time proportional to the **result**, not the extent.
For one ``(class, attribute)`` pair over one
:class:`~repro.model.interning.InternTable` it maintains:

* a *hash index*: attribute value -> ascending ``array('q')`` of dense
  ids, answering ``=`` (one dict probe) and ``!=`` (complement);
* a *sorted numeric column*: the values that are numbers (``int`` /
  ``float``, with ``bool`` excluded exactly as
  :func:`repro.oql.conditions.compare` excludes it) kept in exact sorted
  order with a parallel dense-id column, answering ``< <= > >=`` with
  two bisections;
* per-type *sorted columns* for orderable non-numeric values (strings),
  answering same-type range comparisons the same way.

Probe answers are **bit-identical** to a scan that calls
``conditions.compare`` per entity.  That contract dictates the odd
corners:

* dict-key equality *is* ``compare(v, "=", lit)`` — Python interns
  ``1 == 1.0 == True`` into one bucket, matching ``==`` exactly;
* ordering against a ``None`` literal is uniformly false, and ``None``
  values appear in no sorted column (ordering against them is false);
* a numeric-vs-non-numeric (or cross-type non-numeric) ordering
  comparison raises :class:`~repro.errors.OQLSemanticError` *if any
  entity carries a conflicting value* — the index keeps a type census so
  a probe can report :data:`CONFLICT` without touching entities, and the
  caller decides (by conjunct position) whether that conflict is
  guaranteed to surface under the scan's short-circuit order;
* anything the index cannot mirror exactly (unhashable literals,
  unorderable value types) reports :data:`FALLBACK` and the caller
  scans.

Indexes are *declared* per ``(class, attribute)`` (``\\index add`` in the
shell, or the evaluator's opt-in auto-build heuristic) and owned by an
:class:`AttrIndexStore` inside the universe's
:class:`~repro.subdb.adjindex.CompactStore`, which routes the same
event-granular invalidation path adjacency indexes use: INSERT appends
one posting in place, DELETE remaps to the replacement intern table,
SET_ATTRIBUTE re-buckets exactly one posting, ASSOCIATE/DISSOCIATE touch
nothing, and schema changes clear (declarations survive clears).
``epoch`` counts in-place mutations so shared-memory plane exports
(:mod:`repro.subdb.planes`) of index-derived row sets revalidate, and
:meth:`AttrIndex.plane_arrays` freezes the numeric column with an
order-preserving int64 encoding (:func:`encode_ordered`).
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_left, bisect_right, insort
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.model.interning import InternTable

#: Probe statuses.
OK = "ok"
#: The type census proves a scan would raise ``OQLSemanticError`` on
#: some entity (numeric-vs-non-numeric or cross-type ordering).
CONFLICT = "conflict"
#: The index cannot mirror scan semantics for this probe — caller scans.
FALLBACK = "fallback"

_EMPTY = array("q")

_SIGN = 1 << 63
#: Integers beyond ±2**53 do not round-trip through float64; the
#: exported encoded column flags them (probing the live index is exact —
#: it bisects Python values, never the encoding).
EXACT_INT_BOUND = 2 ** 53


def _is_num(value: Any) -> bool:
    """Numeric for comparison purposes — matches ``conditions.compare``:
    ``bool`` is *not* a number there."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def encode_ordered(value: Any) -> int:
    """Order-preserving int64 encoding of a numeric value.

    Maps float64 totally-ordered onto signed int64 (the classic
    sign-flip trick: non-negative floats set the sign bit, negative
    floats invert all bits), so a frozen plane of encoded keys supports
    numpy ``searchsorted`` probes.  Ints are encoded through ``float``;
    beyond :data:`EXACT_INT_BOUND` that is lossy, which is why exported
    planes carry an exactness flag and live probes never use this.
    """
    # ``+ 0.0`` collapses -0.0 onto 0.0 so equal floats encode equally.
    bits = struct.unpack("<q", struct.pack("<d", float(value) + 0.0))[0]
    if bits >= 0:
        return bits
    # Negative floats: bigger raw bit patterns mean smaller values, so
    # flip them below zero in reverse (-inf encodes most negative).
    return ~bits - _SIGN


class AttrIndex:
    """Hash + sorted-column index for one attribute of one intern table.

    ``values[i]`` is the attribute value of dense id ``i`` (``None``
    when unset), kept as the reverse map SET_ATTRIBUTE maintenance and
    residual re-checks read.  All posting arrays hold dense ids in
    ascending order — probe results compose with CSR join filters by
    sorted-array intersection (:mod:`repro.oql.kernels`).
    """

    __slots__ = ("table", "attr", "values", "buckets", "num_values",
                 "num_ids", "typed", "unordered", "none_count", "num_count",
                 "type_counts", "broken", "epoch")

    def __init__(self, table: InternTable, attr: str,
                 values: List[Any]):
        self.table = table
        self.attr = attr
        self.values = values
        #: value -> ascending dense-id postings (``=`` / ``!=``).
        self.buckets: Dict[Any, array] = {}
        #: Numeric values in exact sorted order + parallel dense ids.
        self.num_values: List[Any] = []
        self.num_ids: array = array("q")
        #: type -> (sorted values, parallel dense ids) for orderable
        #: non-numeric types.
        self.typed: Dict[type, Tuple[list, array]] = {}
        #: Non-numeric types whose values refused to sort — range probes
        #: on them fall back to the scan.
        self.unordered: Set[type] = set()
        self.none_count = 0
        self.num_count = 0
        #: Type census of non-numeric, non-None values (``bool`` is a
        #: type of its own here, as in ``compare``).
        self.type_counts: Dict[type, int] = {}
        #: Set when a value defeats the hash index (unhashable):
        #: every probe then reports :data:`FALLBACK`.
        self.broken = False
        #: In-place mutation counter for shared-plane revalidation.
        self.epoch = 0
        self._build()

    def _build(self) -> None:
        buckets = self.buckets
        num_pairs: List[Tuple[Any, int]] = []
        typed_pairs: Dict[type, List[Tuple[Any, int]]] = {}
        for i, value in enumerate(self.values):
            try:
                postings = buckets.get(value)
                if postings is None:
                    postings = buckets[value] = array("q")
            except TypeError:
                self.broken = True
                return
            postings.append(i)
            if value is None:
                self.none_count += 1
            elif _is_num(value):
                self.num_count += 1
                num_pairs.append((value, i))
            else:
                t = type(value)
                self.type_counts[t] = self.type_counts.get(t, 0) + 1
                typed_pairs.setdefault(t, []).append((value, i))
        try:
            num_pairs.sort()
        except TypeError:  # pragma: no cover - numbers always sort
            self.broken = True
            return
        self.num_values = [v for v, _ in num_pairs]
        self.num_ids = array("q", (i for _, i in num_pairs))
        for t, pairs in typed_pairs.items():
            try:
                pairs.sort()
            except TypeError:
                self.unordered.add(t)
                continue
            self.typed[t] = ([v for v, _ in pairs],
                             array("q", (i for _, i in pairs)))

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def _ordering_conflict(self, literal: Any) -> bool:
        """True iff some stored value is not type-comparable with
        ``literal`` — i.e. a per-entity scan is guaranteed to raise on
        that entity."""
        if _is_num(literal):
            return bool(self.type_counts)
        if self.num_count:
            return True
        t = type(literal)
        return any(other is not t for other in self.type_counts)

    def probe(self, op: str, literal: Any) -> Tuple[str, Optional[array]]:
        """Answer ``<attr> op literal`` over the whole extent.

        Returns ``(OK, ids)`` with ids ascending, ``(CONFLICT, None)``
        when a scan provably raises ``OQLSemanticError``, or
        ``(FALLBACK, None)`` when the index cannot mirror the scan.
        """
        if self.broken:
            return (FALLBACK, None)
        if op == "=" or op == "!=":
            try:
                postings = self.buckets.get(literal)
            except TypeError:
                return (FALLBACK, None)
            if op == "=":
                return (OK, postings if postings is not None else _EMPTY)
            if not postings:
                return (OK, self._all_ids())
            return (OK, self._complement(postings))
        if op not in ("<", "<=", ">", ">="):
            return (FALLBACK, None)
        if literal is None:
            return (OK, _EMPTY)  # ordering against Null is false
        if self._ordering_conflict(literal):
            return (CONFLICT, None)
        if _is_num(literal):
            values, ids = self.num_values, self.num_ids
        else:
            t = type(literal)
            if t in self.unordered:
                return (FALLBACK, None)
            pair = self.typed.get(t)
            if pair is None:
                return (OK, _EMPTY)
            values, ids = pair
        lo, hi = _range_bounds(values, op, literal)
        return (OK, array("q", sorted(ids[lo:hi])))

    def cardinality(self, op: str, literal: Any) -> Optional[int]:
        """Exact result cardinality of a probe, or ``None`` when the
        probe would not be answered — the planner's selectivity source
        (no id materialization, just dict/bisect lookups)."""
        if self.broken:
            return None
        n = len(self.values)
        if op == "=" or op == "!=":
            try:
                postings = self.buckets.get(literal)
            except TypeError:
                return None
            hits = len(postings) if postings is not None else 0
            return hits if op == "=" else n - hits
        if op not in ("<", "<=", ">", ">="):
            return None
        if literal is None:
            return 0
        if self._ordering_conflict(literal):
            return None
        if _is_num(literal):
            values = self.num_values
        else:
            t = type(literal)
            if t in self.unordered:
                return None
            pair = self.typed.get(t)
            if pair is None:
                return 0
            values = pair[0]
        lo, hi = _range_bounds(values, op, literal)
        return hi - lo

    def _all_ids(self) -> array:
        return array("q", range(len(self.values)))

    def _complement(self, postings: array) -> array:
        out = array("q")
        prev = 0
        for i in postings:
            out.extend(range(prev, i))
            prev = i + 1
        out.extend(range(prev, len(self.values)))
        return out

    # ------------------------------------------------------------------
    # Incremental maintenance (driven by CompactStore event application)
    # ------------------------------------------------------------------

    def append(self, value: Any) -> None:
        """Extend with the value of a freshly inserted object — its
        dense id is ``len(self)`` (intern tables append monotonically),
        so every posting insert lands at the end of its array."""
        i = len(self.values)
        self.values.append(value)
        self.epoch += 1
        if self.broken:
            return
        try:
            postings = self.buckets.get(value)
            if postings is None:
                postings = self.buckets[value] = array("q")
        except TypeError:
            self.broken = True
            return
        postings.append(i)
        self._census_add(value, i, new_id_is_max=True)

    def set_value(self, i: int, value: Any) -> None:
        """Re-bucket dense id ``i`` after a SET_ATTRIBUTE event."""
        old = self.values[i]
        if old is value or (type(old) is type(value) and old == value):
            return
        self.values[i] = value
        self.epoch += 1
        if self.broken:
            return
        postings = self.buckets[old]
        pos = bisect_left(postings, i)
        postings.pop(pos)
        if not postings:
            del self.buckets[old]
        self._census_remove(old, i)
        try:
            postings = self.buckets.get(value)
            if postings is None:
                postings = self.buckets[value] = array("q")
        except TypeError:
            self.broken = True
            return
        postings.insert(bisect_left(postings, i), i)
        self._census_add(value, i, new_id_is_max=False)

    def without(self, dead: int, new_table: InternTable) -> "AttrIndex":
        """A NEW index over the replacement table minus dense id
        ``dead`` (deletion shifts ids, mirroring
        :meth:`InternTable.without`) — *remapped* from the live
        structures, not rebuilt: every sorted column keeps its order
        under the uniform id shift, so one DELETE costs one pass over
        the posting arrays with no re-sort and no census recompute."""
        if self.broken:
            return AttrIndex(new_table, self.attr,
                             self.values[:dead] + self.values[dead + 1:])
        dead_value = self.values[dead]
        index = AttrIndex.__new__(AttrIndex)
        index.table = new_table
        index.attr = self.attr
        index.values = self.values[:dead] + self.values[dead + 1:]
        index.broken = False
        index.epoch = 0
        index.unordered = set(self.unordered)
        # Only buckets holding a dense id >= dead change under the
        # shift, and those ids carry exactly the values in
        # ``values[dead:]`` — everything else is shared with the source
        # index, which the caller must discard (the store swaps it out;
        # two live indexes must never alias posting arrays, as in-place
        # maintenance mutates them).
        buckets = dict(self.buckets)
        for value in set(self.values[dead:]):
            postings = buckets[value]
            moved = array("q", (i - 1 if i > dead else i
                                for i in postings if i != dead))
            if moved:
                buckets[value] = moved
            else:
                del buckets[value]
        index.buckets = buckets
        index.none_count = self.none_count - (dead_value is None)
        index.num_count = self.num_count - (1 if _is_num(dead_value)
                                            else 0)
        type_counts = dict(self.type_counts)
        if dead_value is not None and not _is_num(dead_value):
            t = type(dead_value)
            left = type_counts.get(t, 0) - 1
            if left:
                type_counts[t] = left
            else:
                type_counts.pop(t, None)
        index.type_counts = type_counts
        index.num_values, index.num_ids = _drop_shift(
            self.num_values, self.num_ids, dead)
        typed: Dict[type, Tuple[list, array]] = {}
        for t, (vals, ids) in self.typed.items():
            new_vals, new_ids = _drop_shift(vals, ids, dead)
            if new_vals:
                typed[t] = (new_vals, new_ids)
        index.typed = typed
        return index

    def _census_add(self, value: Any, i: int, new_id_is_max: bool) -> None:
        if value is None:
            self.none_count += 1
            return
        if _is_num(value):
            self.num_count += 1
            pos = bisect_right(self.num_values, value)
            self.num_values.insert(pos, value)
            self.num_ids.insert(pos, i)
            return
        t = type(value)
        self.type_counts[t] = self.type_counts.get(t, 0) + 1
        if t in self.unordered:
            return
        pair = self.typed.get(t)
        if pair is None:
            self.typed[t] = ([value], array("q", [i]))
            return
        values, ids = pair
        try:
            pos = bisect_right(values, value)
        except TypeError:  # pragma: no cover - defensive
            del self.typed[t]
            self.unordered.add(t)
            return
        values.insert(pos, value)
        ids.insert(pos, i)

    def _census_remove(self, value: Any, i: int) -> None:
        if value is None:
            self.none_count -= 1
            return
        if _is_num(value):
            self.num_count -= 1
            pos = bisect_left(self.num_values, value)
            while self.num_ids[pos] != i:
                pos += 1
            self.num_values.pop(pos)
            self.num_ids.pop(pos)
            return
        t = type(value)
        count = self.type_counts.get(t, 0) - 1
        if count:
            self.type_counts[t] = count
        else:
            self.type_counts.pop(t, None)
        pair = self.typed.get(t)
        if pair is None:
            return
        values, ids = pair
        pos = bisect_left(values, value)
        while ids[pos] != i:
            pos += 1
        values.pop(pos)
        ids.pop(pos)
        if not values:
            del self.typed[t]

    # ------------------------------------------------------------------
    # Shared-memory export
    # ------------------------------------------------------------------

    def plane_arrays(self) -> Dict[str, array]:
        """The index's frozen *plane* representation: the sorted numeric
        column as order-preserving int64 keys (:func:`encode_ordered`)
        plus the parallel dense-id column and a one-element exactness
        flag (0 when some int exceeded float64's exact range).  Exports
        are copies; in-place maintenance bumps :attr:`epoch` so cached
        exports re-snapshot (same contract as
        :meth:`~repro.subdb.adjindex.AdjacencyIndex.plane_arrays`)."""
        exact = 1
        keys = array("q")
        for v in self.num_values:
            if isinstance(v, int) and abs(v) > EXACT_INT_BOUND:
                exact = 0
            keys.append(encode_ordered(v))
        return {"num_keys": keys, "num_ids": array("q", self.num_ids),
                "exact": array("q", [exact])}

    def stats(self) -> Dict[str, Any]:
        return {
            "attr": self.attr,
            "rows": len(self.values),
            "distinct": len(self.buckets) if not self.broken else None,
            "numeric": self.num_count,
            "none": self.none_count,
            "other_types": {t.__name__: c
                            for t, c in sorted(self.type_counts.items(),
                                               key=lambda kv: kv[0].__name__)},
            "epoch": self.epoch,
            "broken": self.broken,
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"AttrIndex({self.table.key!r}.{self.attr}, "
                f"{len(self.values)} rows)")


def _drop_shift(values: list, ids: array,
                dead: int) -> Tuple[list, array]:
    """Remap one (sorted values, parallel dense ids) column pair after
    deleting dense id ``dead``: drop its entry if present, decrement
    every id above it.  Vectorized when numpy is importable; the
    fallback is a single generator pass."""
    from repro.oql.kernels import _np
    if _np is not None and len(ids):
        arr = _np.frombuffer(ids, dtype=_np.int64)
        keep = arr != dead
        shifted = arr[keep]
        shifted = shifted - (shifted > dead)
        new_ids = array("q")
        new_ids.frombytes(shifted.astype(_np.int64).tobytes())
        if keep.all():
            return list(values), new_ids
        pos = int(_np.argmin(keep))
        return values[:pos] + values[pos + 1:], new_ids
    new_values = []
    new_ids = array("q")
    for value, i in zip(values, ids):
        if i == dead:
            continue
        new_values.append(value)
        new_ids.append(i - 1 if i > dead else i)
    return new_values, new_ids


def _range_bounds(values: list, op: str, literal: Any) -> Tuple[int, int]:
    """Bisection bounds of ``value op literal`` over a sorted column —
    exact Python comparisons, so the slice equals the scan's answer."""
    if op == "<":
        return 0, bisect_left(values, literal)
    if op == "<=":
        return 0, bisect_right(values, literal)
    if op == ">":
        return bisect_right(values, literal), len(values)
    return bisect_left(values, literal), len(values)


class AttrIndexStore:
    """Declared value indexes of one :class:`CompactStore`.

    Declarations are ``(class name, attribute)`` pairs over *base*
    extents and survive cache clears; built indexes are validated by
    intern-table identity (a replaced or dropped table orphans its
    indexes) and maintained through the owning store's event
    application.
    """

    def __init__(self, store) -> None:
        self.store = store
        self.declared: Set[Tuple[str, str]] = set()
        self._indexes: Dict[Tuple[str, str], AttrIndex] = {}
        #: Build/maintenance counters surfaced by ``\\index stats``.
        self.built = 0
        self.appended = 0
        self.remapped = 0
        self.updated = 0

    # -- declarations ---------------------------------------------------

    def declare(self, cls: str, attr: str) -> bool:
        """Declare an index; returns False when already declared."""
        key = (cls, attr)
        if key in self.declared:
            return False
        self.declared.add(key)
        return True

    def drop(self, cls: str, attr: str) -> bool:
        key = (cls, attr)
        self._indexes.pop(key, None)
        if key in self.declared:
            self.declared.remove(key)
            return True
        return False

    # -- lookup ---------------------------------------------------------

    def get(self, ref, attr: str) -> Optional[AttrIndex]:
        """The index for ``ref``'s extent and ``attr`` — building it on
        first use — or ``None`` when ``ref`` is not an indexable base
        reference or the pair is undeclared."""
        if ref.subdb is not None:
            return None
        key = (ref.cls, attr)
        if key not in self.declared:
            return None
        table = self.store.table(ref)
        cached = self._indexes.get(key)
        if cached is not None and cached.table is table:
            return cached
        db = self.store.db
        values = [db.entity(oid).get(attr) for oid in table.oids]
        index = AttrIndex(table, attr, values)
        self._indexes[key] = index
        self.built += 1
        return index

    def get_if_ready(self, ref, attr: str) -> Optional[AttrIndex]:
        """The cached valid index, or ``None`` — never builds."""
        if ref.subdb is not None or not self.store.in_sync:
            return None
        cached = self._indexes.get((ref.cls, attr))
        if cached is None:
            return None
        table = self.store.interner.get(("base", ref.cls))
        if table is None or cached.table is not table:
            return None
        return cached

    # -- event application (called by CompactStore._apply) --------------

    def apply_insert(self, oid, appended: Dict[int, InternTable]) -> None:
        db = self.store.db
        for index in self._indexes.values():
            if id(index.table) in appended:
                index.append(db.entity(oid).get(index.attr))
                self.appended += 1

    def apply_delete(self,
                     replaced: Dict[int, Tuple[InternTable, int]]) -> None:
        for key, index in list(self._indexes.items()):
            swap = replaced.get(id(index.table))
            if swap is None:
                continue
            new_table, dead = swap
            self._indexes[key] = index.without(dead, new_table)
            self.remapped += 1

    def apply_set_attribute(self, payload: Dict[str, Any]) -> None:
        name = payload.get("name")
        oid_value = payload.get("oid")
        for index in self._indexes.values():
            if index.attr != name:
                continue
            dense = index.table.index.get(oid_value)
            if dense is not None:
                index.set_value(dense, payload.get("value"))
                self.updated += 1

    def purge_tables(self, dropped_keys: Set[Any]) -> None:
        stale = [key for key, index in self._indexes.items()
                 if index.table.key in dropped_keys]
        for key in stale:
            del self._indexes[key]

    def clear(self) -> None:
        """Drop every built index (declarations survive)."""
        self._indexes.clear()

    # -- diagnostics ----------------------------------------------------

    def stats(self) -> List[Dict[str, Any]]:
        out = []
        for cls, attr in sorted(self.declared):
            built = self._indexes.get((cls, attr))
            entry: Dict[str, Any] = {"cls": cls, "attr": attr,
                                     "built": built is not None}
            if built is not None:
                entry.update(built.stats())
            out.append(entry)
        return out
