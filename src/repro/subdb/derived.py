"""Derived classes and the induced generalization association.

Between every target class and its source class there is a generalization
association *induced* by the deductive rule (paper, Section 4.1).  A target
class therefore inherits all the aggregation associations of its source
class — transitively up to the base class — which is what establishes
inter-subdatabase connections and makes expressions such as
``SD1:A * SD2:C`` and ``Department * Suggest_offer:Course`` legal.

:class:`DerivedClassInfo` is the record attached to each slot of a derived
subdatabase; walking its ``source`` chain reaches the base class.  The set
of instances of a target class is a subset of the set of instances of the
source class from which it is derived (Section 4), so attribute access and
association traversal for a derived class can always be delegated to the
base database once visibility has been checked along the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.subdb.refs import ClassRef


@dataclass(frozen=True)
class DerivedClassInfo:
    """Metadata for one derived class (one slot of a derived subdatabase).

    Attributes
    ----------
    ref:
        The derived class itself (``Suggest_offer:Course``).
    source:
        The class it was derived from — the superclass end of the induced
        generalization link.  It may itself be derived (rule chains); the
        base class is reached by following the chain.
    visible_attrs:
        When a rule lists attributes in brackets after a target class
        (``Teacher_course (Teacher [SS, Degree], Course)``), only those
        descriptive attributes are inherited; ``None`` means *all*
        attributes (the paper's default).
    """

    ref: ClassRef
    source: ClassRef
    visible_attrs: Optional[Tuple[str, ...]] = None

    @property
    def induced_generalization(self) -> str:
        """A rendering of the induced G link (superclass -> subclass)."""
        return f"{self.source} --G(induced)--> {self.ref}"

    def allows_attribute(self, name: str) -> bool:
        """Whether ``name`` survives this link's attribute subsetting."""
        return self.visible_attrs is None or name in self.visible_attrs
