"""Intensional association patterns.

The intensional pattern of a subdatabase is a network of E-classes and
their associations (paper, Section 3.1).  Here it is an ordered list of
*slots* (class references — order matters because extensional patterns are
tuples aligned to it) plus a set of undirected *edges* recording which
slots are associated and how:

* ``kind="base"`` — the association is an aggregation or generalization
  link of the original schema (possibly inherited);
* ``kind="derived"`` — a *new direct association* inferred by a deductive
  rule between classes that were only indirectly connected in the source
  (Figure 4.3a: Teacher and Course, previously connected through Section,
  get a direct derived association in Teacher_course).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import OQLSemanticError
from repro.subdb.refs import ClassRef


@dataclass(frozen=True)
class Edge:
    """An association between two slots of an intensional pattern."""

    i: int
    j: int
    kind: str = "base"      # "base" | "derived"
    label: str = ""         # the schema link name, "identity", or ""

    def touches(self, index: int) -> bool:
        return index == self.i or index == self.j

    def other(self, index: int) -> int:
        return self.j if index == self.i else self.i


class IntensionalPattern:
    """An ordered network of class slots and their association edges."""

    def __init__(self, slots: Iterable[ClassRef],
                 edges: Iterable[Edge] = ()):
        self.slots: Tuple[ClassRef, ...] = tuple(slots)
        self.edges: Tuple[Edge, ...] = tuple(edges)
        self._by_name: Dict[str, int] = {
            ref.slot: i for i, ref in enumerate(self.slots)}
        if len(self._by_name) != len(self.slots):
            names = [ref.slot for ref in self.slots]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise OQLSemanticError(
                f"duplicate slot(s) in intensional pattern: {dupes}; use "
                f"aliases (e.g. {dupes[0]}_1) for repeated classes")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def slot_names(self) -> Tuple[str, ...]:
        return tuple(ref.slot for ref in self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def index_of(self, ref: ClassRef | str) -> int:
        """The slot index of an exact reference (raises if absent)."""
        name = ref if isinstance(ref, str) else ref.slot
        try:
            return self._by_name[name]
        except KeyError:
            raise OQLSemanticError(
                f"no slot {name!r} in intensional pattern "
                f"{list(self._by_name)}") from None

    def has_slot(self, ref: ClassRef | str) -> bool:
        name = ref if isinstance(ref, str) else ref.slot
        return name in self._by_name

    def indices_of_class(self, cls: str) -> List[int]:
        """Every slot (any alias level) whose class is ``cls``."""
        return [i for i, ref in enumerate(self.slots) if ref.cls == cls]

    def levels_of_class(self, cls: str) -> List[int]:
        """Slots of ``cls`` ordered by hierarchy level (0, 1, 2, ...)."""
        return sorted(self.indices_of_class(cls),
                      key=lambda i: self.slots[i].level)

    def edge_between(self, i: int, j: int) -> Optional[Edge]:
        for edge in self.edges:
            if {edge.i, edge.j} == {i, j}:
                return edge
        return None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def with_edges(self, extra: Iterable[Edge]) -> "IntensionalPattern":
        return IntensionalPattern(self.slots, tuple(self.edges) + tuple(extra))

    def describe(self) -> str:
        """Human-readable rendering used by examples and EXPERIMENTS.md."""
        lines = ["classes: " + ", ".join(self.slot_names)]
        for edge in self.edges:
            a = self.slots[edge.i].slot
            b = self.slots[edge.j].slot
            tag = f" [{edge.kind}{':' + edge.label if edge.label else ''}]"
            lines.append(f"  {a} --- {b}{tag}")
        return "\n".join(lines)
