"""Extensional association patterns and pattern types.

An extensional pattern is a network of instances and their associations; in
addition to its graphical representation it can be represented as a tuple
of OIDs (paper, Section 3.1).  A component may be ``None`` (the paper's
Null): the pattern ``(t3, s4)`` of Figure 3.1b has a Null Course component
and is of type ``(Teacher, Section)``.

An *extensional pattern type* is the common template shared by several
patterns — a tuple of class names; the type of a pattern is the tuple of
slot names at which it is non-null.

The subsumption rule of Section 5.1 ("an extensional pattern of a certain
specified type will not appear independently in the result if it is part
of a larger extensional pattern") is implemented by :func:`covers` and
:func:`subsume`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.oid import OID


class PatternType:
    """A tuple of slot names: the template shared by several patterns."""

    __slots__ = ("slots",)

    def __init__(self, slots: Iterable[str]):
        self.slots = tuple(slots)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PatternType):
            return self.slots == other.slots
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def __repr__(self) -> str:
        return f"({', '.join(self.slots)})"


class ExtensionalPattern:
    """A tuple of OIDs (with Nulls) aligned to an intension's slot list."""

    __slots__ = ("values", "_nn", "_h")

    def __init__(self, values: Sequence[Optional[OID]]):
        self.values = tuple(values)
        self._nn: Optional[Tuple[int, ...]] = None
        self._h: Optional[int] = None

    @classmethod
    def from_interned(cls, values: Tuple[Optional[OID], ...],
                      value_key: Tuple[Optional[int], ...]
                      ) -> "ExtensionalPattern":
        """Construct from the compact execution layer: ``values`` are
        the decoded OIDs, ``value_key`` the raw OID values (Null as
        ``None``) the row was joined with — its hash is cached so set
        insertion never re-hashes through Python-level ``OID.__hash__``.
        """
        pattern = cls.__new__(cls)
        pattern.values = values
        pattern._nn = None
        pattern._h = hash(value_key)
        return pattern

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExtensionalPattern):
            return self.values == other.values
        return NotImplemented

    def __hash__(self) -> int:
        # Hashing the raw integer values (not the OID objects) keeps the
        # hash consistent with ``__eq__`` — OIDs compare by value — while
        # letting compactly-built patterns precompute it without ever
        # touching an OID; it is cached because pattern sets are unioned,
        # differenced, and re-subsumed many times per derivation.
        h = self._h
        if h is None:
            h = self._h = hash(tuple(
                None if v is None else v.value for v in self.values))
        return h

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Optional[OID]:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    @property
    def non_null_indices(self) -> Tuple[int, ...]:
        """Slot indices at which the pattern has an object (cached —
        the subsumption index probes this on every comparison)."""
        nn = self._nn
        if nn is None:
            nn = self._nn = tuple(i for i, v in enumerate(self.values)
                                  if v is not None)
        return nn

    @property
    def arity(self) -> int:
        """Number of non-null components."""
        return len(self.non_null_indices)

    def type_of(self, slot_names: Sequence[str]) -> PatternType:
        """The pattern's type, given the subdatabase's slot names."""
        return PatternType(slot_names[i] for i in self.non_null_indices)

    def project(self, indices: Sequence[int]) -> "ExtensionalPattern":
        """A new pattern keeping only the given slots, in the given order."""
        return ExtensionalPattern([self.values[i] for i in indices])

    def pad(self, old_to_new: Sequence[int],
            new_width: int) -> "ExtensionalPattern":
        """Re-align this pattern into a wider slot list.

        ``old_to_new[i]`` is the index in the new slot list at which this
        pattern's slot ``i`` lands; all other new slots become Null.  Used
        when subdatabases with different intensions are unioned (rules R4
        and R5 both deriving May_teach).
        """
        values: List[Optional[OID]] = [None] * new_width
        for old_index, new_index in enumerate(old_to_new):
            values[new_index] = self.values[old_index]
        return ExtensionalPattern(values)

    def key(self) -> Tuple[Tuple[int, int], ...]:
        """A canonical hashable summary: ((slot, oid-value), ...) over the
        non-null slots — used by the subsumption index."""
        return tuple((i, v.value) for i, v in enumerate(self.values)
                     if v is not None)

    def __repr__(self) -> str:
        parts = ["Null" if v is None else repr(v) for v in self.values]
        return f"({', '.join(parts)})"


IntRow = Tuple[Optional[int], ...]


def decode_rows(rows: Iterable[IntRow], tables) -> Set[ExtensionalPattern]:
    """Interned rows back to OID patterns — the single decode point of
    the compact execution layer.  ``tables[i]`` supplies slot ``i``'s
    decode columns (an :class:`~repro.model.interning.InternTable`:
    ``oids`` for the objects, ``values`` for the raw ints the cached
    hash is computed from, so later set algebra never calls
    ``OID.__hash__``).

    Decoding runs column-wise (one list comprehension per slot, rows
    re-assembled by C-level ``zip``) — the row-wise equivalent is the
    profile's hottest frame on fan-out-heavy chains.
    """
    rows = list(rows)
    if not rows:
        return set()
    patterns: Set[ExtensionalPattern] = set()
    add = patterns.add
    new = ExtensionalPattern.__new__
    cls = ExtensionalPattern
    oid_columns = []
    value_columns = []
    for i, column in enumerate(zip(*rows)):
        oids = tables[i].oids
        raw = tables[i].values
        oid_columns.append([None if v is None else oids[v]
                            for v in column])
        value_columns.append([None if v is None else raw[v]
                              for v in column])
    for values, key in zip(zip(*oid_columns), zip(*value_columns)):
        pattern = new(cls)
        pattern.values = values
        pattern._nn = None
        pattern._h = hash(key)
        add(pattern)
    return patterns


def subsume_rows(rows: Iterable[IntRow]) -> Set[IntRow]:
    """The subsumption rule over interned rows (compact twin of
    :func:`subsume`).

    Rows are tuples of dense ids with ``None`` for Null slots — all
    comparisons and hashes are C-level int operations, which is where
    set-based subsumption of loop hierarchies spends most of its time.
    The kept set is identical (slot-for-slot) to what :func:`subsume`
    keeps on the decoded patterns, because within one evaluation the
    id <-> OID mapping is bijective per slot.
    """
    unique = set(rows)
    arities = {sum(1 for v in row if v is not None) for row in unique}
    if len(arities) <= 1:
        return unique
    nn: Dict[IntRow, Tuple[int, ...]] = {
        row: tuple(i for i, v in enumerate(row) if v is not None)
        for row in unique}
    ordered = sorted(unique, key=lambda row: -len(nn[row]))
    kept: List[IntRow] = []
    index: Dict[Tuple[int, int], List[IntRow]] = {}
    for row in ordered:
        indices = nn[row]
        if indices:
            lists = [index.get((i, row[i])) for i in indices]
            if any(entry is None for entry in lists):
                candidates: Sequence[IntRow] = ()
            else:
                candidates = min(lists, key=len)
        else:
            candidates = kept
        arity = len(indices)
        if any(len(nn[big]) > arity
               and all(big[i] == row[i] for i in indices)
               for big in candidates):
            continue
        kept.append(row)
        for i in indices:
            index.setdefault((i, row[i]), []).append(row)
    return set(kept)


def covers(larger: ExtensionalPattern, smaller: ExtensionalPattern) -> bool:
    """True if ``smaller`` is part of ``larger``: wherever ``smaller`` has
    an object, ``larger`` has the same object, and ``larger`` has strictly
    more objects."""
    if larger.arity <= smaller.arity:
        return False
    for index in smaller.non_null_indices:
        if larger.values[index] != smaller.values[index]:
            return False
    return True


def subsume(patterns: Iterable[ExtensionalPattern]
            ) -> Set[ExtensionalPattern]:
    """Apply the paper's subsumption rule to a pattern set.

    Keeps every pattern that is not part of a larger *kept* pattern.
    Because "part of" is transitive through nesting levels, processing in
    decreasing arity order and indexing kept patterns by slot suffices:
    a candidate is dropped iff some larger kept pattern agrees with it on
    all of its non-null slots.
    """
    unique = set(patterns)
    if len({p.arity for p in unique}) <= 1:
        # Uniform arity (e.g. a plain chain without braces): covers()
        # requires strictly more components, so nothing can subsume.
        return unique
    ordered = sorted(unique, key=lambda p: -p.arity)
    kept: List[ExtensionalPattern] = []
    # Index kept patterns by every (slot, oid) component.  A cover must
    # agree with the candidate on each of its non-null slots, so it is
    # present in all of those slots' lists — probing the *shortest* one
    # keeps the comparison set small even when one component is shared
    # by every pattern (e.g. a selective filter pinning one slot to a
    # single object).
    index: dict[Tuple[int, int], List[ExtensionalPattern]] = {}
    for pattern in ordered:
        nn = pattern.non_null_indices
        if nn:
            lists = [index.get((i, pattern.values[i].value))
                     for i in nn]
            if any(entry is None for entry in lists):
                candidates: Sequence[ExtensionalPattern] = ()
            else:
                candidates = min(lists, key=len)
        else:
            candidates = kept
        if any(covers(big, pattern) for big in candidates):
            continue
        kept.append(pattern)
        for i in nn:
            index.setdefault((i, pattern.values[i].value), []).append(pattern)
    return set(kept)
