"""Extensional association patterns and pattern types.

An extensional pattern is a network of instances and their associations; in
addition to its graphical representation it can be represented as a tuple
of OIDs (paper, Section 3.1).  A component may be ``None`` (the paper's
Null): the pattern ``(t3, s4)`` of Figure 3.1b has a Null Course component
and is of type ``(Teacher, Section)``.

An *extensional pattern type* is the common template shared by several
patterns — a tuple of class names; the type of a pattern is the tuple of
slot names at which it is non-null.

The subsumption rule of Section 5.1 ("an extensional pattern of a certain
specified type will not appear independently in the result if it is part
of a larger extensional pattern") is implemented by :func:`covers` and
:func:`subsume`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.oid import OID


class PatternType:
    """A tuple of slot names: the template shared by several patterns."""

    __slots__ = ("slots",)

    def __init__(self, slots: Iterable[str]):
        self.slots = tuple(slots)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PatternType):
            return self.slots == other.slots
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def __repr__(self) -> str:
        return f"({', '.join(self.slots)})"


class ExtensionalPattern:
    """A tuple of OIDs (with Nulls) aligned to an intension's slot list."""

    __slots__ = ("values", "_nn")

    def __init__(self, values: Sequence[Optional[OID]]):
        self.values = tuple(values)
        self._nn: Optional[Tuple[int, ...]] = None

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExtensionalPattern):
            return self.values == other.values
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Optional[OID]:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    @property
    def non_null_indices(self) -> Tuple[int, ...]:
        """Slot indices at which the pattern has an object (cached —
        the subsumption index probes this on every comparison)."""
        nn = self._nn
        if nn is None:
            nn = self._nn = tuple(i for i, v in enumerate(self.values)
                                  if v is not None)
        return nn

    @property
    def arity(self) -> int:
        """Number of non-null components."""
        return len(self.non_null_indices)

    def type_of(self, slot_names: Sequence[str]) -> PatternType:
        """The pattern's type, given the subdatabase's slot names."""
        return PatternType(slot_names[i] for i in self.non_null_indices)

    def project(self, indices: Sequence[int]) -> "ExtensionalPattern":
        """A new pattern keeping only the given slots, in the given order."""
        return ExtensionalPattern([self.values[i] for i in indices])

    def pad(self, old_to_new: Sequence[int],
            new_width: int) -> "ExtensionalPattern":
        """Re-align this pattern into a wider slot list.

        ``old_to_new[i]`` is the index in the new slot list at which this
        pattern's slot ``i`` lands; all other new slots become Null.  Used
        when subdatabases with different intensions are unioned (rules R4
        and R5 both deriving May_teach).
        """
        values: List[Optional[OID]] = [None] * new_width
        for old_index, new_index in enumerate(old_to_new):
            values[new_index] = self.values[old_index]
        return ExtensionalPattern(values)

    def key(self) -> Tuple[Tuple[int, int], ...]:
        """A canonical hashable summary: ((slot, oid-value), ...) over the
        non-null slots — used by the subsumption index."""
        return tuple((i, v.value) for i, v in enumerate(self.values)
                     if v is not None)

    def __repr__(self) -> str:
        parts = ["Null" if v is None else repr(v) for v in self.values]
        return f"({', '.join(parts)})"


def covers(larger: ExtensionalPattern, smaller: ExtensionalPattern) -> bool:
    """True if ``smaller`` is part of ``larger``: wherever ``smaller`` has
    an object, ``larger`` has the same object, and ``larger`` has strictly
    more objects."""
    if larger.arity <= smaller.arity:
        return False
    for index in smaller.non_null_indices:
        if larger.values[index] != smaller.values[index]:
            return False
    return True


def subsume(patterns: Iterable[ExtensionalPattern]
            ) -> Set[ExtensionalPattern]:
    """Apply the paper's subsumption rule to a pattern set.

    Keeps every pattern that is not part of a larger *kept* pattern.
    Because "part of" is transitive through nesting levels, processing in
    decreasing arity order and indexing kept patterns by slot suffices:
    a candidate is dropped iff some larger kept pattern agrees with it on
    all of its non-null slots.
    """
    unique = set(patterns)
    if len({p.arity for p in unique}) <= 1:
        # Uniform arity (e.g. a plain chain without braces): covers()
        # requires strictly more components, so nothing can subsume.
        return unique
    ordered = sorted(unique, key=lambda p: -p.arity)
    kept: List[ExtensionalPattern] = []
    # Index kept patterns by every (slot, oid) component.  A cover must
    # agree with the candidate on each of its non-null slots, so it is
    # present in all of those slots' lists — probing the *shortest* one
    # keeps the comparison set small even when one component is shared
    # by every pattern (e.g. a selective filter pinning one slot to a
    # single object).
    index: dict[Tuple[int, int], List[ExtensionalPattern]] = {}
    for pattern in ordered:
        nn = pattern.non_null_indices
        if nn:
            lists = [index.get((i, pattern.values[i].value))
                     for i in nn]
            if any(entry is None for entry in lists):
                candidates: Sequence[ExtensionalPattern] = ()
            else:
                candidates = min(lists, key=len)
        else:
            candidates = kept
        if any(covers(big, pattern) for big in candidates):
            continue
        kept.append(pattern)
        for i in nn:
            index.setdefault((i, pattern.values[i].value), []).append(pattern)
    return set(kept)
