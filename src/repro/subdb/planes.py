"""Shared-memory *planes*: frozen int64 views of the compact layer.

The compact executor's hot data is already flat 64-bit integers — the
CSR ``offsets``/``neighbors`` arrays of an
:class:`~repro.subdb.adjindex.AdjacencyIndex` and the decode column of
an :class:`~repro.model.interning.InternTable`.  A :class:`SharedPlane`
copies one such array into a named ``multiprocessing.shared_memory``
segment so worker *processes* can map it read-only and run join kernels
over it without pickling a single row.  A plane is frozen: writes in
the parent never mutate an exported segment — the parent re-exports
(under a fresh name) and unlinks the stale one.

Segment layout::

    [8s magic "REPROPLN"] [q version token] [q element count] [payload]

The token is derived from the universe's per-class version vector at
export time.  :meth:`SharedPlane.attach` verifies both the magic and
the token against the manifest the coordinator shipped, so a worker
holding yesterday's manifest gets :class:`StalePlaneError` instead of
silently reading rebuilt data (and an unlinked segment surfaces as the
same error, not a raw ``FileNotFoundError``).

Lifecycle discipline — the acceptance bar is *zero leaked segments*:

* every created plane registers in a module-level live table;
  :func:`live_planes` is the observable the leak tests assert empty;
* :class:`PlaneManager` caches exports per producer object (identity +
  mutation epoch + token) and retires replaced planes, deferring the
  ``unlink`` while any in-flight query still pins the old entry — this
  is what lets snapshot pinning hold a consistent set of planes alive
  for the whole duration of a query that overlaps a write;
* an ``atexit`` sweep unlinks anything still live, so even an aborted
  session cannot orphan ``/dev/shm`` segments.

Workers attaching a segment must not re-register it with their own
``resource_tracker`` (on Python < 3.13 attaching registers by default,
and each worker's tracker would then unlink the segment under the
parent's feet at worker exit, with a spurious leak warning):
:func:`attach_segment` unregisters immediately after mapping.
"""

from __future__ import annotations

import atexit
import multiprocessing
import struct
import threading
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

_HEADER = struct.Struct("<8sqq")
_MAGIC = b"REPROPLN"

#: Mask applied to Python ``hash()`` values so tokens fit the signed
#: int64 header field on every platform.
TOKEN_MASK = 0x7FFF_FFFF_FFFF_FFFF


def vector_token(vector: Any) -> int:
    """Fold a (hashable) per-class version vector into an int64 plane
    token."""
    return hash(vector) & TOKEN_MASK


class SharedPlaneError(ReproError):
    """A shared plane could not be created, attached, or read."""


class StalePlaneError(SharedPlaneError):
    """The plane exists but its version token does not match the
    manifest — the coordinator re-exported after a write, and this
    manifest predates it."""


_LIVE_LOCK = threading.Lock()
_LIVE: Dict[str, "SharedPlane"] = {}


def live_planes() -> List[str]:
    """Names of every plane created by this process and not yet
    unlinked — the leak-check observable (tests assert it drains to
    empty)."""
    with _LIVE_LOCK:
        return sorted(_LIVE)


def _sweep() -> None:  # pragma: no cover - interpreter-exit safety net
    for plane in list(_LIVE.values()):
        try:
            plane.unlink()
        except Exception:
            pass


atexit.register(_sweep)


#: Names this process has already deregistered from its resource
#: tracker — attaching twice must not deregister twice (the tracker
#: main loop logs a KeyError for an unknown name).
_UNTRACKED: set = set()


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without disturbing its tracker
    registration — the creator owns the unlink.

    Pool workers share the coordinator's resource tracker (one tracker
    per process tree), so their attach-time auto-registration is a
    harmless duplicate set-add and must NOT be undone: a worker-side
    ``unregister`` would pull the coordinator's registration out from
    under its eventual ``unlink``.  Only a standalone process attaching
    a foreign segment deregisters (otherwise *its* tracker would unlink
    the segment at exit, with a spurious leak warning); the owning
    process also leaves the registration in place, because ``unlink``
    deregisters it exactly once."""
    try:
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track= keyword
            shm = shared_memory.SharedMemory(name=name)
            if multiprocessing.parent_process() is None:
                with _LIVE_LOCK:
                    owner = shm.name in _LIVE
                    seen = shm.name in _UNTRACKED
                    if not owner and not seen:
                        _UNTRACKED.add(shm.name)
                if not owner and not seen:
                    try:
                        resource_tracker.unregister(shm._name,
                                                    "shared_memory")
                    except Exception:  # pragma: no cover - tracker
                        pass
        return shm
    except FileNotFoundError:
        raise SharedPlaneError(
            f"shared plane {name!r} is gone (unlinked by its owner)")


class SharedPlane:
    """One named shared-memory segment holding a flat int64 array."""

    __slots__ = ("name", "token", "length", "owner", "_shm", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, token: int,
                 length: int, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.token = token
        self.length = length
        self.owner = owner
        self._closed = False

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, data, token: int) -> "SharedPlane":
        """Copy ``data`` (any C-contiguous buffer of int64, e.g.
        ``array("q")``) into a fresh named segment."""
        view = memoryview(data).cast("B")
        nbytes = view.nbytes
        length = nbytes // 8
        shm = shared_memory.SharedMemory(create=True,
                                         size=_HEADER.size + max(nbytes, 8))
        _HEADER.pack_into(shm.buf, 0, _MAGIC, token, length)
        if nbytes:
            shm.buf[_HEADER.size:_HEADER.size + nbytes] = view
        plane = cls(shm, token, length, owner=True)
        with _LIVE_LOCK:
            _LIVE[plane.name] = plane
        return plane

    @classmethod
    def attach(cls, name: str,
               expected_token: Optional[int] = None) -> "SharedPlane":
        """Map an existing plane read-only; reject a stale one."""
        shm = attach_segment(name)
        try:
            magic, token, length = _HEADER.unpack_from(shm.buf, 0)
        except struct.error:
            shm.close()
            raise SharedPlaneError(f"segment {name!r} is not a plane "
                                   f"(too small for the header)")
        if magic != _MAGIC:
            shm.close()
            raise SharedPlaneError(f"segment {name!r} is not a plane "
                                   f"(bad magic {magic!r})")
        if expected_token is not None and token != expected_token:
            shm.close()
            raise StalePlaneError(
                f"plane {name!r} is stale: exported at token {token}, "
                f"manifest expects {expected_token}")
        return cls(shm, token, length, owner=False)

    # -- access ---------------------------------------------------------

    @property
    def data(self) -> memoryview:
        """The payload as a zero-copy int64 memoryview."""
        if self._closed:
            raise SharedPlaneError(f"plane {self.name!r} is closed")
        start = _HEADER.size
        return self._shm.buf[start:start + 8 * self.length].cast("q")

    def as_array(self) -> array:
        """The payload copied out as a plain ``array("q")``."""
        out = array("q")
        out.frombytes(self.data.cast("B"))
        return out

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment survives until the
        owner unlinks it)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Remove the segment (owner side); idempotent."""
        self.close()
        with _LIVE_LOCK:
            _LIVE.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"SharedPlane({self.name!r}, {self.length} ints, "
                f"token={self.token}, owner={self.owner})")


#: A manifest entry: (segment name, expected token, element count).
Manifest = Dict[str, Tuple[str, int, int]]


class _Entry:
    __slots__ = ("source", "epoch", "token", "planes", "pins", "defunct")

    def __init__(self, source: Any, epoch: int, token: int,
                 planes: Dict[str, SharedPlane]):
        self.source = source
        self.epoch = epoch
        self.token = token
        self.planes = planes
        self.pins = 0
        self.defunct = False

    def manifest(self) -> Manifest:
        return {label: (plane.name, plane.token, plane.length)
                for label, plane in self.planes.items()}

    def _unlink_all(self) -> None:
        for plane in self.planes.values():
            plane.unlink()


class PlaneManager:
    """Coordinator-side registry of exported planes.

    Entries are keyed by an opaque cache key (the evaluator uses the
    adjacency-cache key) and validated against the *producer object's*
    identity, its in-place mutation ``epoch``, and the version-vector
    token — an INSERT delta that appends to a CSR in place bumps the
    epoch, a rebuild swaps the object, and either invalidates the
    export.  Replaced entries unlink immediately unless a query still
    pins them (``release`` performs the deferred unlink)."""

    def __init__(self) -> None:
        self._entries: Dict[Any, _Entry] = {}
        self._lock = threading.Lock()
        self._closed = False

    def export(self, key: Any, source: Any, arrays: Dict[str, Any],
               token: int) -> Tuple[Manifest, _Entry]:
        """The cached (or freshly created) planes for ``source``'s
        ``arrays``; pins the entry — the caller must :meth:`release`
        the returned handle when its query finishes."""
        epoch = getattr(source, "epoch", 0)
        with self._lock:
            if self._closed:
                raise SharedPlaneError("plane manager is closed")
            entry = self._entries.get(key)
            if entry is not None and entry.source is source \
                    and entry.epoch == epoch and entry.token == token:
                entry.pins += 1
                return entry.manifest(), entry
            if entry is not None:
                self._retire_locked(entry)
            planes = {label: SharedPlane.create(data, token)
                      for label, data in arrays.items()}
            entry = _Entry(source, epoch, token, planes)
            entry.pins = 1
            self._entries[key] = entry
            return entry.manifest(), entry

    def release(self, entry: _Entry) -> None:
        """Unpin an entry returned by :meth:`export`; a retired entry
        unlinks on its last release."""
        with self._lock:
            entry.pins -= 1
            if entry.defunct and entry.pins <= 0:
                entry._unlink_all()

    def _retire_locked(self, entry: _Entry) -> None:
        for key, existing in list(self._entries.items()):
            if existing is entry:
                del self._entries[key]
        if entry.pins > 0:
            entry.defunct = True
        else:
            entry._unlink_all()

    def invalidate(self, key: Any) -> None:
        """Explicitly retire one cached export."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._retire_locked(entry)

    def close(self) -> None:
        """Unlink every plane this manager still owns (idempotent —
        also runs from a ``weakref.finalize`` when the owning evaluator
        is collected)."""
        with self._lock:
            self._closed = True
            for entry in list(self._entries.values()):
                entry.pins = 0
                entry._unlink_all()
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def create_ephemeral(arrays: Dict[str, Any],
                     token: int) -> Tuple[Manifest, List[SharedPlane]]:
    """Export per-query planes (anchor ids, filtered-id sets, loop
    frontiers) that live exactly as long as one dispatch — the caller
    unlinks them in its ``finally``."""
    planes: List[SharedPlane] = []
    manifest: Manifest = {}
    try:
        for label, data in arrays.items():
            plane = SharedPlane.create(data, token)
            planes.append(plane)
            manifest[label] = (plane.name, plane.token, plane.length)
    except Exception:
        for plane in planes:
            plane.unlink()
        raise
    return manifest, planes


def unlink_all(planes: Iterable[SharedPlane]) -> None:
    for plane in planes:
        plane.unlink()
