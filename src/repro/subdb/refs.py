"""Class references.

Expressions in the language refer to classes in three flavors (paper,
Sections 4.1 and 5.2):

* an unqualified name — ``Teacher`` — denotes the *base* class of the
  original database;
* a name qualified by a subdatabase — ``Suggest_offer:Course`` — denotes
  the derived class of that subdatabase;
* a name with an appended underscore and integer — ``Grad_2`` — is an
  automatically generated *alias* (range variable) of the class, used for
  cycles and transitive closure.

:class:`ClassRef` is the canonical value for all three; its string form is
the *slot name* under which the class appears in a subdatabase's
intensional pattern.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

_ALIAS_RE = re.compile(r"^(?P<base>.*?)_(?P<n>\d+)$")


@dataclass(frozen=True)
class ClassRef:
    """A (possibly qualified, possibly aliased) reference to a class."""

    #: The class name within its subdatabase (base class names are
    #: preserved by derivation, so this is also the *source base class*).
    cls: str
    #: The subdatabase qualifier, ``None`` for the original database.
    subdb: Optional[str] = None
    #: Alias (range-variable) number: ``A_1`` has alias 1, plain ``A`` has
    #: ``None`` (equivalent to level 0 of a hierarchy).
    alias: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> "ClassRef":
        """Parse ``[Subdb:]Name[_N]`` into a reference.

        A trailing ``_<integer>`` is an alias marker; class names that end
        this way on purpose should avoid the convention (the paper defines
        it as the alias-generation syntax, Section 5.2).
        """
        subdb = None
        name = text
        if ":" in text:
            subdb, name = text.split(":", 1)
            subdb = subdb.strip()
        name = name.strip()
        alias = None
        match = _ALIAS_RE.match(name)
        if match:
            name = match.group("base")
            alias = int(match.group("n"))
        return cls(cls=name, subdb=subdb, alias=alias)

    def with_alias(self, alias: Optional[int]) -> "ClassRef":
        return ClassRef(self.cls, self.subdb, alias)

    def without_alias(self) -> "ClassRef":
        return ClassRef(self.cls, self.subdb, None)

    @property
    def is_derived(self) -> bool:
        return self.subdb is not None

    @property
    def slot(self) -> str:
        """The display/slot name: ``SD1:A_2`` etc."""
        name = self.cls if self.alias is None else f"{self.cls}_{self.alias}"
        return f"{self.subdb}:{name}" if self.subdb else name

    @property
    def level(self) -> int:
        """Hierarchy level: plain refs are level 0, ``A_k`` is level k."""
        return 0 if self.alias is None else self.alias

    def __lt__(self, other: "ClassRef") -> bool:
        # Total order by slot name so reference lists sort stably even
        # when qualifiers/aliases are mixed (None vs str would not
        # compare field-wise).
        if not isinstance(other, ClassRef):
            return NotImplemented
        return self.slot < other.slot

    def __str__(self) -> str:
        return self.slot
