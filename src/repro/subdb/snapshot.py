"""Snapshot-isolated read views of a database and its universe.

A :class:`DatabaseSnapshot` pins a :class:`~repro.model.database.Database`
at one version so concurrent readers never observe in-flight mutations.
Pinning is *copy-on-write* in both directions:

* the snapshot registers a write hook with the database; every mutator
  calls it (under the database's write lock) *before* touching a
  structure, naming exactly the pieces about to change — class extents,
  link indexes, attribute dicts, entities — and the snapshot copies the
  pre-image of any piece it has not pinned yet;
* a read of a piece the writer never touched falls through to the live
  structure under the read lock (momentarily excluding writers), and
  caches the result so subsequent reads of that piece are lock-free.

Readers therefore block only for the duration of a single mutation (or
``batch`` block), never for the whole life of a writer, and a piece read
once — or written once — never blocks again.

:class:`SnapshotUniverse` wraps a snapshot in the full
:class:`~repro.subdb.universe.Universe` interface, with its own compact
store (intern tables and CSR adjacency built from pinned data — the
snapshot's constant version means they are never invalidated) and its
own subdatabase registry seeded from the source universe.  Backward
chaining through a provider materializes into the snapshot's registry
only; the live universe is never written by a reader.

Concurrent *schema evolution* is outside the protocol: a SCHEMA event
poisons the snapshot, and any subsequent fall-through read raises
:class:`SnapshotExpiredError` (already-pinned pieces stay readable).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReproError, UnknownObjectError
from repro.model.database import Database, EMPTY_OIDS, UpdateEvent, UpdateKind
from repro.model.objects import Entity
from repro.model.oid import OID
from repro.model.schema import ResolvedLink


class SnapshotExpiredError(ReproError):
    """The snapshot can no longer serve a piece it did not pin (the
    schema evolved underneath it)."""


LinkKey = Tuple[str, str]
LinkIndex = Dict[OID, frozenset]


class DatabaseSnapshot:
    """A read-only, version-pinned view of a :class:`Database`.

    Exposes the read API the evaluator stack consumes — ``extent``,
    ``extent_size``, ``entity``/``attr_value``, ``neighbors``,
    ``bulk_neighbors``, ``link_index``, ``link_count`` — plus no-op
    listener registration so a
    :class:`~repro.subdb.adjindex.CompactStore` can be built over it
    unchanged.  ``version`` is constant, so everything cached against it
    (intern tables, adjacency, planner statistics) stays valid for the
    snapshot's whole life.
    """

    def __init__(self, db: Database, _locked: bool = False):
        self.db = db
        self.schema = db.schema
        self.name = f"{db.name}@snapshot"
        self._poisoned: Optional[str] = None
        #: cls -> pinned full extent (sets shared with the db's
        #: per-version memo: never mutated once built).
        self._extents: Dict[str, Set[OID]] = {}
        #: link key -> (fwd copy, rev copy), both OID -> frozenset.
        self._links: Dict[LinkKey, Tuple[LinkIndex, LinkIndex]] = {}
        #: oid -> pinned Entity (pre-image clone, or the live object for
        #: deletions — deletion never mutates the entity itself).
        self._entities: Dict[OID, Entity] = {}
        if _locked:
            self._pin(db)
        else:
            with db.read_locked():
                self._pin(db)

    def _pin(self, db: Database) -> None:
        self.version = db.version
        # Pin the per-class version vector too: cache keys built over a
        # snapshot are constant for its whole life, so cross-query cache
        # hits against a snapshot are consistent by construction.
        self._class_versions: Dict[str, int] = dict(db._class_versions)
        self._schema_version = db.schema_version
        db.register_snapshot_hook(self)
        # SCHEMA events poison the snapshot; data events are handled by
        # the write hook.  Registered as a plain listener (the database
        # holds it strongly only as long as the snapshot itself lives —
        # close() removes it).
        db.add_listener(self._on_event)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Detach from the source database (idempotent).

        Deregistration happens under the read lock: the listener list is
        removed from in place, and an in-flight ``_emit`` iterating it on
        a writer thread must not have an element shifted out from under
        its cursor (a skipped listener would be a missed invalidation
        for some *other* subscriber)."""
        with self.db.read_locked():
            self.db.unregister_snapshot_hook(self)
            try:
                self.db.remove_listener(self._on_event)
            except ValueError:
                pass

    def __enter__(self) -> "DatabaseSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _on_event(self, event: UpdateEvent) -> None:
        if event.kind is UpdateKind.SCHEMA:
            self._poisoned = event.detail or "schema evolved"

    def _check_open(self) -> None:
        if self._poisoned is not None:
            raise SnapshotExpiredError(
                f"snapshot at version {self.version} expired: "
                f"{self._poisoned}")

    # -- copy-on-write hook (called by the writer, write lock held) -----

    def before_write(self, classes: Iterable[str] = (),
                     links: Iterable[LinkKey] = (),
                     attr_oids: Iterable[OID] = (),
                     entity_oids: Iterable[OID] = ()) -> None:
        for cls in classes:
            if cls not in self._extents:
                self._extents[cls] = self.db.extent(cls)
        for key in links:
            if key not in self._links:
                self._copy_link(key)
        for oid in attr_oids:
            if oid not in self._entities and self.db.has(oid):
                live = self.db.entity(oid)
                self._entities[oid] = Entity(live.oid, live.cls,
                                             dict(live._attrs))
        for oid in entity_oids:
            # Deletion: the entity object itself is never mutated, so
            # pinning the live reference preserves its attributes.
            if oid not in self._entities and self.db.has(oid):
                self._entities[oid] = self.db.entity(oid)

    def _copy_link(self, key: LinkKey) -> None:
        fwd = {oid: frozenset(targets) for oid, targets
               in self.db._fwd.get(key, {}).items()}
        rev = {oid: frozenset(owners) for oid, owners
               in self.db._rev.get(key, {}).items()}
        self._links[key] = (fwd, rev)

    # -- versioning / listener API (CompactStore compatibility) ---------

    @property
    def version(self) -> int:  # noqa: D401 - property pair below
        return self._version

    @version.setter
    def version(self, value: int) -> None:
        self._version = value

    @property
    def schema_version(self) -> int:
        return self._schema_version

    def class_version(self, cls: str) -> int:
        """The pinned per-class version (see
        :meth:`Database.class_version`) — constant for the snapshot's
        life, so cache entries keyed on it never go stale mid-read."""
        return self._class_versions.get(cls, 0)

    def version_vector(self, classes: Iterable[str]) -> Tuple[int, ...]:
        get = self._class_versions.get
        return (self._schema_version,) + tuple(get(c, 0) for c in classes)

    def add_listener(self, listener) -> None:
        """No-op: a snapshot never changes, so there is nothing to hear."""

    def remove_listener(self, listener) -> None:
        """No-op (see :meth:`add_listener`)."""

    # -- extents --------------------------------------------------------

    def extent(self, cls: str) -> Set[OID]:
        cached = self._extents.get(cls)
        if cached is not None:
            return cached
        with self.db.read_locked():
            cached = self._extents.get(cls)
            if cached is None:
                self._check_open()
                cached = self._extents[cls] = self.db.extent(cls)
            return cached

    def extent_size(self, cls: str) -> int:
        return len(self.extent(cls))

    def is_instance_of(self, oid: OID, cls: str) -> bool:
        return self.schema.is_subclass_of(self.entity(oid).cls, cls)

    def has(self, oid: OID) -> bool:
        if oid in self._entities:
            return True
        with self.db.read_locked():
            return self.db.has(oid)

    # -- entities & attributes ------------------------------------------

    def entity(self, oid: OID) -> Entity:
        pinned = self._entities.get(oid)
        if pinned is not None:
            return pinned
        with self.db.read_locked():
            pinned = self._entities.get(oid)
            if pinned is not None:
                return pinned
            self._check_open()
            try:
                return self.db.entity(oid)
            except UnknownObjectError:
                raise UnknownObjectError(
                    f"no object with OID {oid!r} in snapshot at version "
                    f"{self.version}") from None

    def attr_value(self, oid: OID, attr: str) -> Any:
        """One attribute read, pinned-first: the whole live fall-through
        happens under the read lock so a concurrent attribute write can
        never interleave between lookup and access."""
        pinned = self._entities.get(oid)
        if pinned is not None:
            return pinned.get(attr)
        with self.db.read_locked():
            pinned = self._entities.get(oid)
            if pinned is not None:
                return pinned.get(attr)
            self._check_open()
            return self.db.entity(oid).get(attr)

    def get_attribute(self, oid: OID, name: str) -> Any:
        self.schema.attribute(self.entity(oid).cls, name)
        return self.attr_value(oid, name)

    # -- links ----------------------------------------------------------

    def _link_maps(self, key: LinkKey) -> Tuple[LinkIndex, LinkIndex]:
        pinned = self._links.get(key)
        if pinned is not None:
            return pinned
        with self.db.read_locked():
            pinned = self._links.get(key)
            if pinned is None:
                self._check_open()
                self._copy_link(key)
                pinned = self._links[key]
            return pinned

    def link_index(self, link, from_owner: bool = True) -> LinkIndex:
        maps = self._link_maps(link.key)
        return maps[0] if from_owner else maps[1]

    def link_count(self, link) -> int:
        return sum(len(t) for t in self._link_maps(link.key)[0].values())

    def link_pairs(self, link) -> Set[Tuple[OID, OID]]:
        return {(owner, target)
                for owner, targets in self._link_maps(link.key)[0].items()
                for target in targets}

    def linked(self, oid: OID, link, from_owner: bool = True) -> Set[OID]:
        index = self.link_index(link, from_owner)
        return set(index.get(oid, ()))

    def neighbors(self, oid: OID, resolved: ResolvedLink,
                  forward: bool = True) -> Set[OID]:
        if resolved.kind == "identity":
            return {oid}
        from_owner = (resolved.a_is_owner if forward
                      else not resolved.a_is_owner)
        return self.linked(oid, resolved.link, from_owner=from_owner)

    def bulk_neighbors(self, oids: Iterable[OID], resolved: ResolvedLink,
                       forward: bool = True) -> Dict[OID, Set[OID]]:
        if resolved.kind == "identity":
            return {oid: {oid} for oid in oids}
        from_owner = (resolved.a_is_owner if forward
                      else not resolved.a_is_owner)
        table = self.link_index(resolved.link, from_owner)
        return {oid: table.get(oid, EMPTY_OIDS) for oid in oids}

    def __len__(self) -> int:
        return sum(len(self.extent(cls))
                   for cls in self.schema.eclass_names)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"DatabaseSnapshot({self.db.name!r}, "
                f"version={self.version})")


def snapshot_universe(source) -> "SnapshotUniverse":
    """Pin ``source`` (a :class:`~repro.subdb.universe.Universe`): the
    base data and the materialized-subdatabase registry are captured
    atomically under the database's read lock."""
    with source.db.read_locked():
        snap = DatabaseSnapshot(source.db, _locked=True)
        registry = dict(source._subdbs)
        declared = set(source.compact.attrs.declared)
    pinned = SnapshotUniverse(snap, registry)
    # Value-index declarations carry over: snapshot readers probe the
    # same declared indexes (built privately over pinned extents).
    pinned.compact.attrs.declared.update(declared)
    return pinned


# Imported late: universe.py imports nothing from this module at import
# time (Universe.snapshot uses a local import), but SnapshotUniverse
# subclasses Universe.
from repro.subdb.universe import Universe  # noqa: E402


class SnapshotUniverse(Universe):
    """A universe over a :class:`DatabaseSnapshot`.

    Readers use it exactly like a live universe — evaluators, query
    processors and rule derivations work unchanged — but every read is
    served from the pinned version, and ``register`` only touches the
    snapshot's private registry.
    """

    def __init__(self, snapshot: DatabaseSnapshot,
                 subdbs: Optional[Dict[str, Any]] = None):
        super().__init__(snapshot)
        if subdbs:
            self._subdbs.update(subdbs)
        #: The pinned base-data version (constant for the snapshot's
        #: life; ``data_version`` still moves when a reader-local
        #: derivation registers a subdatabase).
        self.pinned_version = snapshot.version

    @property
    def snapshot(self) -> DatabaseSnapshot:
        return self.db

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "SnapshotUniverse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def attr_value(self, ref, oid: OID, attr: str) -> Any:
        """Pinned attribute read (the base implementation touches the
        live entity object between two lock-free instructions; the
        snapshot read must be atomic against writers)."""
        self.check_attribute(ref, attr)
        return self.db.attr_value(oid, attr)
