"""The subdatabase: intension + set of extensional patterns.

A :class:`Subdatabase` is the value the query evaluator produces and the
deductive rule language both consumes and derives.  It couples an
:class:`~repro.subdb.intension.IntensionalPattern` with a set of
:class:`~repro.subdb.pattern.ExtensionalPattern` tuples aligned to it, and
— when derived by a rule — with per-slot
:class:`~repro.subdb.derived.DerivedClassInfo` records carrying the induced
generalization links.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import OQLSemanticError
from repro.model.oid import OID
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import (
    ExtensionalPattern,
    PatternType,
    decode_rows,
    subsume,
)
from repro.subdb.refs import ClassRef


def _reconcile_info(a: DerivedClassInfo,
                    b: DerivedClassInfo) -> DerivedClassInfo:
    """Combine two derivation records for the same target class.

    When two rules derive the same class of one subdatabase from different
    sources (R4 derives May_teach's Course from ``Suggest_offer:Course``,
    R5 from the base ``Course``), the unioned class generalizes to the
    common base class and the visible attributes union (``None`` — all
    attributes — absorbs any subset)."""
    source = a.source if a.source == b.source else ClassRef(a.ref.cls)
    if a.visible_attrs is None or b.visible_attrs is None:
        visible = None
    else:
        visible = tuple(sorted(set(a.visible_attrs) | set(b.visible_attrs)))
    return DerivedClassInfo(ref=a.ref, source=source, visible_attrs=visible)


class Subdatabase:
    """A derived or query-result portion of the database."""

    def __init__(self, name: str, intension: IntensionalPattern,
                 patterns: Iterable[ExtensionalPattern] = (),
                 derived_info: Optional[Dict[str, DerivedClassInfo]] = None):
        self.name = name
        self.intension = intension
        self._patterns: Optional[Set[ExtensionalPattern]] = set(patterns)
        self._interned = None
        #: slot name -> induced-generalization record (empty for pure
        #: query results over base classes).
        self.derived_info: Dict[str, DerivedClassInfo] = dict(
            derived_info or {})
        width = len(intension)
        for pattern in self._patterns:
            if len(pattern.values) != width:
                raise OQLSemanticError(
                    f"pattern {pattern!r} has {len(pattern.values)} "
                    f"slots, intension has {width}")

    @classmethod
    def from_interned_rows(cls, name: str, intension: IntensionalPattern,
                           rows, tables,
                           derived_info: Optional[
                               Dict[str, DerivedClassInfo]] = None
                           ) -> "Subdatabase":
        """A subdatabase over interned rows, decoded to OID patterns
        only when :attr:`patterns` is first read.

        ``rows`` are dense-id tuples aligned to ``tables`` (per-slot
        intern tables, whose decode columns are immutable snapshots —
        later database mutations cannot skew a deferred decode).  The
        caller vouches that every row has the intension's width; the
        compact evaluator builds rows from the intension itself.
        """
        subdb = cls.__new__(cls)
        subdb.name = name
        subdb.intension = intension
        subdb._patterns = None
        subdb._interned = (rows if isinstance(rows, (list, set, frozenset))
                           else list(rows), list(tables))
        subdb.derived_info = dict(derived_info or {})
        return subdb

    @property
    def patterns(self) -> Set[ExtensionalPattern]:
        """The extensional pattern set (decoded on first access when the
        subdatabase was built from interned rows)."""
        patterns = self._patterns
        if patterns is None:
            rows, tables = self._interned
            patterns = self._patterns = decode_rows(rows, tables)
            self._interned = None
        return patterns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def slot_names(self) -> Tuple[str, ...]:
        return self.intension.slot_names

    def __len__(self) -> int:
        if self._patterns is None:
            return len(self._interned[0])
        return len(self._patterns)

    def __iter__(self):
        return iter(self.patterns)

    def pattern_types(self) -> Set[PatternType]:
        """The distinct extensional pattern types present (Section 3.1:
        Figure 3.1b contains five)."""
        names = self.slot_names
        return {p.type_of(names) for p in self.patterns}

    def patterns_of_type(self, ptype: PatternType | Sequence[str]
                         ) -> Set[ExtensionalPattern]:
        """All patterns sharing the given template."""
        if not isinstance(ptype, PatternType):
            ptype = PatternType(ptype)
        names = self.slot_names
        return {p for p in self.patterns if p.type_of(names) == ptype}

    def extent_of_slot(self, ref: ClassRef | str) -> Set[OID]:
        """The objects appearing at one exact slot."""
        index = self.intension.index_of(ref)
        return {p[index] for p in self.patterns if p[index] is not None}

    def extent_of_class(self, cls: str) -> Set[OID]:
        """The objects appearing at *any* slot of class ``cls`` (all
        hierarchy levels) — the extent of the derived class when the
        subdatabase is referenced with a qualifier (``May_teach:TA``)."""
        indices = self.intension.indices_of_class(cls)
        if not indices:
            raise OQLSemanticError(
                f"subdatabase {self.name!r} has no class {cls!r} "
                f"(classes: {list(self.slot_names)})")
        out: Set[OID] = set()
        for pattern in self.patterns:
            for i in indices:
                if pattern[i] is not None:
                    out.add(pattern[i])
        return out

    def pairs(self, i: int, j: int) -> Set[Tuple[OID, OID]]:
        """The (slot i, slot j) object pairs present in the patterns —
        the extensional content of a derived direct association."""
        return {(p[i], p[j]) for p in self.patterns
                if p[i] is not None and p[j] is not None}

    def info_for(self, ref: ClassRef | str) -> Optional[DerivedClassInfo]:
        name = ref if isinstance(ref, str) else ref.slot
        return self.derived_info.get(name)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def normalized(self) -> "Subdatabase":
        """A copy with the subsumption rule applied: no pattern appears
        independently if it is part of a larger one."""
        return Subdatabase(self.name, self.intension,
                           subsume(self.patterns), self.derived_info)

    def project(self, refs: Sequence[ClassRef | str],
                name: Optional[str] = None,
                edges: Iterable[Edge] = ()) -> "Subdatabase":
        """Keep only the given slots (in the given order).

        Projected patterns are de-duplicated and re-subsumed; patterns
        that become all-Null are dropped (classes unreferenced in a rule's
        Then clause "will not be retained in the derived subdatabase",
        Section 4.2).
        """
        indices = [self.intension.index_of(r) for r in refs]
        slots = [self.intension.slots[i] for i in indices]
        projected = {p.project(indices) for p in self.patterns}
        projected = {p for p in projected if p.arity > 0}
        new_intension = IntensionalPattern(slots, edges)
        return Subdatabase(name or self.name, new_intension,
                           subsume(projected))

    def merge(self, other: "Subdatabase") -> "Subdatabase":
        """Union with another subdatabase derived under the same name.

        Rules R4 and R5 of the paper both derive ``May_teach`` — one with
        classes (TA, Course), one with (Grad, Course); the result contains
        the union of the two extensional pattern sets over the union of
        the two intensional patterns (Section 4.2).  Slots are matched by
        exact slot name; derived-class records must agree or the union is
        rejected.
        """
        slot_map: Dict[str, int] = {n: i for i, n
                                    in enumerate(self.slot_names)}
        slots: List[ClassRef] = list(self.intension.slots)
        for ref in other.intension.slots:
            if ref.slot not in slot_map:
                slot_map[ref.slot] = len(slots)
                slots.append(ref)

        def remap(edge: Edge, names: Tuple[str, ...]) -> Edge:
            return Edge(slot_map[names[edge.i]], slot_map[names[edge.j]],
                        edge.kind, edge.label)

        edges: List[Edge] = []
        seen_edges = set()
        for source in (self, other):
            for edge in source.intension.edges:
                new = remap(edge, source.slot_names)
                key = (frozenset((new.i, new.j)), new.kind, new.label)
                if key not in seen_edges:
                    seen_edges.add(key)
                    edges.append(new)

        width = len(slots)
        patterns: Set[ExtensionalPattern] = set()
        for source in (self, other):
            mapping = [slot_map[name] for name in source.slot_names]
            for pattern in source.patterns:
                patterns.add(pattern.pad(mapping, width))

        info = dict(self.derived_info)
        for slot_name, record in other.derived_info.items():
            if slot_name in info and info[slot_name] != record:
                info[slot_name] = _reconcile_info(info[slot_name], record)
            else:
                info[slot_name] = record
        return Subdatabase(self.name, IntensionalPattern(slots, edges),
                           subsume(patterns), info)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def sorted_rows(self) -> List[Tuple[Optional[OID], ...]]:
        """Patterns as tuples in a stable order (Nulls sort last)."""
        def sort_key(pattern: ExtensionalPattern):
            return tuple((v is None, v.value if v is not None else 0)
                         for v in pattern.values)
        return [p.values for p in sorted(self.patterns, key=sort_key)]

    def labels(self) -> Set[Tuple[Optional[str], ...]]:
        """Patterns as tuples of OID labels — the representation the
        paper's figures use (``(t1, s2, c1)``); unlabeled OIDs render as
        ``#<value>``."""
        return {tuple(None if v is None else repr(v) for v in p.values)
                for p in self.patterns}

    def describe(self) -> str:
        lines = [f"subdatabase {self.name!r}",
                 self.intension.describe(),
                 f"patterns ({len(self.patterns)}):"]
        for row in self.sorted_rows():
            rendered = ", ".join("Null" if v is None else repr(v)
                                 for v in row)
            lines.append(f"  ({rendered})")
        for record in self.derived_info.values():
            lines.append(f"  induced: {record.induced_generalization}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Subdatabase({self.name!r}, slots={list(self.slot_names)}, "
                f"{len(self.patterns)} patterns)")
