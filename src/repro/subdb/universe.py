"""The universe: base database plus the world of derived subdatabases.

The OQL evaluator and the rule engine both operate against a
:class:`Universe`, which answers every reference-resolution question:

* the extent of a class reference (base class, or derived class of a
  subdatabase — any hierarchy level),
* descriptive-attribute access with visibility checked along the induced
  generalization chain (a rule may subset the attributes a target class
  inherits, Section 4.2),
* resolution of the association between two class references — inside one
  derived subdatabase (a derived direct association), or through the base
  schema via the inheritance established by induced generalization
  (Section 4.1: ``SD1:A * SD2:C``).

When a referenced subdatabase has not been materialized, the universe asks
its *provider* — installed by the rule engine — to derive it; this is the
hook through which backward chaining happens (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import (
    UnknownAttributeError,
    UnknownSubdatabaseError,
)
from repro.model.database import EMPTY_OIDS, Database
from repro.model.interning import InternTable
from repro.model.oid import OID
from repro.model.schema import ResolvedLink, Schema
from repro.subdb.adjindex import AdjacencyIndex, CompactStore
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase


@dataclass(frozen=True)
class EdgeResolution:
    """How the association between two class references is traversed.

    ``kind`` is:

    * ``"base"`` — via an aggregation link of the original schema
      (``resolved`` holds the :class:`ResolvedLink`),
    * ``"identity"`` — via a generalization relation (match on equal OIDs),
    * ``"subdb"`` — via a derived direct association inside subdatabase
      ``subdb`` between its slots ``i`` and ``j``.
    """

    kind: str
    resolved: Optional[ResolvedLink] = None
    subdb: Optional[str] = None
    i: int = -1
    j: int = -1


def _inner_slot(ref: ClassRef) -> str:
    """A derived class's slot name *inside* its subdatabase (subdatabase
    intensions store unqualified references)."""
    return ClassRef(ref.cls, None, ref.alias).slot


class Universe:
    """Resolution context: schema + base database + derived subdatabases."""

    def __init__(self, db: Database):
        self.db = db
        self.schema: Schema = db.schema
        self._subdbs: Dict[str, Subdatabase] = {}
        #: Called with a subdatabase name when it is referenced but not
        #: materialized; may derive and return it (backward chaining), or
        #: return ``None`` to signal the name is truly unknown.
        self.provider: Optional[Callable[[str], Optional[Subdatabase]]] = None
        # Per-derived-association pair index cache:
        # (name, i, j) -> (subdatabase object, fwd map, rev map)
        self._pair_cache: Dict[Tuple[str, int, int], tuple] = {}
        # Bumped whenever the set of materialized subdatabases changes,
        # so planner statistics over derived extents/associations can be
        # invalidated together with base-data changes (data_version).
        self._subdb_epoch = 0
        # Successful visibility checks memoized per data version: one
        # schema walk per (ref, attr) instead of one per object access.
        self._attr_check_cache: Dict[Tuple[ClassRef, str], bool] = {}
        self._attr_check_version = -1
        #: Interned-OID tables + CSR adjacency indexes for the compact
        #: execution layer, invalidated fine-grained from update events.
        self.compact = CompactStore(self)

    # ------------------------------------------------------------------
    # Subdatabase registry
    # ------------------------------------------------------------------

    def register(self, subdb: Subdatabase) -> None:
        """Materialize (or replace) a derived subdatabase."""
        self._subdbs[subdb.name] = subdb
        self._subdb_epoch += 1
        stale = [key for key in self._pair_cache if key[0] == subdb.name]
        for key in stale:
            del self._pair_cache[key]
        self.compact.on_subdb_change(subdb.name)

    def unregister(self, name: str) -> None:
        if self._subdbs.pop(name, None) is not None:
            self._subdb_epoch += 1
        stale = [key for key in self._pair_cache if key[0] == name]
        for key in stale:
            del self._pair_cache[key]
        self.compact.on_subdb_change(name)

    @property
    def data_version(self) -> int:
        """Monotonic counter covering base-data mutations *and* changes
        to the materialized-subdatabase registry — anything cached
        against this version (planner statistics, join-order choices)
        is invalidated by either kind of change."""
        return self.db.version + self._subdb_epoch

    def class_vector(self, classes: Tuple[str, ...]) -> Tuple[int, ...]:
        """The per-class version vector for ``classes`` (see
        :meth:`Database.version_vector`), the invalidation key for
        anything computed from those base extensions.  Works uniformly
        over a live :class:`Database` and a pinned
        :class:`~repro.subdb.snapshot.DatabaseSnapshot`."""
        return self.db.version_vector(classes)

    def ref_token(self, ref: ClassRef) -> Tuple[int, ...]:
        """The invalidation token for one class reference: the class's
        version vector for a base ref, the coarse ``data_version`` for a
        derived ref (subdatabase contents carry no per-class versions)."""
        if ref.subdb is None:
            return self.db.version_vector((ref.cls,))
        return (-1, self.data_version)

    def snapshot(self) -> "Universe":
        """A snapshot-isolated universe pinned at the current data
        version: copy-on-write over the base database, with the current
        materialized-subdatabase registry captured atomically.  Readers
        evaluate against it without ever blocking writers for longer
        than one mutation, and without observing in-flight state (see
        :mod:`repro.subdb.snapshot`)."""
        from repro.subdb.snapshot import snapshot_universe
        return snapshot_universe(self)

    def has_subdb(self, name: str) -> bool:
        return name in self._subdbs

    @property
    def subdb_names(self) -> list[str]:
        return sorted(self._subdbs)

    def get_subdb(self, name: str) -> Subdatabase:
        """The named subdatabase, deriving it through the provider when it
        is not yet materialized (the backward-chaining hook)."""
        if name in self._subdbs:
            return self._subdbs[name]
        if self.provider is not None:
            derived = self.provider(name)
            if derived is not None:
                return derived
        raise UnknownSubdatabaseError(
            f"unknown subdatabase {name!r} (materialized: "
            f"{self.subdb_names}; no rule derives it)")

    # ------------------------------------------------------------------
    # Extents
    # ------------------------------------------------------------------

    def extent(self, ref: ClassRef) -> Set[OID]:
        """The set of instances a class reference ranges over.

        On a *base* class an alias marker is a pure range variable
        (Section 5.2): ``A_1`` ranges over the same extent as ``A``.  On
        a *derived* class the alias selects the matching hierarchy-level
        slot when the subdatabase has one (``GG:Grad_2`` is the third
        level of the Grad-teaching-grad hierarchy, by analogy with rule
        R7's level-selecting targets); otherwise — and for unaliased
        derived references — the extent is the union over every slot of
        the class.
        """
        if ref.subdb is None:
            return self.db.extent(ref.cls)
        subdb = self.get_subdb(ref.subdb)
        if ref.alias is not None:
            slot = _inner_slot(ref)
            if subdb.intension.has_slot(slot):
                return subdb.extent_of_slot(slot)
        return subdb.extent_of_class(ref.cls)

    # ------------------------------------------------------------------
    # Attribute access through the induced-generalization chain
    # ------------------------------------------------------------------

    def check_attribute(self, ref: ClassRef, attr: str) -> None:
        """Verify ``attr`` is visible from ``ref``.

        Walks the induced-generalization chain: every derivation step may
        have restricted the inherited attributes; the base class must
        finally declare (or inherit) the attribute.
        """
        version = self.data_version
        if version != self._attr_check_version:
            self._attr_check_cache.clear()
            self._attr_check_version = version
        if (ref, attr) in self._attr_check_cache:
            return
        current = ref
        guard = 0
        while current.subdb is not None:
            guard += 1
            if guard > 100:  # pragma: no cover - defensive
                raise UnknownAttributeError(
                    f"derivation chain too deep resolving {ref}.{attr}")
            subdb = self.get_subdb(current.subdb)
            info = subdb.info_for(_inner_slot(current))
            if info is None:
                # Slot recorded without derivation metadata (plain query
                # result); treat as unrestricted view of the base class.
                current = ClassRef(current.cls)
                continue
            if not info.allows_attribute(attr):
                raise UnknownAttributeError(
                    f"attribute {attr!r} is not inherited by derived class "
                    f"{current} (visible: {sorted(info.visible_attrs)})")
            current = info.source
        self.schema.attribute(current.cls, attr)
        self._attr_check_cache[(ref, attr)] = True

    def attr_value(self, ref: ClassRef, oid: OID, attr: str) -> Any:
        """Read a descriptive attribute of an object through a (possibly
        derived) class reference."""
        self.check_attribute(ref, attr)
        return self.db.entity(oid).get(attr)

    def visible_attributes(self, ref: ClassRef) -> Tuple[str, ...]:
        """The descriptive attributes visible from a class reference,
        after every attribute subsetting along the derivation chain."""
        current = ref
        restrictions: list[frozenset] = []
        while current.subdb is not None:
            subdb = self.get_subdb(current.subdb)
            info = subdb.info_for(_inner_slot(current))
            if info is None:
                current = ClassRef(current.cls)
                continue
            if info.visible_attrs is not None:
                restrictions.append(frozenset(info.visible_attrs))
            current = info.source
        names = sorted(self.schema.descriptive_attributes(current.cls))
        for restriction in restrictions:
            names = [n for n in names if n in restriction]
        return tuple(names)

    # ------------------------------------------------------------------
    # Association resolution
    # ------------------------------------------------------------------

    def resolve_edge(self, a: ClassRef, b: ClassRef) -> EdgeResolution:
        """Resolve how the association operator traverses from ``a`` to
        ``b``.

        Inside one derived subdatabase a *derived direct association*
        between the two slots takes precedence (Figure 4.3: Teacher and
        Course are directly associated in Teacher_course even though only
        indirectly in the base schema).  Otherwise resolution falls to the
        base schema between the source base classes — legal whenever the
        base classes are associated, because induced generalization makes
        every derived class inherit its source's aggregation links.
        """
        if a.subdb is not None and a.subdb == b.subdb:
            subdb = self.get_subdb(a.subdb)
            slot_a, slot_b = _inner_slot(a), _inner_slot(b)
            if subdb.intension.has_slot(slot_a) and \
                    subdb.intension.has_slot(slot_b):
                i = subdb.intension.index_of(slot_a)
                j = subdb.intension.index_of(slot_b)
                if subdb.intension.edge_between(i, j) is not None:
                    return EdgeResolution("subdb", subdb=a.subdb, i=i, j=j)
        resolved = self.schema.resolve_link(a.cls, b.cls)
        if resolved.kind == "identity":
            return EdgeResolution("identity")
        return EdgeResolution("base", resolved=resolved)

    def _pair_maps(self, name: str, i: int, j: int):
        subdb = self.get_subdb(name)
        key = (name, i, j)
        cached = self._pair_cache.get(key)
        if cached is not None and cached[0] is subdb:
            return cached[1], cached[2]
        fwd: Dict[OID, Set[OID]] = {}
        rev: Dict[OID, Set[OID]] = {}
        for left, right in subdb.pairs(i, j):
            fwd.setdefault(left, set()).add(right)
            rev.setdefault(right, set()).add(left)
        self._pair_cache[key] = (subdb, fwd, rev)
        return fwd, rev

    def edge_neighbors(self, oid: OID, edge: EdgeResolution,
                       forward: bool = True) -> Set[OID]:
        """Objects reachable from ``oid`` across a resolved edge.

        ``forward=True`` moves from the resolution's first reference to
        its second.
        """
        if edge.kind == "identity":
            return {oid}
        if edge.kind == "base":
            return self.db.neighbors(oid, edge.resolved, forward=forward)
        fwd, rev = self._pair_maps(edge.subdb, edge.i, edge.j)
        index = fwd if forward else rev
        return set(index.get(oid, ()))

    def bulk_edge_neighbors(self, oids: Set[OID], edge: EdgeResolution,
                            forward: bool = True) -> Dict[OID, Set[OID]]:
        """Neighbor sets for a whole candidate frontier in one lookup.

        The returned sets are shared with the underlying indexes and
        must not be mutated; objects without neighbors map to a shared
        empty set.  One call per hop replaces the per-row
        :meth:`edge_neighbors` loop of the row-at-a-time executor.
        """
        if edge.kind == "identity":
            return {oid: {oid} for oid in oids}
        if edge.kind == "base":
            return self.db.bulk_neighbors(oids, edge.resolved,
                                          forward=forward)
        fwd, rev = self._pair_maps(edge.subdb, edge.i, edge.j)
        index = fwd if forward else rev
        return {oid: index.get(oid, EMPTY_OIDS) for oid in oids}

    # ------------------------------------------------------------------
    # Compact (interned) execution layer
    # ------------------------------------------------------------------

    def intern_table(self, ref: ClassRef) -> InternTable:
        """The dense ``OID <-> int`` table over ``ref``'s extent (built
        lazily, invalidated by update events)."""
        return self.compact.table(ref)

    def intern_table_if_ready(self, ref: ClassRef) -> Optional[InternTable]:
        """The cached valid intern table, or ``None`` — never builds."""
        return self.compact.table_if_ready(ref)

    def adjacency(self, edge: EdgeResolution, forward: bool,
                  src_ref: ClassRef, tgt_ref: ClassRef) -> AdjacencyIndex:
        """The CSR adjacency index for crossing ``edge`` from
        ``src_ref``'s extent to ``tgt_ref``'s, over interned ids.  One
        lazily built index replaces the per-call neighbor-set
        construction of :meth:`bulk_edge_neighbors` on the compact
        execution path."""
        return self.compact.adjacency(edge, forward, src_ref, tgt_ref)

    def adjacency_if_ready(self, edge: EdgeResolution, forward: bool,
                           src_ref: ClassRef,
                           tgt_ref: ClassRef) -> Optional[AdjacencyIndex]:
        """The cached valid adjacency index, or ``None`` — never builds
        (the incremental maintainer's entry point: a delta refresh must
        not pay a full index rebuild)."""
        return self.compact.adjacency_if_ready(edge, forward, src_ref,
                                               tgt_ref)

    # ------------------------------------------------------------------
    # Secondary value indexes
    # ------------------------------------------------------------------

    def declare_index(self, cls: str, attr: str) -> bool:
        """Declare a ``(class, attribute)`` value index over the base
        extent of ``cls`` (``\\index add``).  The index itself is built
        lazily on first probe; the attribute must exist on the class."""
        self.schema.attribute(cls, attr)
        return self.compact.attrs.declare(cls, attr)

    def drop_index(self, cls: str, attr: str) -> bool:
        return self.compact.attrs.drop(cls, attr)

    def attr_index(self, ref: ClassRef, attr: str):
        """The declared :class:`~repro.subdb.attrindex.AttrIndex` for
        ``ref``'s extent and ``attr`` (built on first use), or ``None``
        when undeclared / not an indexable base reference."""
        return self.compact.attrs.get(ref, attr)

    def attr_index_if_ready(self, ref: ClassRef, attr: str):
        """The cached valid value index, or ``None`` — never builds."""
        return self.compact.attrs.get_if_ready(ref, attr)

    def index_stats(self) -> list:
        """Per-declared-index statistics plus store-level maintenance
        counters (``\\index stats``)."""
        return self.compact.attrs.stats()
