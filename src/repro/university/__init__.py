"""The paper's running example: the University database.

* :func:`build_university_schema` — the S-diagram of Figure 2.1,
* :func:`build_paper_database` — base data whose Teacher/Section/Course
  portion is exactly the extensional diagram of Figure 3.1b, extended with
  the departments, students, transcripts, TAs, faculty and advising links
  the example rules R1-R5 and queries 3.1-5.1 exercise,
* :func:`build_sdb` — the subdatabase SDB of Figure 3.1,
* :func:`generate_university` — a seeded, scale-parameterized generator
  for benchmarks.
"""

from repro.university.schema import build_university_schema
from repro.university.data import build_paper_database, build_sdb
from repro.university.generator import GeneratorConfig, generate_university

__all__ = [
    "build_university_schema",
    "build_paper_database",
    "build_sdb",
    "GeneratorConfig",
    "generate_university",
]
